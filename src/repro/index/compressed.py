"""Radix compression of the prefix tree (paper section 4.2).

Chains of single-child, non-terminal nodes are merged into one node
whose edge label carries the whole run, so the "Berlin"/"Bern"/"Ulm"
example of the paper's Figure 4 shrinks to half its nodes. Compression
changes neither the string set nor any search result — only the node
count and, with it, the number of per-node bookkeeping steps a
traversal performs.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.index.node import TrieNode
from repro.index.trie import PrefixTrie


class CompressedTrie:
    """A radix-compressed view of a :class:`PrefixTrie`.

    Build one either from strings or from an existing trie:

    >>> compressed = CompressedTrie(["Berlin", "Bern", "Ulm"])
    >>> sorted(compressed)
    ['Berlin', 'Bern', 'Ulm']
    >>> uncompressed = PrefixTrie(["Berlin", "Bern", "Ulm"])
    >>> compressed.node_count < uncompressed.node_count
    True
    """

    def __init__(self, strings: Iterable[str] = (), *,
                 tracked_symbols: str | None = None,
                 case_insensitive_frequencies: bool = True) -> None:
        source = PrefixTrie(
            strings,
            tracked_symbols=tracked_symbols,
            case_insensitive_frequencies=case_insensitive_frequencies,
        )
        self._from_trie(source)

    @classmethod
    def from_trie(cls, trie: PrefixTrie) -> "CompressedTrie":
        """Compress an already-built :class:`PrefixTrie`."""
        compressed = cls.__new__(cls)
        compressed._from_trie(trie)
        return compressed

    def _from_trie(self, trie: PrefixTrie) -> None:
        self._tracked_symbols = trie.tracked_symbols
        self._case_insensitive = trie.case_insensitive_frequencies
        self._string_count = trie.string_count
        self._max_depth = trie.max_depth
        # The root keeps its empty label so descents need no special case;
        # compression starts at its children.
        source_root = trie.root
        root = TrieNode("")
        root.terminal_count = source_root.terminal_count
        root.subtree_min_length = source_root.subtree_min_length
        root.subtree_max_length = source_root.subtree_max_length
        root.freq_min = (
            list(source_root.freq_min) if source_root.freq_min else None
        )
        root.freq_max = (
            list(source_root.freq_max) if source_root.freq_max else None
        )
        for symbol, child in source_root.children.items():
            root.children[symbol] = self._compress(child)
        self._root = root
        self._node_count = self._root.node_count()

    @staticmethod
    def _compress(node: TrieNode) -> TrieNode:
        """Recursively copy ``node``, merging single-child chains.

        A chain is absorbed while its tail is non-terminal and has
        exactly one child; terminal nodes must stay node boundaries
        because a dataset string ends there. Every string in ``node``'s
        subtree passes through the whole chain, so all chain nodes carry
        identical subtree annotations — copying ``node``'s is exact.
        """
        label = node.label
        current = node
        while len(current.children) == 1 and not current.is_terminal:
            (only_child,) = current.children.values()
            label += only_child.label
            current = only_child

        merged = TrieNode(label)
        merged.terminal_count = current.terminal_count
        merged.subtree_min_length = node.subtree_min_length
        merged.subtree_max_length = node.subtree_max_length
        merged.freq_min = list(node.freq_min) if node.freq_min else None
        merged.freq_max = list(node.freq_max) if node.freq_max else None
        for symbol, child in current.children.items():
            merged.children[symbol] = CompressedTrie._compress(child)
        return merged

    # ------------------------------------------------------------------
    # Introspection (mirrors PrefixTrie)
    # ------------------------------------------------------------------

    @property
    def root(self) -> TrieNode:
        """The root node."""
        return self._root

    @property
    def string_count(self) -> int:
        """Number of inserted strings, duplicates included."""
        return self._string_count

    @property
    def node_count(self) -> int:
        """Number of nodes after compression, root included."""
        return self._node_count

    @property
    def max_depth(self) -> int:
        """Length of the longest inserted string."""
        return self._max_depth

    @property
    def tracked_symbols(self) -> str | None:
        """Symbols with frequency annotations, or ``None``."""
        return self._tracked_symbols

    @property
    def case_insensitive_frequencies(self) -> bool:
        """Whether frequency annotations fold case."""
        return self._case_insensitive

    def __len__(self) -> int:
        return self._string_count

    def __contains__(self, string: str) -> bool:
        node, matched = self._descend(string)
        return node is not None and matched == len(string) and node.is_terminal

    def count(self, string: str) -> int:
        """Multiplicity of ``string``."""
        node, matched = self._descend(string)
        if node is None or matched != len(string):
            return 0
        return node.terminal_count

    def _descend(self, string: str) -> tuple[TrieNode | None, int]:
        """Follow ``string`` as far as possible.

        Returns the last node whose full label was consumed and the
        number of symbols matched; ``(None, matched)`` when the walk
        fell off the tree or ended mid-label.
        """
        node = self._root
        position = 0
        while position < len(string):
            child = node.children.get(string[position])
            if child is None:
                return None, position
            label = child.label
            if string[position:position + len(label)] != label:
                return None, position
            position += len(label)
            node = child
        return node, position

    def __iter__(self) -> Iterator[str]:
        """Yield distinct strings in lexicographic order."""
        yield from self._walk(self._root, "")

    def _walk(self, node: TrieNode, prefix: str) -> Iterator[str]:
        prefix = prefix + node.label
        if node.is_terminal:
            yield prefix
        for symbol in sorted(node.children):
            yield from self._walk(node.children[symbol], prefix)
