"""DAWG: compression taken to its logical end (beyond paper section 4.2).

The paper compresses its prefix tree by merging single-child chains.
The next step on that road is merging equal *suffix* structure too,
turning the trie into the minimal acyclic DFA of the string set — a
DAWG (directed acyclic word graph). City-name datasets benefit
enormously: thousands of names end in "burg", "stadt" or "ville", and
the DAWG stores each shared ending once.

Construction is the classic incremental-minimization algorithm over
lexicographically sorted input (Daciuk et al. 2000): after each word,
the path that can no longer change is replaced node-by-node from a
registry of equivalent states.

Similarity search runs the same banded-DP descent as the trie; the
pruning annotations differ because DAWG nodes are shared between
prefixes: instead of absolute subtree string lengths, each node stores
its minimum/maximum *suffix height* — which is exactly the "remaining
length" the completion bound of conditions (9)/(10) needs.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

from repro.distance.banded import check_threshold
from repro.exceptions import IndexConstructionError
from repro.index.traversal import TraversalStats, TrieMatch


class _DawgNode:
    __slots__ = ("children", "final", "min_height", "max_height", "_id")

    _next_id = 0

    def __init__(self) -> None:
        self.children: dict[str, _DawgNode] = {}
        self.final = False
        self.min_height = 0
        self.max_height = 0
        self._id = _DawgNode._next_id
        _DawgNode._next_id += 1

    def signature(self) -> tuple:
        """Equivalence key for minimization: finality + child identity."""
        return (
            self.final,
            tuple(sorted(
                (symbol, child._id) for symbol, child in
                self.children.items()
            )),
        )


class Dawg:
    """Minimal acyclic DFA over a string multiset.

    Multiplicities are kept in a side table (shared final states cannot
    carry per-string counts).

    Examples
    --------
    >>> dawg = Dawg(["Hamburg", "Magdeburg", "Marburg"])
    >>> "Marburg" in dawg
    True
    >>> from repro.index import CompressedTrie
    >>> dawg.node_count < 19   # the trie needs 19 even compressed
    True
    """

    def __init__(self, strings: Iterable[str] = ()) -> None:
        counts: Counter[str] = Counter()
        for string in strings:
            if not string:
                raise IndexConstructionError(
                    "cannot insert an empty string into the DAWG"
                )
            counts[string] += 1
        self._multiplicity = dict(counts)
        self._root = _DawgNode()
        self._register: dict[tuple, _DawgNode] = {}
        self._build(sorted(counts))
        # The minimization registry (large signature tuples) is
        # construction-only state; drop it so the index's memory
        # footprint is the automaton itself.
        self._register = {}
        self._annotate_heights()
        self._node_count = self._count_nodes()
        self._string_count = sum(counts.values())
        self._max_depth = max((len(s) for s in counts), default=0)

    # ------------------------------------------------------------------
    # Construction (Daciuk incremental minimization)
    # ------------------------------------------------------------------

    def _build(self, sorted_strings: list[str]) -> None:
        # ``unchecked`` is the not-yet-minimized tail of the last
        # insertion path: (parent, symbol, child) triples.
        unchecked: list[tuple[_DawgNode, str, _DawgNode]] = []
        previous = ""
        for string in sorted_strings:
            common = 0
            limit = min(len(string), len(previous))
            while common < limit and string[common] == previous[common]:
                common += 1
            self._minimize(unchecked, common)
            node = (
                unchecked[-1][2] if unchecked else self._root
            )
            for symbol in string[common:]:
                child = _DawgNode()
                node.children[symbol] = child
                unchecked.append((node, symbol, child))
                node = child
            node.final = True
            previous = string
        self._minimize(unchecked, 0)

    def _minimize(self, unchecked: list[tuple[_DawgNode, str, _DawgNode]],
                  down_to: int) -> None:
        while len(unchecked) > down_to:
            parent, symbol, child = unchecked.pop()
            signature = child.signature()
            existing = self._register.get(signature)
            if existing is not None:
                parent.children[symbol] = existing
            else:
                self._register[signature] = child

    def _annotate_heights(self) -> None:
        """Min/max suffix length from each node to a final state."""
        memo: dict[int, tuple[int, int]] = {}

        def heights(node: _DawgNode) -> tuple[int, int]:
            cached = memo.get(node._id)
            if cached is not None:
                return cached
            low = 0 if node.final else 2**62
            high = 0 if node.final else -1
            for child in node.children.values():
                child_low, child_high = heights(child)
                low = min(low, child_low + 1)
                high = max(high, child_high + 1)
            memo[node._id] = (low, high)
            node.min_height = low
            node.max_height = high
            return low, high

        heights(self._root)

    def _count_nodes(self) -> int:
        seen: set[int] = set()
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node._id in seen:
                continue
            seen.add(node._id)
            stack.extend(node.children.values())
        return len(seen)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Distinct states (shared suffixes counted once)."""
        return self._node_count

    @property
    def string_count(self) -> int:
        """Inserted strings, duplicates included."""
        return self._string_count

    @property
    def max_depth(self) -> int:
        """Length of the longest string."""
        return self._max_depth

    def __len__(self) -> int:
        return self._string_count

    def __contains__(self, string: str) -> bool:
        node = self._root
        for symbol in string:
            child = node.children.get(symbol)
            if child is None:
                return False
            node = child
        return node.final

    def count(self, string: str) -> int:
        """Multiplicity of ``string``."""
        return self._multiplicity.get(string, 0)

    def __iter__(self) -> Iterator[str]:
        """Distinct strings, lexicographically."""
        def walk(node: _DawgNode, prefix: str) -> Iterator[str]:
            if node.final:
                yield prefix
            for symbol in sorted(node.children):
                yield from walk(node.children[symbol], prefix + symbol)

        yield from walk(self._root, "")

    # ------------------------------------------------------------------
    # Similarity search
    # ------------------------------------------------------------------

    def search(self, query: str, k: int, *,
               stats: TraversalStats | None = None) -> list[TrieMatch]:
        """All strings within edit distance ``k``, lexicographic order.

        The same banded descent as the trie traversal; per-node length
        pruning uses suffix heights (the DAG analog of conditions
        (9)/(10)). Shared nodes are revisited once per distinct path —
        paths, not nodes, carry the DP state.
        """
        check_threshold(k)
        if stats is None:
            stats = TraversalStats()
        n = len(query)
        infinity = k + 1
        matches: list[TrieMatch] = []
        row0 = [j if j <= k else infinity for j in range(n + 1)]

        def descend(node: _DawgNode, prefix: str, depth: int,
                    row: list[int]) -> None:
            stats.nodes_visited += 1
            if node.final and depth - k <= n <= depth + k \
                    and row[n] <= k:
                stats.matches += 1
                matches.append(
                    TrieMatch(prefix, row[n],
                              self._multiplicity.get(prefix, 1))
                )
            for symbol, child in node.children.items():
                stats.symbols_processed += 1
                child_depth = depth + 1
                lo = max(0, child_depth - k)
                hi = min(n, child_depth + k)
                if lo > n:
                    stats.branches_pruned_by_length += 1
                    continue
                new_row = [infinity] * (n + 1)
                best = infinity
                remaining_lo = child.min_height
                remaining_hi = child.max_height
                if lo == 0:
                    new_row[0] = child_depth
                    shortfall = max(0, n - remaining_hi,
                                    remaining_lo - n)
                    best = min(best, child_depth + shortfall)
                parent_hi = depth + k
                for j in range(max(1, lo), hi + 1):
                    diagonal = row[j - 1]
                    if symbol == query[j - 1]:
                        cost = diagonal
                    else:
                        above = row[j] if j <= parent_hi else infinity
                        left = new_row[j - 1]
                        cost = min(diagonal, above, left) + 1
                        if cost > infinity:
                            cost = infinity
                    new_row[j] = cost
                    query_left = n - j
                    shortfall = max(0, query_left - remaining_hi,
                                    remaining_lo - query_left)
                    if cost + shortfall < best:
                        best = cost + shortfall
                if best > k:
                    stats.branches_pruned_by_length += 1
                    continue
                descend(child, prefix + symbol, child_depth, new_row)

        descend(self._root, "", 0, row0)
        matches.sort(key=lambda match: match.string)
        return matches

    def search_strings(self, query: str, k: int) -> list[str]:
        """Convenience: just the matched strings."""
        return [match.string for match in self.search(query, k)]
