"""Similarity search over (compressed) prefix trees.

This is the index-based solution of the paper's section 4: descend the
trie, extending one dynamic-programming row per consumed edge symbol,
and prune whole branches as soon as they provably cannot contain a
match. Works identically on :class:`repro.index.trie.PrefixTrie` and
:class:`repro.index.compressed.CompressedTrie` — compression only
changes how many node boundaries the descent crosses.

The DP rows are **banded**: at depth ``i`` only the cells ``j`` with
``|i - j| <= k`` can hold values within the threshold, so each consumed
symbol costs O(k) cell updates rather than O(len(query)). Row buffers
are preallocated per depth and reused across the whole descent (and
across sibling branches), so the traversal allocates nothing per node.

Pruning rules, in the order they are applied:

1. **Frequency vectors** (PETER, section 2.3): the subtree's per-symbol
   count bounds give a lower bound on the distance to *any* string
   below; if it exceeds ``k`` the branch dies without any DP at all.
2. **Length tolerance** (paper conditions 9/10): with subtree string
   lengths in ``[lo, hi]`` and ``i`` symbols consumed, the cheapest
   completion of DP cell ``j`` still needs
   ``max(0, (n - j) - (hi - i), (lo - i) - (n - j))`` further edits to
   reconcile the remaining lengths. If every band cell plus its
   completion cost exceeds ``k``, the branch dies. This subsumes the
   plain "row minimum > k" cutoff (completion costs are ≥ 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.core.deadline import Budget, Deadline
from repro.distance.banded import check_threshold
from repro.exceptions import DeadlineExceeded
from repro.filters.frequency import frequency_vector
from repro.index.node import TrieNode


class _TrieLike(Protocol):
    """What the traversal needs from an index (both tries satisfy it)."""

    @property
    def root(self) -> TrieNode: ...

    @property
    def max_depth(self) -> int: ...

    @property
    def tracked_symbols(self) -> str | None: ...

    @property
    def case_insensitive_frequencies(self) -> bool: ...


@dataclass(frozen=True)
class TrieMatch:
    """One matched dataset string.

    Attributes
    ----------
    string:
        The matched string.
    distance:
        Its exact edit distance to the query (``<= k``).
    multiplicity:
        How many times the string occurs in the dataset.
    """

    string: str
    distance: int
    multiplicity: int = 1


@dataclass
class TraversalStats:
    """Work counters for one similarity descent."""

    nodes_visited: int = 0
    symbols_processed: int = 0
    branches_pruned_by_length: int = 0
    branches_pruned_by_frequency: int = 0
    matches: int = 0


def trie_similarity_search(trie: _TrieLike, query: str, k: int, *,
                           use_frequency_pruning: bool = True,
                           stats: TraversalStats | None = None,
                           deadline: Deadline | Budget | None = None,
                           ) -> list[TrieMatch]:
    """All dataset strings within edit distance ``k`` of ``query``.

    Parameters
    ----------
    trie:
        A :class:`PrefixTrie` or :class:`CompressedTrie`.
    query:
        The query string.
    k:
        Edit-distance threshold (``>= 0``).
    use_frequency_pruning:
        Apply PETER-style pruning when the trie carries frequency
        annotations; disabling it isolates the effect in ablations.
    stats:
        Optional counter object to fill with traversal work.
    deadline:
        Optional :class:`repro.core.deadline.Deadline` /
        :class:`repro.core.deadline.Budget`, polled every
        ``check_interval`` visited nodes; on expiry the descent raises
        :class:`DeadlineExceeded` carrying the matches proven so far
        (a subset of the exact answer).

    Returns
    -------
    Matches in lexicographic order of the matched string.

    Examples
    --------
    >>> from repro.index import PrefixTrie
    >>> trie = PrefixTrie(["Berlin", "Bern", "Ulm"])
    >>> [m.string for m in trie_similarity_search(trie, "Berlino", 2)]
    ['Berlin']
    """
    check_threshold(k)
    if stats is None:
        stats = TraversalStats()

    query_frequency: tuple[int, ...] | None = None
    tracked = trie.tracked_symbols
    if use_frequency_pruning and tracked is not None:
        query_frequency = frequency_vector(
            query, tracked, trie.case_insensitive_frequencies
        )

    search = _Descent(query, k, trie.max_depth, query_frequency, stats,
                      deadline=deadline)
    search.visit(trie.root, "")
    search.matches.sort(key=lambda match: match.string)
    return search.matches


class _Descent:
    """One banded DFS over the trie for a single query.

    Row buffers live in ``self._rows``, one per depth, reused across
    sibling branches (a branch's rows are dead by the time its sibling
    is entered — standard DFS buffer sharing).
    """

    def __init__(self, query: str, k: int, max_depth: int,
                 query_frequency: tuple[int, ...] | None,
                 stats: TraversalStats, *,
                 deadline: Deadline | Budget | None = None) -> None:
        self._query = query
        self._k = k
        self._n = len(query)
        self._infinity = k + 1
        self._frequency = query_frequency
        self._stats = stats
        self._deadline = deadline
        self._countdown = deadline.check_interval if deadline else 0
        self.matches: list[TrieMatch] = []
        # Depth-indexed row buffers; row 0 is the classic first DP row,
        # banded: cells beyond k are unreachable within the threshold.
        self._rows: list[list[int] | None] = [None] * (max_depth + 2)
        row0 = [
            j if j <= k else self._infinity for j in range(self._n + 1)
        ]
        self._rows[0] = row0

    def _row(self, depth: int) -> list[int]:
        row = self._rows[depth]
        if row is None:
            row = [0] * (self._n + 1)
            self._rows[depth] = row
        return row

    def visit(self, node: TrieNode, prefix: str, depth: int = 0) -> None:
        """Process ``node``: prune, consume its label, collect, recurse."""
        stats = self._stats
        stats.nodes_visited += 1
        if self._countdown:
            self._countdown -= 1
            if not self._countdown:
                deadline = self._deadline
                self._countdown = deadline.check_interval
                if deadline.spend(deadline.check_interval):
                    self.matches.sort(key=lambda match: match.string)
                    raise DeadlineExceeded(
                        f"trie traversal for {self._query!r} "
                        f"(k={self._k}) exceeded its deadline after "
                        f"{stats.nodes_visited} nodes",
                        partial=tuple(self.matches), scope="nodes",
                        completed=stats.nodes_visited,
                    )
        k = self._k
        n = self._n

        if self._frequency is not None and node.freq_min is not None:
            assert node.freq_max is not None
            if _frequency_bound(self._frequency, node.freq_min,
                                node.freq_max) > k:
                stats.branches_pruned_by_frequency += 1
                return

        query = self._query
        infinity = self._infinity
        sub_lo = node.subtree_min_length
        sub_hi = node.subtree_max_length

        # Node-level length box (the cheap face of conditions (9)/(10)):
        # every terminal below has length in [sub_lo, sub_hi], so at
        # least this many edits are unavoidable regardless of the DP.
        length_bound = sub_lo - n
        if n - sub_hi > length_bound:
            length_bound = n - sub_hi
        if length_bound > k:
            stats.branches_pruned_by_length += 1
            return

        symbols_processed = 0
        last_symbol_index = len(node.label) - 1
        row_min = 0
        # Consume the edge label symbol by symbol, extending banded rows.
        for index, symbol in enumerate(node.label):
            parent = self._row(depth)
            depth += 1
            symbols_processed += 1
            lo = depth - k
            hi = depth + k
            if lo > n:
                # The band left the query entirely: every completion
                # needs more than k deletions.
                stats.symbols_processed += symbols_processed
                stats.branches_pruned_by_length += 1
                return
            if lo < 0:
                lo = 0
            if hi > n:
                hi = n
            row = self._row(depth)

            row_min = infinity
            j = lo
            if j == 0:
                # Column 0: depth deletions (only reachable while
                # depth <= k, which lo == 0 guarantees).
                row[0] = depth
                row_min = depth
                j = 1
            parent_hi = depth - 1 + k
            for j in range(j, hi + 1):
                diagonal = parent[j - 1]
                if symbol == query[j - 1]:
                    cost = diagonal
                else:
                    above = parent[j] if j <= parent_hi else infinity
                    left = row[j - 1] if j - 1 >= lo else infinity
                    cost = diagonal
                    if above < cost:
                        cost = above
                    if left < cost:
                        cost = left
                    cost += 1
                    if cost > infinity:
                        cost = infinity
                row[j] = cost
                if cost < row_min:
                    row_min = cost
            if row_min > k:
                # Ukkonen cutoff: the whole band exceeded the threshold.
                stats.symbols_processed += symbols_processed
                stats.branches_pruned_by_length += 1
                return
            if index == last_symbol_index and node.children:
                # Full conditions (9)/(10) once per node, right before
                # the branch fans out into children: the cheapest
                # completion of any band cell must still reconcile the
                # remaining query length with the subtree's bounds.
                remaining_hi = sub_hi - depth
                remaining_lo = sub_lo - depth
                best_completion = infinity
                for j in range(lo, hi + 1):
                    query_left = n - j
                    shortfall = query_left - remaining_hi
                    if remaining_lo - query_left > shortfall:
                        shortfall = remaining_lo - query_left
                    if shortfall < 0:
                        shortfall = 0
                    total = row[j] + shortfall
                    if total < best_completion:
                        best_completion = total
                if best_completion > k and not node.is_terminal:
                    stats.symbols_processed += symbols_processed
                    stats.branches_pruned_by_length += 1
                    return
        stats.symbols_processed += symbols_processed

        if node.is_terminal and depth - k <= n <= depth + k:
            distance = self._row(depth)[n]
            if distance <= k:
                stats.matches += 1
                self.matches.append(
                    TrieMatch(prefix + node.label, distance,
                              node.terminal_count)
                )

        child_prefix = prefix + node.label
        for child in node.children.values():
            self.visit(child, child_prefix, depth)


def _frequency_bound(query_frequency: tuple[int, ...],
                     freq_min: list[int], freq_max: list[int]) -> int:
    """PETER-style lower bound on the distance to any subtree string.

    Per tracked symbol, the query's count must move into the subtree's
    ``[min, max]`` box; each edit operation moves one tracked count by
    at most one in each direction, so total surplus and total deficit
    are both lower bounds (see :mod:`repro.filters.frequency`).
    """
    surplus = 0
    deficit = 0
    for fq, lo, hi in zip(query_frequency, freq_min, freq_max):
        if fq > hi:
            surplus += fq - hi
        elif fq < lo:
            deficit += lo - fq
    return max(surplus, deficit)
