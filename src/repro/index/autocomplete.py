"""Error-tolerant autocompletion over a trie.

The paper's motivating applications (section 1) tolerate input errors
*while the user is still typing* — the query is a prefix, and it may
already contain typos. This module answers that query shape: find
dataset strings some **prefix** of which is within edit distance ``k``
of the query, ranked by the best such prefix distance.

The algorithm is the familiar banded descent with one twist: along a
path, ``row[len(query)]`` is the edit distance between the query and
the path's current prefix; each string's score is the minimum of that
value over all its prefixes. Once the DP band dies but the running
best is within budget, the whole subtree completes at that score and
is collected by plain enumeration — no more DP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distance.banded import check_threshold
from repro.index.node import TrieNode


@dataclass(frozen=True)
class Completion:
    """One autocompletion candidate.

    Attributes
    ----------
    string:
        The completed dataset string.
    prefix_distance:
        The smallest edit distance between the query and any prefix of
        this string — 0 for plain prefix matches.
    multiplicity:
        Occurrences of the string in the dataset (popularity proxy).
    """

    string: str
    prefix_distance: int
    multiplicity: int = 1


def autocomplete(trie, query: str, k: int, *,
                 limit: int | None = 10) -> list[Completion]:
    """Completions whose best prefix is within distance ``k`` of ``query``.

    Parameters
    ----------
    trie:
        A :class:`repro.index.trie.PrefixTrie` or
        :class:`repro.index.compressed.CompressedTrie`.
    query:
        What the user typed so far (may be empty: every string then
        completes at distance 0).
    k:
        Typo budget for the typed prefix.
    limit:
        Keep only the best ``limit`` completions (ranked by prefix
        distance, then string); ``None`` returns everything.

    Examples
    --------
    >>> from repro.index import PrefixTrie
    >>> trie = PrefixTrie(["Magdeburg", "Marburg", "Hamburg"])
    >>> [c.string for c in autocomplete(trie, "Mag", 0)]
    ['Magdeburg']
    >>> [c.string for c in autocomplete(trie, "Mxg", 1)]
    ['Magdeburg']
    >>> [c.string for c in autocomplete(trie, "Ha", 0)]
    ['Hamburg']
    """
    check_threshold(k)
    if limit is not None and limit < 1:
        raise ValueError(f"limit must be positive or None, got {limit}")

    n = len(query)
    infinity = k + 1
    #: string -> (best prefix distance, multiplicity)
    found: dict[str, tuple[int, int]] = {}

    def record(string: str, distance: int, multiplicity: int) -> None:
        previous = found.get(string)
        if previous is None or distance < previous[0]:
            found[string] = (distance, multiplicity)

    def collect_subtree(node: TrieNode, prefix: str,
                        distance: int) -> None:
        """Every terminal below completes at ``distance``."""
        prefix = prefix + node.label
        if node.is_terminal:
            record(prefix, distance, node.terminal_count)
        for child in node.children.values():
            collect_subtree(child, prefix, distance)

    def walk(node: TrieNode, prefix: str, depth: int,
             row: list[int], best: int) -> None:
        for symbol in node.label:
            depth += 1
            lo = max(0, depth - k)
            hi = min(n, depth + k)
            if lo > n:
                # The path overshot the query by more than k symbols:
                # no deeper prefix can come closer than ``best``.
                if best <= k:
                    collect_subtree(node, prefix, best)
                return
            new_row = [infinity] * (n + 1)
            if lo == 0:
                new_row[0] = depth
            parent_hi = depth - 1 + k
            for j in range(max(1, lo), hi + 1):
                diagonal = row[j - 1]
                if symbol == query[j - 1]:
                    cost = diagonal
                else:
                    above = row[j] if j <= parent_hi else infinity
                    left = new_row[j - 1]
                    cost = min(diagonal, above, left) + 1
                    if cost > infinity:
                        cost = infinity
                new_row[j] = cost
            row = new_row
            if lo <= n <= hi and row[n] < best:
                best = row[n]
            if min(row[lo:hi + 1], default=infinity) > k:
                # The DP can never re-enter the budget; the subtree's
                # fate rests entirely on ``best``.
                if best <= k:
                    collect_subtree(node, prefix, best)
                return
        full_prefix = prefix + node.label
        if node.is_terminal and best <= k:
            record(full_prefix, best, node.terminal_count)
        for child in node.children.values():
            walk(child, full_prefix, depth, row, best)

    row0 = [j if j <= k else infinity for j in range(n + 1)]
    initial_best = row0[n] if n <= k else infinity
    walk(trie.root, "", 0, row0, initial_best)

    completions = [
        Completion(string, distance, multiplicity)
        for string, (distance, multiplicity) in found.items()
    ]
    completions.sort(key=lambda c: (c.prefix_distance, c.string))
    if limit is not None:
        completions = completions[:limit]
    return completions
