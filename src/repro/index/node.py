"""Trie nodes: the annotated building block of the paper's index.

Each node stores, besides its children, the bookkeeping the paper's
pruning rules need (section 4.1):

* ``terminal_count`` — how many dataset strings end exactly here
  (duplicates are real: gazetteers repeat names).
* ``subtree_min_length`` / ``subtree_max_length`` — the shortest and
  longest dataset string reachable through this node; these feed the
  length-tolerance pruning of conditions (9)/(10).
* optionally ``freq_min`` / ``freq_max`` — per-tracked-symbol count
  bounds over the subtree (the PETER annotation of section 2.3).

Nodes are plain mutable objects; all invariants are maintained by
:class:`repro.index.trie.PrefixTrie` during insertion.
"""

from __future__ import annotations


class TrieNode:
    """One node of a (possibly compressed) prefix tree.

    Attributes
    ----------
    label:
        Symbols on the edge *into* this node. A single character in an
        uncompressed trie; a longer run after radix compression. The
        root's label is the empty string.
    children:
        Mapping from the first symbol of each child's label to the child.
    terminal_count:
        Number of dataset strings ending at this node (0 for inner nodes).
    subtree_min_length / subtree_max_length:
        Bounds over all terminal strings in this subtree.
    freq_min / freq_max:
        Optional per-symbol count bounds (parallel to the tracked symbol
        string held by the owning trie), or ``None`` when the trie was
        built without frequency vectors.
    """

    __slots__ = (
        "label",
        "children",
        "terminal_count",
        "subtree_min_length",
        "subtree_max_length",
        "freq_min",
        "freq_max",
    )

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.children: dict[str, TrieNode] = {}
        self.terminal_count = 0
        self.subtree_min_length = 2**63
        self.subtree_max_length = -1
        self.freq_min: list[int] | None = None
        self.freq_max: list[int] | None = None

    @property
    def is_terminal(self) -> bool:
        """Does at least one dataset string end here?"""
        return self.terminal_count > 0

    @property
    def is_leaf(self) -> bool:
        """Does this node have no children?"""
        return not self.children

    def observe_string(self, length: int,
                       frequency: tuple[int, ...] | None) -> None:
        """Fold one inserted string's length/frequency into the bounds.

        Called for every node on the insertion path, root included.
        """
        if length < self.subtree_min_length:
            self.subtree_min_length = length
        if length > self.subtree_max_length:
            self.subtree_max_length = length
        if frequency is not None:
            if self.freq_min is None:
                self.freq_min = list(frequency)
                self.freq_max = list(frequency)
            else:
                assert self.freq_max is not None
                for i, count in enumerate(frequency):
                    if count < self.freq_min[i]:
                        self.freq_min[i] = count
                    if count > self.freq_max[i]:
                        self.freq_max[i] = count

    def node_count(self) -> int:
        """Number of nodes in this subtree, this node included."""
        total = 1
        stack = list(self.children.values())
        while stack:
            node = stack.pop()
            total += 1
            stack.extend(node.children.values())
        return total

    def __repr__(self) -> str:
        return (
            f"TrieNode(label={self.label!r}, children={len(self.children)}, "
            f"terminal_count={self.terminal_count})"
        )
