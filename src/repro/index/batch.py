"""Batch query execution over a compiled flat trie.

The index-side mirror of :mod:`repro.scan.executor`: where
:class:`repro.scan.executor.BatchScanExecutor` amortizes a workload
against a :class:`repro.scan.corpus.CompiledCorpus`,
:class:`BatchIndexExecutor` amortizes it against a
:class:`repro.index.flat.FlatTrie`:

* identical queries are deduplicated — each distinct ``(query, k)``
  pair descends the trie once per batch, however often it repeats;
* DP row buffers live in a per-executor ``row_bank`` and are reused
  across every query in the batch (and across batches), so the serial
  path allocates one fresh row — row 0 — per query;
* finished rows live in a bounded :class:`repro.scan.cache.LRUCache`,
  so repeats *across* batches are lookups too;
* distinct queries fan out over any :mod:`repro.parallel` runner; the
  flat trie is plain tuples, so a process pool ships it once per chunk.

Results are identical to the object-trie traversal and to the
reference scan by construction (same DP, same sound pruning), and
:func:`repro.core.verification.verify_against_reference` gates exactly
that before any benchmark timing counts.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import perf_counter, time
from typing import Iterable, Sequence

from repro.core.deadline import Budget, Deadline
from repro.core.result import Match, ResultSet
from repro.core.searcher import QueryRunner, Searcher
from repro.data.alphabet import Alphabet
from repro.data.workload import Workload
from repro.distance.banded import check_threshold
from repro.exceptions import DeadlineExceeded, ReproError
from repro.index.flat import FlatTrie, flat_similarity_search
from repro.index.traversal import TraversalStats
from repro.obs.hist import Histogram
from repro.obs.recorder import QueryExemplar
from repro.obs.tracing import (
    adopt_spans,
    emit_span,
    ship_context,
    worker_span,
)
from repro.scan.cache import LRUCache
from repro.scan.executor import (
    DEFAULT_CACHE_SIZE,
    BatchStats,
    _pool_payload,
    _resolve_artifact,
)

#: Histogram names the executor records per executed probe.
TRIE_HISTOGRAMS = (
    "trie.query_seconds",
    "trie.nodes_per_query",
    "trie.symbols_per_query",
)


def _flush_trie_counters(counters: dict, stats: TraversalStats) -> None:
    """Add one traversal's work to an open ``trie.*`` counter mapping."""
    get = counters.get
    counters["trie.searches"] = get("trie.searches", 0) + 1
    counters["trie.nodes_visited"] = get("trie.nodes_visited", 0) \
        + stats.nodes_visited
    counters["trie.symbols_processed"] = get("trie.symbols_processed", 0) \
        + stats.symbols_processed
    counters["trie.branches_pruned_by_length"] = \
        get("trie.branches_pruned_by_length", 0) \
        + stats.branches_pruned_by_length
    counters["trie.branches_pruned_by_frequency"] = \
        get("trie.branches_pruned_by_frequency", 0) \
        + stats.branches_pruned_by_frequency
    counters["trie.matches"] = get("trie.matches", 0) + stats.matches


def probe_query(flat: FlatTrie, query: str, k: int, *,
                use_frequency: bool = True,
                row_bank: list | None = None,
                counters: dict | None = None,
                deadline: Deadline | Budget | None = None) -> list[Match]:
    """One query's matches through the compiled trie, as core matches.

    The flat trie collapses duplicates into terminal multiplicities, so
    rows already list distinct strings — the searcher contract.

    ``counters`` accepts an open ``trie.*`` counter mapping to add this
    descent's work profile to (nodes visited, symbols processed, band
    and frequency prunes, matches); the traversal collects into a
    throwaway :class:`TraversalStats` which is folded in once at the
    end.
    """
    stats = TraversalStats() if counters is not None else None
    try:
        matches = [
            Match(m.string, m.distance)
            for m in flat_similarity_search(
                flat, query, k,
                use_frequency_pruning=use_frequency,
                stats=stats,
                row_bank=row_bank,
                deadline=deadline,
            )
        ]
    except DeadlineExceeded as error:
        if counters is not None:
            _flush_trie_counters(counters, stats)
        # Re-surface the partial in the core Match currency every
        # batch layer speaks.
        raise DeadlineExceeded(
            str(error),
            partial=tuple(Match(m.string, m.distance)
                          for m in error.partial),
            scope=error.scope, completed=error.completed,
            total=error.total,
        ) from error
    if counters is not None:
        _flush_trie_counters(counters, stats)
    return matches


@dataclass(frozen=True)
class _ProbeTask:
    """Picklable per-query work unit for runner fan-out.

    Stateless on purpose: thread runners share one task object across
    workers, so the DP row bank cannot live here — each call brings its
    own rows and the executor keeps the reusable bank on the serial
    path only. With ``collect`` set, each call returns ``(row,
    counters, timers, seconds, spans)`` so worker processes ship their
    work profile — including the ``index.probe`` timer observation and
    any trace spans recorded under the shipped ``trace`` context —
    back with their rows.
    """

    flat: FlatTrie
    k: int
    use_frequency: bool
    collect: bool = False
    trace: dict | None = None

    def __call__(self, query: str):
        flat = _resolve_artifact(self.flat)
        if not self.collect:
            return tuple(probe_query(flat, query, self.k,
                                     use_frequency=self.use_frequency))
        counters: dict = {}
        wall = time()
        started = perf_counter()
        row = tuple(probe_query(flat, query, self.k,
                                use_frequency=self.use_frequency,
                                counters=counters))
        seconds = perf_counter() - started
        spans = worker_span("index.probe", self.trace, wall, seconds,
                            tags={"query": query})
        return row, counters, {"index.probe": (seconds, 1)}, seconds, \
            spans


class BatchIndexExecutor:
    """Answer whole workloads against one :class:`FlatTrie`.

    Parameters
    ----------
    flat:
        The compiled index (built once, shared by every call).
    runner:
        Optional default :class:`repro.core.searcher.QueryRunner` used
        by :meth:`search_many` (overridable per call).
    cache_size:
        Capacity of the ``(query, k)`` result memo; ``0`` disables it.
    use_frequency:
        Apply PETER-style pruning when the trie carries bounds (sound,
        so results never change).

    Examples
    --------
    >>> executor = BatchIndexExecutor(FlatTrie(["Bern", "Bonn", "Ulm"]))
    >>> [m.string for m in executor.search("Bern", 2)]
    ['Bern', 'Bonn']
    >>> results = executor.search_many(["Bern", "Bern", "Ulm"], 1)
    >>> results.total_matches
    3
    >>> executor.stats.deduplicated
    1
    """

    def __init__(self, flat: FlatTrie, *,
                 runner: QueryRunner | None = None,
                 cache_size: int = DEFAULT_CACHE_SIZE,
                 use_frequency: bool = True) -> None:
        if cache_size < 0:
            raise ReproError(
                f"cache_size must be non-negative, got {cache_size}"
            )
        self._flat = flat
        self._runner = runner
        self._cache: LRUCache[tuple[str, int], tuple[Match, ...]] | None = (
            LRUCache(cache_size) if cache_size else None
        )
        self._use_frequency = use_frequency
        self._row_bank: list = []
        self.stats = BatchStats()
        # Cumulative trie.* work counters, merged back from every probe
        # (including ones executed in worker processes).
        self._counters: dict[str, int] = {}
        self._hists = {name: Histogram() for name in TRIE_HISTOGRAMS}
        self._counters_lock = threading.Lock()
        self._metrics = None
        self._recorder = None

    def attach_metrics(self, registry) -> None:
        """Attach a :class:`repro.obs.MetricsRegistry` (or ``None``).

        With a registry attached, the executor mirrors its ``trie.*``
        work counters into it and records ``index.probe`` timer
        observations per executed descent.
        """
        self._metrics = registry

    def counters_snapshot(self) -> dict[str, int]:
        """Cumulative ``trie.*`` work counters since construction.

        Monotonic and thread-safe; includes work done in worker
        processes (tasks ship their counters back with their rows) and
        the serial path's row-bank reuse profile.
        """
        with self._counters_lock:
            return dict(self._counters)

    def hists_snapshot(self) -> dict[str, Histogram]:
        """Cumulative per-probe histograms since construction.

        Same contract as :meth:`counters_snapshot`: monotonic,
        thread-safe, exact to delta, and inclusive of worker-process
        probes (which ship their seconds back with their rows).
        """
        with self._counters_lock:
            return {name: hist.copy()
                    for name, hist in self._hists.items()}

    def attach_recorder(self, recorder) -> None:
        """Attach a :class:`repro.obs.FlightRecorder` (or ``None``)."""
        self._recorder = recorder

    def _merge_counters(self, counters: dict, seconds: float, *,
                        started: float | None = None,
                        timers: dict | None = None) -> None:
        """Fold one executed probe's profile into the cumulative state.

        Every merge here is a whole query (the trie has no chunk
        fan-out), so the per-query histograms record unconditionally.
        ``started`` (serial probes only) upgrades the timer observation
        to a real span for trace export; ``timers`` merges a
        worker-shipped ``{name: (seconds, calls)}`` mapping instead.
        """
        with self._counters_lock:
            own = self._counters
            for name, value in counters.items():
                own[name] = own.get(name, 0) + value
            hists = self._hists
            hists["trie.query_seconds"].record(seconds)
            hists["trie.nodes_per_query"].record(
                counters.get("trie.nodes_visited", 0))
            hists["trie.symbols_per_query"].record(
                counters.get("trie.symbols_processed", 0))
        metrics = self._metrics
        if metrics is not None:
            metrics.merge_counts(counters)
            if timers:
                metrics.merge_timers(timers)
            elif started is not None:
                metrics.record_span("index.probe", started, seconds)
            else:
                metrics.observe("index.probe", seconds)

    def _offer_exemplar(self, query: str, k: int, seconds: float,
                        matches: int, counters: dict) -> None:
        """Offer a completed probe to the flight recorder, if any."""
        recorder = self._recorder
        if recorder is not None and recorder.interested(seconds):
            recorder.record(QueryExemplar(
                query=query, k=k, backend="flat-index",
                seconds=seconds, matches=matches,
                stages={"index.probe": seconds},
                counters=dict(counters),
            ))

    def _probe_with_bank(self, query: str, k: int,
                         deadline: Deadline | Budget | None = None
                         ) -> tuple[Match, ...]:
        """Serial-path probe: reuse the executor's DP row bank.

        Row-bank reuse is counted here — rows the bank already held are
        reuses; any growth is fresh allocation — because only the
        serial path owns a bank (worker probes bring their own rows).
        """
        counters: dict = {}
        bank = self._row_bank
        held = len(bank)
        started = perf_counter()
        try:
            row = tuple(probe_query(self._flat, query, k,
                                    use_frequency=self._use_frequency,
                                    row_bank=bank,
                                    counters=counters,
                                    deadline=deadline))
        except DeadlineExceeded:
            self._merge_counters(counters, perf_counter() - started,
                                 started=started)
            raise
        seconds = perf_counter() - started
        grown = len(bank) - held
        counters["trie.rows_allocated"] = grown
        if grown == 0 and held:
            # The descent ran entirely on previously banked rows.
            counters["trie.bank_reuses"] = 1
        self._merge_counters(counters, seconds, started=started)
        self._offer_exemplar(query, k, seconds, len(row), counters)
        emit_span("index.probe", seconds, {"query": query})
        return row

    @property
    def flat(self) -> FlatTrie:
        """The compiled index."""
        return self._flat

    @property
    def cache(self) -> LRUCache | None:
        """The result memo (``None`` when disabled)."""
        return self._cache

    def search(self, query: str, k: int, *,
               deadline: Deadline | Budget | None = None) -> list[Match]:
        """One query's matches (memoized like any batch member).

        With a ``deadline`` set, an expiring descent raises
        :class:`DeadlineExceeded` carrying the matches proven so far;
        partial rows are never stored in the memo.
        """
        check_threshold(k)
        row = self._cached_row(query, k)
        if row is None:
            row = self._probe_with_bank(query, k, deadline)
            self.stats.scans_executed += 1
            self._store_row(query, k, row)
        else:
            self.stats.cache_hits += 1
        self.stats.queries_seen += 1
        self.stats.unique_queries += 1
        return list(row)

    def search_many(self, queries: Sequence[str], k: int, *,
                    runner: QueryRunner | None = None,
                    deadline: Deadline | Budget | None = None
                    ) -> ResultSet:
        """Answer a whole batch, amortizing per-query work.

        Returns a :class:`ResultSet` with one row per input query, in
        input order — duplicate queries share one descent but still get
        their own (identical) rows, so the result is directly
        comparable to any per-query searcher's.

        With a ``deadline`` set, distinct queries execute serially (so
        the abort point is well-defined) and an expiry raises
        :class:`DeadlineExceeded` whose ``partial`` is a mapping of the
        *completed* queries to their full rows.
        """
        check_threshold(k)
        queries = list(queries)
        runner = runner if runner is not None else self._runner

        order: dict[str, None] = dict.fromkeys(queries)
        resolved: dict[str, tuple[Match, ...]] = {}
        misses: list[str] = []
        for query in order:
            row = self._cached_row(query, k)
            if row is None:
                misses.append(query)
            else:
                resolved[query] = row
                self.stats.cache_hits += 1

        if misses:
            if deadline is not None:
                self._execute_bounded(misses, k, deadline, resolved,
                                      total=len(order))
            else:
                rows = self._execute(misses, k, runner)
                for query, row in zip(misses, rows):
                    resolved[query] = row
                    self._store_row(query, k, row)
                self.stats.scans_executed += len(misses)

        self.stats.queries_seen += len(queries)
        self.stats.unique_queries += len(order)
        return ResultSet(queries, [resolved[query] for query in queries])

    def _execute_bounded(self, misses: list[str], k: int,
                         deadline: Deadline | Budget,
                         resolved: dict[str, tuple[Match, ...]],
                         total: int) -> None:
        """Serial deadline-bounded execution, filling ``resolved``."""
        for query in misses:
            try:
                row = self._probe_with_bank(query, k, deadline)
            except DeadlineExceeded as error:
                raise DeadlineExceeded(
                    f"batch index probe exceeded its deadline with "
                    f"{len(resolved)} of {total} distinct queries "
                    f"complete (in-flight: {error})",
                    partial=dict(resolved), scope="queries",
                    completed=len(resolved), total=total,
                ) from error
            self.stats.scans_executed += 1
            resolved[query] = row
            self._store_row(query, k, row)

    def run_workload(self, workload: Workload,
                     runner: QueryRunner | None = None) -> ResultSet:
        """Workload adapter mirroring :meth:`Searcher.run_workload`."""
        return self.search_many(list(workload.queries), workload.k,
                                runner=runner)

    # ------------------------------------------------------------------

    def _cached_row(self, query: str, k: int) -> tuple[Match, ...] | None:
        if self._cache is None:
            return None
        return self._cache.get((query, k))

    def _store_row(self, query: str, k: int,
                   row: tuple[Match, ...]) -> None:
        if self._cache is not None:
            self._cache.put((query, k), row)

    def _execute(self, misses: list[str], k: int,
                 runner: QueryRunner | None) -> list[tuple[Match, ...]]:
        if runner is None or len(misses) == 1:
            return [self._probe_with_bank(query, k) for query in misses]
        task = _ProbeTask(_pool_payload(self._flat, runner, "flat trie"),
                          k, self._use_frequency, collect=True,
                          trace=ship_context())
        rows: list[tuple[Match, ...]] = []
        for query, (row, counters, timers, seconds, spans) in zip(
                misses, runner.run(task, misses)):
            self._merge_counters(counters, seconds, timers=timers)
            self._offer_exemplar(query, k, seconds, len(row), counters)
            adopt_spans(spans)
            rows.append(row)
        return rows


class FlatIndexSearcher(Searcher):
    """The Searcher adapter over the batch index engine.

    Drop-in sibling of :class:`repro.scan.searcher.CompiledScanSearcher`
    on the index side: same constructor shape, same
    :meth:`search`/:meth:`search_many`/:meth:`run_workload` contract,
    same result sets — so the engine, the CLI and the benchmark harness
    can put the *index* on the batch path without touching anything
    downstream.

    Examples
    --------
    >>> searcher = FlatIndexSearcher(["Berlin", "Bern", "Ulm"])
    >>> [match.string for match in searcher.search("Berlino", 2)]
    ['Berlin']
    """

    def __init__(self, dataset: Iterable[str] | FlatTrie, *,
                 compress: bool = True,
                 tracked_symbols: str | None = None,
                 alphabet: Alphabet | None = None,
                 runner: QueryRunner | None = None,
                 cache_size: int = DEFAULT_CACHE_SIZE,
                 use_frequency: bool = True) -> None:
        if isinstance(dataset, FlatTrie):
            self._flat = dataset
        else:
            self._flat = FlatTrie(
                dataset, compress=compress,
                tracked_symbols=tracked_symbols, alphabet=alphabet,
            )
        self._executor = BatchIndexExecutor(
            self._flat, runner=runner, cache_size=cache_size,
            use_frequency=use_frequency,
        )
        self.name = "flat-index"

    @property
    def flat(self) -> FlatTrie:
        """The compiled index."""
        return self._flat

    @property
    def executor(self) -> BatchIndexExecutor:
        """The batch engine answering queries."""
        return self._executor

    def attach_metrics(self, registry) -> None:
        """Forward a metrics registry to the underlying executor."""
        self._executor.attach_metrics(registry)

    def counters_snapshot(self) -> dict[str, int]:
        """Cumulative ``trie.*`` counters of the underlying executor."""
        return self._executor.counters_snapshot()

    def hists_snapshot(self) -> dict[str, Histogram]:
        """Cumulative per-probe histograms of the underlying executor."""
        return self._executor.hists_snapshot()

    def attach_recorder(self, recorder) -> None:
        """Forward a flight recorder to the underlying executor."""
        self._executor.attach_recorder(recorder)

    @property
    def dataset(self) -> tuple[str, ...]:
        """The distinct indexed strings (lexicographic order)."""
        return self._flat.strings

    def search(self, query: str, k: int, *, deadline=None) -> list[Match]:
        """All distinct dataset strings within distance ``k``."""
        return self._executor.search(query, k, deadline=deadline)

    def search_many(self, queries, k: int, *,
                    runner: QueryRunner | None = None,
                    deadline=None) -> ResultSet:
        """Batch entry point (see :meth:`BatchIndexExecutor.search_many`)."""
        return self._executor.search_many(queries, k, runner=runner,
                                          deadline=deadline)

    def run_workload(self, workload: Workload,
                     runner: QueryRunner | None = None) -> ResultSet:
        """Execute a workload through the batch index path."""
        return self._executor.search_many(
            list(workload.queries), workload.k, runner=runner
        )
