"""Suffix array substrate (Navarro-style related work, section 2.3).

Navarro et al. replace suffix *trees* by suffix *arrays* to tame index
size, and tame the exponential dependence on pattern length and
threshold by splitting the pattern and integrating partial results.
This module provides both pieces over a text (typically the
concatenated dataset or a reference genome):

* :class:`SuffixArray` — prefix-doubling construction (O(n log² n)),
  binary-search exact pattern lookup.
* :meth:`SuffixArray.approximate_occurrences` — pattern partitioning:
  a pattern within distance ``k`` of a text window must contain at
  least one of its ``k + 1`` pieces *exactly* (pigeonhole), so piece
  hits found via the array seed banded verifications around them.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass

from repro.distance.banded import check_threshold, edit_distance_bounded


class SuffixArray:
    """Sorted array of all suffixes of a text.

    >>> sa = SuffixArray("banana")
    >>> sa.find_occurrences("ana")
    [1, 3]
    """

    def __init__(self, text: str) -> None:
        self._text = text
        self._array = _build_suffix_array(text)

    @property
    def text(self) -> str:
        """The indexed text."""
        return self._text

    @property
    def array(self) -> list[int]:
        """Suffix start positions in lexicographic suffix order."""
        return list(self._array)

    def __len__(self) -> int:
        return len(self._array)

    def _suffix_range(self, pattern: str) -> tuple[int, int]:
        """Half-open range of array slots whose suffixes start with pattern."""
        text = self._text
        array = self._array
        # bisect on a key view: compare the pattern against each suffix's
        # prefix of the same length (truncation preserves suffix order).
        lo = bisect_left(
            array, pattern,
            key=lambda start: text[start:start + len(pattern)],
        )
        hi = bisect_right(
            array, pattern,
            key=lambda start: text[start:start + len(pattern)],
        )
        return lo, hi

    def find_occurrences(self, pattern: str) -> list[int]:
        """Sorted start positions of every exact occurrence of ``pattern``.

        The empty pattern occurs before every suffix; by convention it
        returns every position (matching ``str.find`` semantics would be
        ambiguous, and callers partitioning patterns never pass it).
        """
        if not pattern:
            return list(range(len(self._text)))
        lo, hi = self._suffix_range(pattern)
        return sorted(self._array[lo:hi])

    def contains(self, pattern: str) -> bool:
        """Does ``pattern`` occur in the text?"""
        if not pattern:
            return True
        lo, hi = self._suffix_range(pattern)
        return hi > lo

    def approximate_occurrences(self, pattern: str,
                                k: int) -> list["ApproximateHit"]:
        """Windows of the text within edit distance ``k`` of ``pattern``.

        Implements Navarro-style pattern partitioning: split the pattern
        into ``k + 1`` pieces; any window within distance ``k`` contains
        at least one piece unedited, so exact piece occurrences (found
        through the array) seed candidate windows that a banded kernel
        verifies. Overlapping verified windows are deduplicated keeping
        the lowest distance per start position.
        """
        check_threshold(k)
        if not pattern:
            raise ValueError("cannot search for an empty pattern")
        text = self._text
        m = len(pattern)

        best_by_start: dict[int, ApproximateHit] = {}
        if m <= k:
            # Pigeonhole needs k + 1 non-empty pieces, which a pattern of
            # length <= k cannot supply; but such a pattern is within k of
            # some window at essentially every position, so verify all.
            for start in range(len(text) + 1):
                hit = _verify_window(text, start, pattern, k)
                if hit is not None:
                    best_by_start[start] = hit
            return sorted(best_by_start.values(), key=lambda h: h.start)

        pieces = _partition(pattern, k + 1)
        for piece_offset, piece in pieces:
            if not piece:
                continue
            for occurrence in self.find_occurrences(piece):
                # The piece sits at pattern offset ``piece_offset``; the
                # candidate window starts near occurrence - piece_offset,
                # blurred by up to k indels on either side.
                anchor = occurrence - piece_offset
                for start in range(max(0, anchor - k), anchor + k + 1):
                    if start > len(text):
                        break
                    if start in best_by_start:
                        continue
                    hit = _verify_window(text, start, pattern, k)
                    if hit is not None:
                        best_by_start[start] = hit
        return sorted(best_by_start.values(), key=lambda h: h.start)


@dataclass(frozen=True)
class ApproximateHit:
    """A verified approximate occurrence inside the indexed text."""

    start: int
    end: int
    distance: int

    @property
    def length(self) -> int:
        """Window length in the text."""
        return self.end - self.start


def _verify_window(text: str, start: int, pattern: str,
                   k: int) -> ApproximateHit | None:
    """Best window starting at ``start`` within distance ``k``, if any."""
    m = len(pattern)
    best: ApproximateHit | None = None
    for length in range(max(0, m - k), m + k + 1):
        end = start + length
        if end > len(text):
            break
        distance = edit_distance_bounded(pattern, text[start:end], k)
        if distance is None:
            continue
        if best is None or distance < best.distance:
            best = ApproximateHit(start, end, distance)
    return best


def _partition(pattern: str, pieces: int) -> list[tuple[int, str]]:
    """Split ``pattern`` into ``pieces`` near-equal chunks with offsets."""
    length = len(pattern)
    pieces = min(pieces, length) or 1
    base = length // pieces
    remainder = length % pieces
    result = []
    offset = 0
    for index in range(pieces):
        size = base + (1 if index < remainder else 0)
        result.append((offset, pattern[offset:offset + size]))
        offset += size
    return result


def _build_suffix_array(text: str) -> list[int]:
    """Prefix-doubling suffix-array construction, O(n log² n).

    Ranks start as single-symbol codes and double the compared prefix
    length each round until all ranks are distinct.
    """
    n = len(text)
    if n == 0:
        return []
    order = sorted(range(n), key=lambda i: text[i])
    ranks = [0] * n
    previous_symbol = None
    rank = -1
    for position in order:
        symbol = text[position]
        if symbol != previous_symbol:
            rank += 1
            previous_symbol = symbol
        ranks[position] = rank

    step = 1
    while rank < n - 1:
        def sort_key(i: int) -> tuple[int, int]:
            tail = ranks[i + step] if i + step < n else -1
            return ranks[i], tail

        order.sort(key=sort_key)
        new_ranks = [0] * n
        rank = 0
        new_ranks[order[0]] = 0
        for previous, current in zip(order, order[1:]):
            if sort_key(current) != sort_key(previous):
                rank += 1
            new_ranks[current] = rank
        ranks = new_ranks
        step *= 2
    return order
