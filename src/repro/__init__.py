"""repro — string similarity search: sequential scan vs. prefix-tree index.

A complete, from-scratch Python reproduction of

    Hentschel, Meyer, Rommel:
    *Trying to outperform a well-known index with a sequential scan.*
    EDBT/ICDT 2013 Joint Conference.

The library answers bounded edit-distance queries (find every dataset
string within edit distance ``k`` of a query) two ways — an aggressively
optimized sequential scan and an annotated (compressed) prefix-tree
index — and ships the full experimental apparatus the paper built
around that comparison: staged optimizations, filters, parallel
execution strategies, dataset generators, and a benchmark harness that
regenerates every table and figure of the evaluation.

Quick start
-----------
>>> from repro import SearchEngine
>>> engine = SearchEngine(["Berlin", "Bern", "Ulm", "Hamburg"])
>>> [match.string for match in engine.search("Berlino", 2)]
['Berlin']

See README.md for the architecture tour and DESIGN.md for the
paper-to-module map.
"""

from repro.core.deadline import Budget, Deadline
from repro.core.engine import SearchEngine
from repro.core.explain import explain_pair
from repro.core.planner import (
    CostProfile,
    Planner,
    PlannerPolicy,
    QueryPlan,
    calibrate,
)
from repro.core.request import SearchOptions, SearchRequest
from repro.core.indexed import IndexedSearcher
from repro.core.join import (
    JoinPair,
    JoinResult,
    deduplicate,
    similarity_join,
)
from repro.core.pipeline import Approach, ApproachPipeline, StageOutcome
from repro.core.problem import SimilaritySearchProblem
from repro.core.topk import nearest, search_topk
from repro.core.updatable import UpdatableIndex
from repro.core.result import Match, ResultSet
from repro.core.sequential import SequentialScanSearcher
from repro.core.verification import (
    verify_against_reference,
    verify_result_sets,
)
from repro.data.workload import Workload, make_workload
from repro.scan import (
    BatchScanExecutor,
    CompiledCorpus,
    CompiledScanSearcher,
)
from repro.distance.banded import edit_distance_bounded, within_distance
from repro.distance.levenshtein import edit_distance
from repro.obs import (
    MetricsRegistry,
    SearchReport,
    build_report,
    use_registry,
    validate_report,
)
from repro.exceptions import (
    AlphabetError,
    DatasetFormatError,
    DeadlineExceeded,
    FrozenCorpusError,
    IndexConstructionError,
    InvalidThresholdError,
    ParallelismError,
    PartialResultError,
    ReproError,
    ServiceOverloaded,
    VerificationError,
    WorkloadError,
)
from repro.live import Corpus, CorpusEvent, LiveCorpus
from repro.service import Service, ServiceResult, ShardedCorpus

__version__ = "1.0.0"

__all__ = [
    "SearchEngine",
    "SequentialScanSearcher",
    "CompiledScanSearcher",
    "CompiledCorpus",
    "BatchScanExecutor",
    "IndexedSearcher",
    "SimilaritySearchProblem",
    "Match",
    "ResultSet",
    "Approach",
    "ApproachPipeline",
    "StageOutcome",
    "verify_result_sets",
    "verify_against_reference",
    "Workload",
    "make_workload",
    "JoinPair",
    "JoinResult",
    "similarity_join",
    "deduplicate",
    "search_topk",
    "nearest",
    "UpdatableIndex",
    "Corpus",
    "CorpusEvent",
    "LiveCorpus",
    "MetricsRegistry",
    "SearchReport",
    "build_report",
    "use_registry",
    "validate_report",
    "explain_pair",
    "edit_distance",
    "edit_distance_bounded",
    "within_distance",
    "SearchRequest",
    "SearchOptions",
    "Planner",
    "PlannerPolicy",
    "QueryPlan",
    "CostProfile",
    "calibrate",
    "Deadline",
    "Budget",
    "Service",
    "ServiceResult",
    "ShardedCorpus",
    "ReproError",
    "FrozenCorpusError",
    "InvalidThresholdError",
    "AlphabetError",
    "DatasetFormatError",
    "VerificationError",
    "WorkloadError",
    "IndexConstructionError",
    "ParallelismError",
    "DeadlineExceeded",
    "ServiceOverloaded",
    "PartialResultError",
    "__version__",
]
