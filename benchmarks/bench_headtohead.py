"""Head-to-head: compiled scan vs compiled index, both sides fast.

PR 1 compiled the scan side (:mod:`repro.scan`); this benchmark exists
because the index side is now compiled too (:mod:`repro.index.flat`),
which makes the paper's central comparison fair again: neither solution
is handicapped by per-node (or per-string) interpreter overhead.

Four contenders answer the same workloads on both of the paper's
regimes, across the full Table-I threshold ladders (city k = 0..3,
DNA k = 0/4/8/16):

* ``trie`` — the paper's base index, ``IndexedSearcher(index="trie")``;
* ``compressed`` — its radix-merged stage 2;
* ``flat_index`` — the compressed trie frozen into flat arrays,
  answered through :class:`repro.index.batch.BatchIndexExecutor`;
* ``compiled_scan`` — the compiled-corpus batch scan of PR 1.

Correctness is gated off-clock, twice: every contender's rows must be
identical at every rung, and the flat index is checked against the
reference kernel on a sampled sub-workload
(:func:`repro.core.verification.verify_against_reference`), with the
sample size recorded in the JSON. Index/corpus builds happen before the
clock starts — the paper times query execution only.

The run emits ``BENCH_headtohead.json`` at the repository root. The
acceptance bar lives on the DNA regime, where the paper says the index
should win: the compiled flat trie must finish the ladder at least 2x
faster than the object trie it froze.

Run directly::

    PYTHONPATH=src python benchmarks/bench_headtohead.py

``--smoke`` shrinks everything to a seconds-long, correctness-only run
(used by CI); ``--verify-sample N`` sizes the off-clock reference gate.
"""

from __future__ import annotations

import argparse
import platform
import time
from pathlib import Path

try:  # package mode (pytest) vs script mode (python benchmarks/...)
    from benchmarks import common
except ImportError:  # pragma: no cover - script-mode fallback
    import common

from repro.core.indexed import IndexedSearcher
from repro.core.verification import verify_against_reference
from repro.data.cities import generate_city_names
from repro.data.dna import generate_reads
from repro.data.workload import (
    CITY_THRESHOLDS,
    DNA_THRESHOLDS,
    make_workload,
)
from repro.index.batch import FlatIndexSearcher
from repro.obs.hist import hists_delta
from repro.obs.registry import counter_delta
from repro.obs.report import BatchCounters, build_report
from repro.scan.searcher import CompiledScanSearcher

#: Which report backend each contender's rows come from.
_CONTENDER_BACKENDS = {
    "trie": "indexed",
    "compressed": "indexed",
    "flat_index": "indexed",
    "compiled_scan": "compiled",
}


def _batch_counters(searcher):
    """The cumulative BatchStats tuple of a batch contender, else None."""
    executor = getattr(searcher, "executor", None)
    if executor is None:
        return None
    stats = executor.stats
    return (stats.queries_seen, stats.unique_queries,
            stats.cache_hits, stats.scans_executed)

#: Where the machine-readable record lands (repository root).
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_headtohead.json"

#: Default off-clock reference-gate sample per regime (the quadratic
#: reference kernel dominates wall time well before it adds confidence).
VERIFY_QUERIES = 20

#: The acceptance bar: flat trie vs object trie on the DNA ladder.
REQUIRED_DNA_SPEEDUP = 2.0


def _time(function):
    started = time.perf_counter()
    value = function()
    return value, time.perf_counter() - started


def run_regime(dataset, *, label: str, thresholds, queries_per_k: int,
               alphabet_symbols: str,
               verify_sample: int = VERIFY_QUERIES) -> dict:
    """One regime's full threshold ladder; returns its record."""
    # Build each contender separately so per-structure build cost is
    # attributable (and clearly outside every timed rung).
    contenders = []
    builds = {}
    for name, factory in (
        ("trie", lambda: IndexedSearcher(dataset, index="trie")),
        ("compressed",
         lambda: IndexedSearcher(dataset, index="compressed")),
        ("flat_index", lambda: FlatIndexSearcher(dataset)),
        ("compiled_scan", lambda: CompiledScanSearcher(dataset)),
    ):
        searcher, seconds = _time(factory)
        contenders.append((name, searcher))
        builds[name] = round(seconds, 6)

    ladder = []
    totals = {name: 0.0 for name, _ in contenders}
    for k in thresholds:
        workload = make_workload(
            dataset, queries_per_k, k,
            alphabet_symbols=alphabet_symbols,
            seed=2013 + k, name=f"{label}-k{k}",
        )
        rows = {}
        seconds = {}
        reports = {}
        for name, searcher in contenders:
            before = searcher.counters_snapshot()
            before_hists = searcher.hists_snapshot()
            batch_before = _batch_counters(searcher)
            rows[name], seconds[name] = _time(
                lambda s=searcher: s.run_workload(workload)
            )
            totals[name] += seconds[name]
            # Every contender speaks the same SearchReport schema; the
            # per-rung reports embed the work-counter and histogram
            # deltas so the JSON artifact records what each ladder rung
            # actually did — latency quantiles included, which is what
            # the regression gate diffs (and CI validates the schema).
            batch_after = _batch_counters(searcher)
            reports[name] = build_report(
                backend=_CONTENDER_BACKENDS[name],
                engine=searcher.name,
                mode="workload",
                queries=len(workload),
                k=k,
                matches=rows[name].total_matches,
                seconds=seconds[name],
                counters=counter_delta(before,
                                       searcher.counters_snapshot()),
                histograms=hists_delta(before_hists,
                                       searcher.hists_snapshot()),
                batch=BatchCounters(
                    queries_seen=batch_after[0] - batch_before[0],
                    unique_queries=batch_after[1] - batch_before[1],
                    cache_hits=batch_after[2] - batch_before[2],
                    scans_executed=batch_after[3] - batch_before[3],
                ) if batch_before is not None else None,
                choice_reason=f"benchmark contender ({label} regime)",
            ).to_dict()
        # Off-clock gate 1: every contender returns identical rows.
        reference_name, reference_rows = next(iter(rows.items()))
        for name, result in rows.items():
            assert result == reference_rows, (
                f"{label} k={k}: {name} diverges from {reference_name}"
            )
        ladder.append({
            "k": k,
            "queries": len(workload),
            "matches": reference_rows.total_matches,
            "seconds": {name: round(value, 6)
                        for name, value in seconds.items()},
            "reports": reports,
        })

    # Off-clock gate 2: the flat index against the reference kernel on
    # a sampled sub-workload at the ladder's hardest rung.
    gate_workload = make_workload(
        dataset, min(verify_sample, queries_per_k), thresholds[-1],
        alphabet_symbols=alphabet_symbols,
        seed=2013 + thresholds[-1], name=f"{label}-verify",
    )
    flat = dict(contenders)["flat_index"]
    _, verify_seconds = _time(lambda: verify_against_reference(
        flat, dataset, gate_workload,
        candidate_name=f"flat_index[{label}]",
    ))

    flat_speedup = (
        totals["trie"] / totals["flat_index"]
        if totals["flat_index"] else 0.0
    )
    return {
        "regime": label,
        "dataset_strings": len(dataset),
        "thresholds": list(thresholds),
        "queries_per_k": queries_per_k,
        "build_seconds_offclock": builds,
        "ladder": ladder,
        "total_seconds": {name: round(value, 6)
                          for name, value in totals.items()},
        "flat_vs_trie_speedup": round(flat_speedup, 3),
        "verify_sample": len(gate_workload),
        "verify_seconds_offclock": round(verify_seconds, 6),
    }


def run_benchmark(*, city_count: int = 4000, dna_count: int = 300,
                  city_queries: int = 60, dna_queries: int = 15,
                  verify_sample: int = VERIFY_QUERIES,
                  smoke: bool = False) -> dict:
    """Both regimes, full ladders; returns the record written to JSON."""
    if smoke:
        city_count, dna_count = 150, 40
        city_queries, dna_queries = 6, 4
        verify_sample = min(verify_sample, 4)
    cities = generate_city_names(city_count, seed=2013)
    reads = generate_reads(dna_count, seed=2013)

    record = {
        "benchmark": "bench_headtohead",
        "python": platform.python_version(),
        "smoke": smoke,
        "contenders": {
            "trie": "IndexedSearcher(index='trie')",
            "compressed": "IndexedSearcher(index='compressed')",
            "flat_index": "FlatIndexSearcher (BatchIndexExecutor over "
                          "FlatTrie)",
            "compiled_scan": "CompiledScanSearcher (BatchScanExecutor "
                             "over CompiledCorpus)",
        },
        "regimes": [
            run_regime(cities, label="city",
                       thresholds=CITY_THRESHOLDS,
                       queries_per_k=city_queries,
                       alphabet_symbols="abcdefghinorst",
                       verify_sample=verify_sample),
            run_regime(reads, label="dna",
                       thresholds=DNA_THRESHOLDS,
                       queries_per_k=dna_queries,
                       alphabet_symbols="ACGNT",
                       verify_sample=verify_sample),
        ],
    }
    by_regime = {entry["regime"]: entry for entry in record["regimes"]}
    record["dna_flat_vs_trie_speedup"] = (
        by_regime["dna"]["flat_vs_trie_speedup"]
    )
    record["required_dna_speedup"] = REQUIRED_DNA_SPEEDUP
    # Flat per-contender totals for the regression gate: one stable
    # label per (regime, contender) pair plus the off-clock build cost.
    record["measurements"] = common.build_measurements({
        f"{entry['regime']}.{name}_total_seconds": seconds
        for entry in record["regimes"]
        for name, seconds in entry["total_seconds"].items()
    } | {
        f"{entry['regime']}.{name}_build_seconds": seconds
        for entry in record["regimes"]
        for name, seconds in entry["build_seconds_offclock"].items()
    })
    return record


def render(record: dict) -> str:
    lines = [
        "head-to-head: compiled scan vs compiled index "
        "(seconds per ladder rung)",
        f"  python {record['python']}"
        + ("  [smoke: correctness only]" if record["smoke"] else ""),
    ]
    names = list(record["contenders"])
    for entry in record["regimes"]:
        lines.append("")
        lines.append(
            f"  {entry['regime']} — {entry['dataset_strings']} strings, "
            f"{entry['queries_per_k']} queries per k"
        )
        header = f"  {'k':>4}{'matches':>9}"
        header += "".join(f"{name:>15}" for name in names)
        lines.append(header)
        for rung in entry["ladder"]:
            row = f"  {rung['k']:>4}{rung['matches']:>9}"
            row += "".join(
                f"{rung['seconds'][name]:>14.3f}s" for name in names
            )
            lines.append(row)
        total = f"  {'all':>4}{'':>9}"
        total += "".join(
            f"{entry['total_seconds'][name]:>14.3f}s" for name in names
        )
        lines.append(total)
        lines.append(
            f"  flat index vs object trie: "
            f"{entry['flat_vs_trie_speedup']:.2f}x "
            f"(reference-verified on {entry['verify_sample']} queries, "
            f"off-clock)"
        )
    lines.append("")
    lines.append(
        f"  DNA regime gate: {record['dna_flat_vs_trie_speedup']:.2f}x "
        f">= {record['required_dna_speedup']:.1f}x required"
    )
    return "\n".join(lines)


def write_record(record: dict) -> Path:
    return common.write_record(record, JSON_PATH)


def test_headtohead_speedup(emit):
    record = run_benchmark()
    write_record(record)
    emit("headtohead", render(record))
    # The acceptance bar: on the regime where the paper's index wins,
    # the compiled flat trie must at least double the object trie.
    assert record["dna_flat_vs_trie_speedup"] >= REQUIRED_DNA_SPEEDUP, (
        record
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="compiled scan vs compiled index across the "
                    "paper's threshold ladders",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny datasets, correctness gates only (CI mode; the "
             "speedup bar is not enforced)",
    )
    parser.add_argument(
        "--verify-sample", type=int, default=VERIFY_QUERIES, metavar="N",
        help="queries per regime gated against the reference kernel, "
             f"off-clock (default {VERIFY_QUERIES})",
    )
    parser.add_argument(
        "--stats-format", default=None, choices=("json", "prom"),
        help="additionally print every rung's embedded SearchReports "
             "to stdout (JSON lines or Prometheus text)",
    )
    args = parser.parse_args(argv)
    record = run_benchmark(smoke=args.smoke,
                           verify_sample=args.verify_sample)
    path = write_record(record)
    print(render(record))
    print(f"\nrecorded to {path}")
    if args.stats_format:
        from repro.obs.report import report_from_dict

        for entry in record["regimes"]:
            for rung in entry["ladder"]:
                for rep in rung["reports"].values():
                    report = report_from_dict(rep)
                    if args.stats_format == "json":
                        print(report.to_json())
                    else:
                        print(report.to_prometheus(), end="")
    if args.smoke:
        return 0
    return 0 if (record["dna_flat_vs_trie_speedup"]
                 >= REQUIRED_DNA_SPEEDUP) else 1


if __name__ == "__main__":
    raise SystemExit(main())
