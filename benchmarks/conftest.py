"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one paper artifact through the experiment
registry, records the rendered report under ``benchmarks/results/`` and
echoes it to the terminal, so `pytest benchmarks/ --benchmark-only`
leaves the full set of reproduced tables and figures on disk.

``REPRO_SCALE`` (float, default 1.0) grows dataset and query sizes
toward the paper's original 400k/750k scale.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.experiment import ExperimentScale

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The experiment scale for this benchmark run."""
    return ExperimentScale.from_env()


@pytest.fixture()
def emit(capsys):
    """Persist a report to results/<name>.txt and echo it live."""

    def _emit(name: str, report: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(report + "\n",
                                                 encoding="utf-8")
        with capsys.disabled():
            print(f"\n{report}\n")

    return _emit
