"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one paper artifact through the experiment
registry, records the rendered report under ``benchmarks/results/`` and
echoes it to the terminal, so `pytest benchmarks/ --benchmark-only`
leaves the full set of reproduced tables and figures on disk.

``REPRO_SCALE`` (float, default 1.0) grows dataset and query sizes
toward the paper's original 400k/750k scale.
"""

from __future__ import annotations

import pytest

from benchmarks import common
from repro.bench.experiment import ExperimentScale

RESULTS_DIR = common.RESULTS_DIR


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The experiment scale for this benchmark run."""
    return ExperimentScale.from_env()


@pytest.fixture()
def emit(capsys):
    """Persist a report to results/<name>.txt and echo it live."""

    def _emit(name: str, report: str) -> None:
        common.emit_text(name, report)
        with capsys.disabled():
            print(f"\n{report}\n")

    return _emit
