"""Traffic-layer replay: open-loop arrivals through the async gateway.

Four operational claims of :mod:`repro.traffic`, measured on one
fixed-rate replay of a mixed city/DNA workload (Zipf-skewed queries,
the shape real front-ends see):

* **cache** — the normalized hot-query cache must cut p50 latency by
  at least ``2x`` on the skewed replay (hot queries answer from
  memory; the uncached run pays the scan every time);
* **pools** — the adaptively managed shard pools (queue-responsive
  batch draining through the vectorized batch executor, crews re-fit
  by the paper's Section 3.6 open-at-70%/close-at-30% rules) must
  sustain at least ``1.2x`` the throughput of a static even split
  serving one query at a time. On a single-core runner the advantage
  is batch amortization (dedup + one vectorized pass per drained
  batch), not parallel speedup — the record says which it measured;
* **shedding** — under deliberate overload, watermark shedding must
  keep the p99 of every *accepted* request (admitted or degraded to
  the filter-only floor) within ``2x`` the requested deadline while
  the gateway queue depth stays bounded below the reject watermark;
* **tracing** — request tracing enabled-but-unsampled (the production
  stance between sampled requests) must hold p50 within ``5%`` of the
  untraced replay, and the fully sampled replay must produce one
  single-rooted span tree per submit with trace-stamped event lines.

Latency is **coordinated-omission safe**: every request has a
scheduled arrival time on a fixed-rate clock, and its latency is
measured from that schedule, not from whenever the loop got around to
sending it — a backlog inflates the numbers instead of hiding them.

Answers are verified off-clock: cached results must be the identical
objects the uncached path produced (and match the reference scan), and
floor answers must be candidate supersets of the exact answer.

Emits ``BENCH_traffic.json`` at the repository root (schema-validated
reports embedded, diffable by ``python -m repro.obs.regress``). Run::

    PYTHONPATH=src python benchmarks/bench_traffic.py --smoke
"""

from __future__ import annotations

import argparse
import asyncio
import platform
import random
import time
from pathlib import Path

try:  # package mode (pytest) vs script mode (python benchmarks/...)
    from benchmarks import common
except ImportError:  # pragma: no cover - script-mode fallback
    import common

from repro.core.deadline import Deadline
from repro.core.request import SearchRequest
from repro.core.sequential import SequentialScanSearcher
from repro.data.cities import generate_city_names
from repro.data.dna import generate_reads
from repro.exceptions import ServiceOverloaded
from repro.obs import EventLog, Tracer, span_tree
from repro.obs.report import require_valid_report
from repro.parallel.adaptive import ManagerRules
from repro.service import Service
from repro.traffic import (
    AdaptivePoolSizer,
    AsyncService,
    LoadShedder,
    ResultCache,
    ShardPools,
    Watermarks,
)

#: Where the machine-readable record lands (repository root).
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_traffic.json"

#: The cache bar: uncached p50 / cached p50 on the skewed replay.
CACHE_SPEEDUP_BAR = 2.0

#: The pool bar: adaptive batched throughput / static per-query.
POOL_THROUGHPUT_BAR = 1.2

#: The shedding bar: accepted-request p99 <= this multiple of deadline.
SHED_P99_MULTIPLE = 2.0

#: The tracing bar: enabled-but-unsampled p50 / untraced p50. The
#: production stance is tracing wired in at a low sample rate, so the
#: per-request cost that matters is the unsampled fast path.
TRACING_OVERHEAD_BAR = 1.05

#: Zipf exponent for the skewed query mix (higher = more head-heavy).
ZIPF_EXPONENT = 1.3

#: Queries gated against the reference scan, off the clock.
VERIFY_SAMPLE = 12

#: k used throughout (queries are corpus members, so matches exist).
K = 2


def _percentile(samples: list[float], fraction: float) -> float:
    ranked = sorted(samples)
    index = min(len(ranked) - 1,
                max(0, int(round(fraction * (len(ranked) - 1)))))
    return ranked[index]


def _latency_summary(samples: list[float]) -> dict:
    return {
        "p50": round(_percentile(samples, 0.50), 6),
        "p95": round(_percentile(samples, 0.95), 6),
        "p99": round(_percentile(samples, 0.99), 6),
        "max": round(max(samples), 6),
    }


def build_workload(city_count: int, read_count: int, query_count: int,
                   *, distinct: int, seed: int = 2013
                   ) -> tuple[list[str], list[str]]:
    """A mixed corpus and a Zipf-skewed query sequence over it.

    The query pool mixes city names and DNA reads (both drawn from the
    corpus, so every query has exact matches); the replay sequence
    samples the pool with Zipf weights — a few head queries dominate,
    exactly the regime a hot-query cache exists for.
    """
    corpus = (generate_city_names(city_count, seed=seed)
              + generate_reads(read_count, seed=seed))
    rng = random.Random(seed)
    pool = rng.sample(corpus, min(distinct, len(corpus)))
    weights = [1.0 / (rank ** ZIPF_EXPONENT)
               for rank in range(1, len(pool) + 1)]
    sequence = rng.choices(pool, weights=weights, k=query_count)
    return corpus, sequence


async def _replay(gateway: AsyncService, requests: list[SearchRequest],
                  qps: float, *, poll_depth: bool = False) -> dict:
    """Open-loop fixed-rate replay; latency from *scheduled* arrival.

    Request ``i`` is due at ``i / qps`` seconds whether or not earlier
    requests finished (coordinated-omission-safe open loop). Returns
    per-request latencies and outcomes, plus the max gateway queue
    depth observed while polling (when asked).
    """
    loop = asyncio.get_running_loop()
    start = loop.time()
    latencies: list[float] = []
    outcomes: list = [None] * len(requests)
    accepted_latencies: list[float] = []
    max_depth = 0

    async def one(index: int, request: SearchRequest) -> None:
        scheduled = start + index / qps
        delay = scheduled - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        try:
            result = await gateway.submit(request)
        except ServiceOverloaded as error:
            outcomes[index] = error
            latencies.append(loop.time() - scheduled)
            return
        seconds = loop.time() - scheduled
        outcomes[index] = result
        latencies.append(seconds)
        accepted_latencies.append(seconds)

    async def watch_depth() -> None:
        nonlocal max_depth
        while True:
            max_depth = max(max_depth, gateway.queue_depth())
            await asyncio.sleep(0.002)

    watcher = asyncio.ensure_future(watch_depth()) if poll_depth else None
    try:
        await asyncio.gather(*(one(i, r) for i, r in enumerate(requests)))
    finally:
        if watcher is not None:
            watcher.cancel()
    return {
        "latencies": latencies,
        "accepted_latencies": accepted_latencies,
        "outcomes": outcomes,
        "max_queue_depth": max_depth,
        "wall_seconds": loop.time() - start,
    }


# --------------------------------------------------------------------
# Config A: cache on vs off on the Zipf-skewed replay.


def run_cache_config(corpus: list[str], sequence: list[str], *,
                     qps: float, verify_sample: int) -> dict:
    requests = [SearchRequest(query, K) for query in sequence]

    off_gateway = AsyncService(Service(corpus, shards=4))
    off = asyncio.run(_replay(off_gateway, requests, qps))

    cache = ResultCache(maxsize=4096)
    on_gateway = AsyncService(Service(corpus, shards=4), cache=cache)
    on = asyncio.run(_replay(on_gateway, requests, qps))

    # Off-clock verification: both paths must answer identically, and
    # exactly — gate a sample against the reference scan.
    reference = SequentialScanSearcher(sorted(set(corpus)))
    verified = 0
    for index in range(0, len(requests),
                       max(1, len(requests) // max(1, verify_sample))):
        off_result, on_result = off["outcomes"][index], on["outcomes"][index]
        exact = tuple(reference.search(requests[index].query, K))
        assert off_result.matches == exact, (
            f"uncached answer {index} diverges from the reference scan")
        assert on_result.matches == exact, (
            f"cached answer {index} diverges from the reference scan")
        verified += 1

    hits = cache.counters_snapshot()["service.cache.hits"]
    off_summary = _latency_summary(off["latencies"])
    on_summary = _latency_summary(on["latencies"])
    speedup = off_summary["p50"] / max(on_summary["p50"], 1e-9)
    report = on_gateway.report(queries=len(requests), k=K,
                               matches=len(requests))
    report_dict = report.to_dict()
    require_valid_report(report_dict)
    return {
        "uncached": off_summary,
        "cached": on_summary,
        "cache_hits": hits,
        "hit_rate": round(hits / len(requests), 4),
        "p50_speedup": round(speedup, 2),
        "bar": CACHE_SPEEDUP_BAR,
        "verified_against_reference": verified,
        "report": report_dict,
    }


# --------------------------------------------------------------------
# Config B: request tracing — unsampled must be free, sampled coherent.


def run_tracing_config(corpus: list[str], sequence: list[str], *,
                       qps: float) -> dict:
    """Replay untraced, enabled-but-unsampled, and fully sampled.

    The overhead claim is about the unsampled fast path (ids minted,
    no spans — what production runs between sampled requests); the
    fully sampled replay is the *correctness* leg: every request must
    come back as one single-rooted span tree, with its event lines
    stamped by the same trace_id.
    """
    requests = [SearchRequest(query, K) for query in sequence]

    def best_of(make_gateway, rounds: int = 3) -> dict:
        # Open-loop p50 on shared hardware carries transient load from
        # whatever else the box is doing; the best of three replays is
        # the arm's honest cost, the same way timeit reports min.
        best = None
        for _ in range(rounds):
            replayed = asyncio.run(
                _replay(make_gateway(), requests, qps))
            summary = _latency_summary(replayed["latencies"])
            if best is None or summary["p50"] < best["p50"]:
                best = summary
        return best

    plain_summary = best_of(
        lambda: AsyncService(Service(corpus, shards=4)))
    unsampled_summary = best_of(
        lambda: AsyncService(Service(corpus, shards=4),
                             tracer=Tracer(sample_rate=0.0)))

    tracer = Tracer(max_spans=65536)
    events = EventLog(capacity=65536)
    sampled_gateway = AsyncService(Service(corpus, shards=4),
                                   tracer=tracer, events=events)
    sampled = asyncio.run(_replay(sampled_gateway, requests, qps))

    # Off-clock structure gate: one submit, one single-rooted tree.
    spans = tracer.spans()
    assert tracer.dropped == 0, f"span budget too small: {tracer.dropped}"
    trace_ids = {span.trace_id for span in spans}
    assert len(trace_ids) == len(requests), (
        f"{len(requests)} submits minted {len(trace_ids)} traces")
    single_rooted = 0
    for trace_id in trace_ids:
        tree = span_tree(tracer.spans_for(trace_id))
        assert [root.name for root in tree.roots] == ["gateway.submit"], (
            f"trace {trace_id} is not a single gateway.submit tree")
        single_rooted += 1
    stamped = sum(1 for event in events.events() if "trace_id" in event)

    sampled_summary = _latency_summary(sampled["latencies"])
    overhead = unsampled_summary["p50"] / max(plain_summary["p50"], 1e-9)
    return {
        "untraced": plain_summary,
        "unsampled": unsampled_summary,
        "sampled": sampled_summary,
        "p50_overhead": round(overhead, 3),
        "bar": TRACING_OVERHEAD_BAR,
        "traces": len(trace_ids),
        "spans": len(spans),
        "single_rooted_trees": single_rooted,
        "events": len(events),
        "events_trace_stamped": stamped,
    }


# --------------------------------------------------------------------
# Config C: adaptive batched pools vs a static even split, saturated.


def _drain_pools(pools: ShardPools, requests: list[SearchRequest],
                 *, refit: bool) -> tuple[float, list]:
    """Enqueue everything at once (saturation) and time the drain."""
    started = time.perf_counter()
    tickets = [pools.submit(request) for request in requests]
    results = []
    for index, ticket in enumerate(tickets):
        results.append(ticket.result(timeout=120))
        if refit and index % 32 == 31:
            pools.refit()
    return time.perf_counter() - started, results


def run_pool_config(corpus: list[str], sequence: list[str], *,
                    verify_sample: int) -> dict:
    requests = [SearchRequest(query, K) for query in sequence]
    shards = 4

    with ShardPools(corpus, shards=shards, workers_per_shard=1,
                    batch_limit=32,
                    sizer=AdaptivePoolSizer(
                        ManagerRules(min_threads=1, max_threads=3))
                    ) as adaptive_pools:
        adaptive_seconds, adaptive_results = _drain_pools(
            adaptive_pools, requests, refit=True)
        adaptive_workers = dict(adaptive_pools.workers())
        adaptive_counters = adaptive_pools.counters_snapshot()

    with ShardPools(corpus, shards=shards, workers_per_shard=1,
                    batch_limit=1, sizer=None) as static_pools:
        static_seconds, static_results = _drain_pools(
            static_pools, requests, refit=False)

    # Off-clock verification: both configurations must answer exactly.
    reference = SequentialScanSearcher(sorted(set(corpus)))
    verified = 0
    for index in range(0, len(requests),
                       max(1, len(requests) // max(1, verify_sample))):
        exact = tuple(reference.search(requests[index].query, K))
        assert adaptive_results[index].matches == exact, (
            f"adaptive pool answer {index} diverges from the reference")
        assert static_results[index].matches == exact, (
            f"static pool answer {index} diverges from the reference")
        verified += 1

    adaptive_qps = len(requests) / adaptive_seconds
    static_qps = len(requests) / static_seconds
    return {
        "mechanism": "queue-responsive batch draining (dedup + one "
                     "vectorized pass per drained batch); on a "
                     "single-core runner the win is amortization, "
                     "not parallelism",
        "adaptive": {
            "throughput_qps": round(adaptive_qps, 1),
            "makespan_seconds": round(adaptive_seconds, 6),
            "workers": adaptive_workers,
            "batches": adaptive_counters["pool.batches"],
            "batched_tasks": adaptive_counters["pool.batched_tasks"],
        },
        "static": {
            "throughput_qps": round(static_qps, 1),
            "makespan_seconds": round(static_seconds, 6),
        },
        "throughput_speedup": round(adaptive_qps / static_qps, 2),
        "bar": POOL_THROUGHPUT_BAR,
        "verified_against_reference": verified,
    }


# --------------------------------------------------------------------
# Config D: watermark shedding under deliberate overload.


def run_shed_config(corpus: list[str], sequence: list[str], *,
                    qps: float, deadline_seconds: float,
                    verify_sample: int) -> dict:
    watermarks = Watermarks(shed_depth=3, reject_depth=8)
    shedder = LoadShedder(watermarks)
    gateway = AsyncService(Service(corpus, shards=4), shedder=shedder)
    requests = [
        SearchRequest(query, K,
                      deadline=Deadline(deadline_seconds,
                                        check_interval=64))
        for query in sequence
    ]
    replay = asyncio.run(_replay(gateway, requests, qps,
                                 poll_depth=True))

    outcomes = {"accepted": 0, "floor": 0, "rejected": 0}
    floor_indices = []
    for index, outcome in enumerate(replay["outcomes"]):
        if isinstance(outcome, ServiceOverloaded):
            outcomes["rejected"] += 1
        elif outcome.plan.endswith("[shed]"):
            outcomes["floor"] += 1
            floor_indices.append(index)
        else:
            outcomes["accepted"] += 1

    # Off-clock verification: a floor answer is honest — unverified
    # candidates that still cover the exact answer.
    reference = SequentialScanSearcher(sorted(set(corpus)))
    verified = 0
    for index in floor_indices[:verify_sample]:
        result = replay["outcomes"][index]
        assert not result.verified
        exact = {m.string for m in
                 reference.search(requests[index].query, K)}
        assert exact <= {m.string for m in result.matches}, (
            f"floor answer {index} is not a candidate superset")
        verified += 1

    accepted = replay["accepted_latencies"]
    summary = _latency_summary(accepted) if accepted else {}
    report = gateway.report(queries=len(requests), k=K,
                            matches=outcomes["accepted"])
    report_dict = report.to_dict()
    require_valid_report(report_dict)
    return {
        "deadline_seconds": deadline_seconds,
        "p99_bound_seconds": deadline_seconds * SHED_P99_MULTIPLE,
        "watermarks": {"shed_depth": watermarks.shed_depth,
                       "reject_depth": watermarks.reject_depth},
        "outcomes": outcomes,
        "accepted_latency_seconds": summary,
        "max_queue_depth": replay["max_queue_depth"],
        "floor_supersets_verified": verified,
        "report": report_dict,
    }


# --------------------------------------------------------------------


def run_benchmark(*, city_count: int = 900, read_count: int = 300,
                  query_count: int = 360, distinct: int = 48,
                  qps: float = 150.0, overload_qps: float = 600.0,
                  deadline_seconds: float = 0.05,
                  verify_sample: int = VERIFY_SAMPLE) -> dict:
    """Replay the skewed mixed workload through all three configs."""
    corpus, sequence = build_workload(
        city_count, read_count, query_count, distinct=distinct)
    cache = run_cache_config(corpus, sequence, qps=qps,
                             verify_sample=verify_sample)
    tracing = run_tracing_config(corpus, sequence, qps=qps)
    pools = run_pool_config(corpus, sequence,
                            verify_sample=verify_sample)
    shedding = run_shed_config(corpus, sequence, qps=overload_qps,
                               deadline_seconds=deadline_seconds,
                               verify_sample=verify_sample)
    gates = {
        "cache_p50_speedup": cache["p50_speedup"] >= CACHE_SPEEDUP_BAR,
        "tracing_overhead":
            tracing["p50_overhead"] <= TRACING_OVERHEAD_BAR,
        "tracing_single_rooted":
            tracing["single_rooted_trees"] == tracing["traces"],
        "pool_throughput_speedup":
            pools["throughput_speedup"] >= POOL_THROUGHPUT_BAR,
        "shed_accepted_p99":
            shedding["accepted_latency_seconds"]["p99"]
            <= shedding["p99_bound_seconds"],
        "queue_depth_bounded":
            shedding["max_queue_depth"]
            <= shedding["watermarks"]["reject_depth"],
    }
    return {
        "benchmark": "bench_traffic",
        "python": platform.python_version(),
        "workload": {
            "cities": city_count,
            "dna_reads": read_count,
            "queries": query_count,
            "distinct_queries": distinct,
            "zipf_exponent": ZIPF_EXPONENT,
            "k": K,
            "arrival_qps": qps,
            "overload_qps": overload_qps,
        },
        "cache": cache,
        "tracing": tracing,
        "pools": pools,
        "shedding": shedding,
        "gates": gates,
        "measurements": common.build_measurements({
            "uncached_p50_seconds": cache["uncached"]["p50"],
            "cached_p50_seconds": cache["cached"]["p50"],
            "untraced_p50_seconds": tracing["untraced"]["p50"],
            "tracing_unsampled_p50_seconds":
                tracing["unsampled"]["p50"],
            "tracing_sampled_p50_seconds": tracing["sampled"]["p50"],
            "adaptive_seconds_per_query":
                pools["adaptive"]["makespan_seconds"] / query_count,
            "static_seconds_per_query":
                pools["static"]["makespan_seconds"] / query_count,
            "shed_accepted_p99_seconds":
                shedding["accepted_latency_seconds"]["p99"],
        }),
    }


def render(record: dict) -> str:
    workload = record["workload"]
    cache = record["cache"]
    pools = record["pools"]
    shed = record["shedding"]
    outcomes = ", ".join(f"{count} {name}" for name, count in
                         sorted(shed["outcomes"].items()))
    return "\n".join([
        "traffic replay: open-loop arrivals through the async gateway",
        f"  python {record['python']}",
        "",
        f"  workload: {workload['queries']} queries "
        f"({workload['distinct_queries']} distinct, Zipf "
        f"s={workload['zipf_exponent']}) over "
        f"{workload['cities']} cities + {workload['dna_reads']} DNA "
        f"reads, k={workload['k']}, {workload['arrival_qps']:g} qps",
        "",
        f"  cache off: p50 {cache['uncached']['p50'] * 1000:.2f}ms, "
        f"p99 {cache['uncached']['p99'] * 1000:.2f}ms",
        f"  cache on:  p50 {cache['cached']['p50'] * 1000:.2f}ms, "
        f"p99 {cache['cached']['p99'] * 1000:.2f}ms "
        f"(hit rate {cache['hit_rate']:.0%})",
        f"  p50 speedup {cache['p50_speedup']:.1f}x "
        f"(bar {cache['bar']:g}x); {cache['verified_against_reference']}"
        " answers gated against the reference scan off-clock",
        "",
        f"  tracing unsampled: p50 "
        f"{record['tracing']['unsampled']['p50'] * 1000:.2f}ms vs "
        f"untraced {record['tracing']['untraced']['p50'] * 1000:.2f}ms "
        f"({record['tracing']['p50_overhead']:.3f}x, bar "
        f"{record['tracing']['bar']:g}x)",
        f"  tracing sampled:   p50 "
        f"{record['tracing']['sampled']['p50'] * 1000:.2f}ms; "
        f"{record['tracing']['traces']} traces, all single-rooted "
        f"({record['tracing']['spans']} spans, "
        f"{record['tracing']['events_trace_stamped']} stamped events)",
        "",
        f"  pools adaptive: {pools['adaptive']['throughput_qps']:g} q/s "
        f"({pools['adaptive']['batched_tasks']} tasks in "
        f"{pools['adaptive']['batches']} batches)",
        f"  pools static:   {pools['static']['throughput_qps']:g} q/s "
        "(one query per dispatch)",
        f"  throughput speedup {pools['throughput_speedup']:.2f}x "
        f"(bar {pools['bar']:g}x) — {pools['mechanism']}",
        "",
        f"  shedding at {record['workload']['overload_qps']:g} qps, "
        f"{shed['deadline_seconds'] * 1000:.0f}ms deadline: {outcomes}",
        f"  accepted p99 "
        f"{shed['accepted_latency_seconds']['p99'] * 1000:.1f}ms "
        f"(bound {shed['p99_bound_seconds'] * 1000:.0f}ms), max queue "
        f"depth {shed['max_queue_depth']} (reject watermark "
        f"{shed['watermarks']['reject_depth']})",
        "",
        "  gates: " + ", ".join(
            f"{name}={'PASS' if passed else 'FAIL'}"
            for name, passed in sorted(record["gates"].items())),
    ])


def write_record(record: dict) -> Path:
    return common.write_record(record, JSON_PATH)


def test_traffic_gates(emit):
    record = run_benchmark(city_count=300, read_count=100,
                           query_count=120, distinct=24,
                           verify_sample=6)
    write_record(record)
    emit("traffic", render(record))
    # The shedding SLO and queue bound hold at any scale; the two
    # speedup bars and the tracing-overhead bar need the full-size
    # workload (per-scan cost on a tiny corpus sits below timer
    # granularity) and are enforced by the direct full run that
    # produces the committed record. Trace *structure* is exact at
    # any scale, so it gates here too.
    assert record["gates"]["shed_accepted_p99"], record["shedding"]
    assert record["gates"]["queue_depth_bounded"], record["shedding"]
    assert record["gates"]["tracing_single_rooted"], record["tracing"]
    assert record["cache"]["verified_against_reference"] > 0
    assert record["pools"]["verified_against_reference"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="open-loop traffic replay through the async gateway",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small corpus and query count: exercises all three "
             "configs (and emits the same BENCH_traffic.json shape) "
             "in seconds — what the CI traffic-smoke job runs",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        record = run_benchmark(city_count=240, read_count=80,
                               query_count=90, distinct=18,
                               qps=200.0, overload_qps=700.0,
                               verify_sample=5)
        record["smoke"] = True
    else:
        record = run_benchmark()
    path = write_record(record)
    print(render(record))
    print(f"\nrecorded to {path}")
    failed = [name for name, passed in record["gates"].items()
              if not passed]
    if failed:
        print(f"FAIL: {', '.join(failed)}")
    # Smoke mode is a pipeline exercise on shared hardware; the
    # speedup bars are enforced on the full run (and in the committed
    # record), not on CI noise.
    if args.smoke:
        return 0
    return 0 if not failed else 1


if __name__ == "__main__":
    raise SystemExit(main())
