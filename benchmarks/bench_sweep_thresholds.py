"""Threshold sweep (beyond the paper): where the crossover moves.

The scan's bit-parallel cost is threshold-independent; the trie's band
widens with k. Sweeping Table I's thresholds quantifies the regime
boundary the paper reports only at aggregate level.
"""

from repro.bench.registry import run_experiment_raw


def test_threshold_sweep(benchmark, scale, emit):
    report = benchmark.pedantic(
        run_experiment_raw, args=("sweep", scale), rounds=1, iterations=1
    )
    emit("sweep", report.render())

    # The trie's cost must grow with k on both datasets...
    city_trie = [report.cell(row, 1).seconds for row in report.row_labels]
    dna_trie = [report.cell(row, 3).seconds for row in report.row_labels]
    assert city_trie[-1] > city_trie[0]
    assert dna_trie[-1] > dna_trie[0]
    # ...while the scan's stays within a small factor across the sweep
    # (it touches every string regardless; only the match-collection
    # and early-abort horizons move).
    city_scan = [report.cell(row, 0).seconds for row in report.row_labels]
    assert max(city_scan) < 10 * max(min(city_scan), 1e-9)
    # At the top thresholds the scan wins both regimes — the k-facet of
    # the paper's city result.
    assert city_scan[-1] < city_trie[-1]
