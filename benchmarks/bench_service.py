"""Service-level latency: deadlines honored under the hardest workload.

The resilient service's operational claim, measured: DNA reads probed
at ``k=16`` — the paper's worst-case regime, where a single unbounded
trie descent can dwarf any reasonable latency target — are submitted
through :class:`repro.service.Service` with a wall-clock deadline per
query. The bar is a *tail* bound: the p99 submit latency must stay
under ``2 x`` the requested deadline (the ladder may burn a slice of
deadline per rung before the filter-only floor answers), and every
result must be honestly labeled (verified flags checked against a
reference searcher on a sample).

Besides the rendered table, the run emits a machine-readable
``BENCH_service.json`` at the repository root with the service's
``service.*`` counters embedded as a schema-validated
:class:`repro.obs.SearchReport` (``mode="service"``). Run directly::

    PYTHONPATH=src python benchmarks/bench_service.py --smoke

or through pytest (``pytest benchmarks/bench_service.py``).
"""

from __future__ import annotations

import argparse
import platform
import time
from pathlib import Path

try:  # package mode (pytest) vs script mode (python benchmarks/...)
    from benchmarks import common
except ImportError:  # pragma: no cover - script-mode fallback
    import common

from repro.core.deadline import Deadline
from repro.core.sequential import SequentialScanSearcher
from repro.data.dna import generate_reads
from repro.obs.report import require_valid_report
from repro.service import Service

#: Where the machine-readable record lands (repository root).
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_service.json"

#: Requested per-query wall-clock deadline.
DEADLINE_SECONDS = 0.05

#: The tail bound: p99 submit latency <= this multiple of the deadline.
P99_MULTIPLE = 2.0

#: Queries whose verified results are gated against the reference
#: searcher (exact statuses must match it; partials must be subsets).
VERIFY_SAMPLE = 10


def _percentile(samples: list[float], fraction: float) -> float:
    ranked = sorted(samples)
    index = min(len(ranked) - 1,
                max(0, int(round(fraction * (len(ranked) - 1)))))
    return ranked[index]


def run_benchmark(read_count: int = 1200, query_count: int = 120, *,
                  k: int = 16,
                  deadline_seconds: float = DEADLINE_SECONDS,
                  shards: int = 4,
                  verify_sample: int = VERIFY_SAMPLE) -> dict:
    """Submit ``query_count`` deadline-bounded queries; record the tail."""
    reads = generate_reads(read_count, seed=2013)
    queries = reads[:query_count]
    service = Service(reads, shards=shards)
    reference = SequentialScanSearcher(sorted(set(reads)))

    latencies: list[float] = []
    statuses: dict[str, int] = {}
    verified_checked = 0
    for index, query in enumerate(queries):
        started = time.perf_counter()
        result = service.submit(
            query, k,
            deadline=Deadline(deadline_seconds, check_interval=64))
        latencies.append(time.perf_counter() - started)
        statuses[result.status] = statuses.get(result.status, 0) + 1
        if verified_checked < verify_sample and result.verified:
            exact = set(reference.search(query, k))
            got = set(result.matches)
            if result.complete:
                assert got == exact, (
                    f"query {index}: exact-labeled result diverges "
                    "from the reference searcher"
                )
            else:
                assert got <= exact, (
                    f"query {index}: partial is not a subset of the "
                    "reference answer"
                )
            verified_checked += 1

    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)
    report = service.report(queries=len(queries), k=k,
                            matches=sum(statuses.values()))
    report_dict = report.to_dict()
    require_valid_report(report_dict)
    return {
        "benchmark": "bench_service",
        "python": platform.python_version(),
        "dataset_strings": len(reads),
        "queries": len(queries),
        "k": k,
        "shards": shards,
        "deadline_seconds": deadline_seconds,
        "p99_bound_seconds": deadline_seconds * P99_MULTIPLE,
        "latency_seconds": {
            "p50": round(p50, 6),
            "p99": round(p99, 6),
            "max": round(max(latencies), 6),
        },
        "statuses": statuses,
        "verified_against_reference": verified_checked,
        "measurements": common.build_measurements({
            "submit_p50_seconds": p50,
            "submit_p99_seconds": p99,
            "submit_max_seconds": max(latencies),
        }),
        "report": report_dict,
    }


def render(record: dict) -> str:
    latency = record["latency_seconds"]
    statuses = ", ".join(
        f"{count} {status}" for status, count in
        sorted(record["statuses"].items())
    )
    return "\n".join([
        "service deadline soak: DNA reads at k=16 through the ladder",
        f"  python {record['python']}",
        "",
        f"  {record['queries']} queries over {record['dataset_strings']} "
        f"reads, {record['shards']} shards, "
        f"{record['deadline_seconds'] * 1000:.0f}ms deadline each",
        f"  latency: p50 {latency['p50'] * 1000:.1f}ms, "
        f"p99 {latency['p99'] * 1000:.1f}ms, "
        f"max {latency['max'] * 1000:.1f}ms "
        f"(bound: p99 <= {record['p99_bound_seconds'] * 1000:.0f}ms)",
        f"  statuses: {statuses}",
        f"  {record['verified_against_reference']} verified results "
        "gated against the reference searcher (off-clock)",
    ])


def write_record(record: dict) -> Path:
    return common.write_record(record, JSON_PATH)


def test_service_p99_under_deadline(emit):
    record = run_benchmark(read_count=600, query_count=60)
    write_record(record)
    emit("service", render(record))
    assert record["latency_seconds"]["p99"] \
        <= record["p99_bound_seconds"], record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="deadline-bounded service latency soak",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small corpus and query count: exercises the full "
             "pipeline (and emits the same BENCH_service.json shape) "
             "in seconds — what the CI service-smoke job runs",
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=DEADLINE_SECONDS * 1000,
        help="requested per-query deadline in milliseconds "
             f"(default {DEADLINE_SECONDS * 1000:.0f})",
    )
    args = parser.parse_args(argv)
    seconds = args.deadline_ms / 1000.0
    if args.smoke:
        record = run_benchmark(read_count=400, query_count=40,
                               deadline_seconds=seconds,
                               verify_sample=5)
        record["smoke"] = True
    else:
        record = run_benchmark(deadline_seconds=seconds)
    path = write_record(record)
    print(render(record))
    print(f"\nrecorded to {path}")
    ok = record["latency_seconds"]["p99"] <= record["p99_bound_seconds"]
    if not ok:
        print(
            f"FAIL: p99 {record['latency_seconds']['p99']:.3f}s exceeds "
            f"{record['p99_bound_seconds']:.3f}s",
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
