"""The cost-model planner, measured: auto vs every static backend.

The planner's promise (``docs/PLANNER.md``) is two-sided and this
harness gates both sides:

* **uniform workloads** — on a workload where one static backend is
  the right answer throughout, routing through ``backend="auto"`` must
  cost at most ~5% more than that best static backend (the planner
  plans once per workload, so its overhead is one cost-model
  evaluation);
* **a mixed workload** — when the stream interleaves the paper's two
  regimes (short city names, long DNA reads) at different thresholds,
  the planner must beat *every* static backend outright, because no
  single strategy is right for both halves.

Full runs first :func:`repro.core.planner.calibrate` the per-unit
constants on the machine doing the measuring — the same flow a
deployment uses — and each timed pass is preceded by a warmup pass
whose :meth:`~repro.core.planner.Planner.observe_window` feedback
closes the loop before the clock starts.

The run emits ``BENCH_planner.json`` at the repository root through
:func:`benchmarks.common.write_record` (schema-validated, regression-
gated in CI against the committed baseline). Run directly::

    PYTHONPATH=src python benchmarks/bench_planner.py

or through pytest (``pytest benchmarks/bench_planner.py``), or in CI
smoke mode (``--smoke``: tiny corpora, distinct query counts, no
speedup gates).
"""

from __future__ import annotations

import argparse
import platform
import time
from pathlib import Path

try:  # package mode (pytest) vs script mode (python benchmarks/...)
    from benchmarks import common
except ImportError:  # pragma: no cover - script-mode fallback
    import common

from repro.core.engine import SearchEngine
from repro.core.planner import STRATEGIES, PlannerPolicy, calibrate
from repro.core.request import SearchRequest
from repro.data.cities import generate_city_names
from repro.data.dna import generate_reads
from repro.data.workload import make_workload

#: Where the machine-readable record lands (repository root).
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_planner.json"

#: Acceptance bars for a full (non-smoke) run.
MAX_UNIFORM_OVERHEAD = 1.05   # auto <= 1.05x the best static backend
CITY_ALPHABET = "abcdefghinorst"
DNA_ALPHABET = "ACGT"


def _build_engines(corpus, profile):
    engines = {
        strategy: SearchEngine(corpus, backend=strategy)
        for strategy in STRATEGIES
    }
    engines["auto"] = SearchEngine(corpus, profile=profile)
    return engines


def measure_uniform(name: str, corpus, k: int, alphabet: str,
                    seed: int, queries: int, profile,
                    repeats: int) -> dict:
    """Time every static backend and the planner on one workload.

    The batch executors memoize ``(query, k)`` results, so re-timing
    the same queries would measure the memo; every pass (warmup
    included) gets its own query sample instead, and the reported
    figure is the fastest pass.
    """
    variants = [
        make_workload(corpus, queries, k, alphabet_symbols=alphabet,
                      seed=seed * 100 + i, name=f"{name}#{i}")
        for i in range(repeats)
    ]
    warmups = [
        make_workload(corpus, queries, k, alphabet_symbols=alphabet,
                      seed=seed * 100 + 50 + i, name=f"{name}~{i}")
        for i in range(6)
    ]
    engines = _build_engines(corpus, profile)
    entry: dict = {
        "workload": name,
        "queries": queries,
        "k": k,
    }
    for label, engine in engines.items():
        if label == "auto":
            # Probe every strategy through a forced plan first: each
            # probe's observe_window feedback calibrates that
            # strategy's correction on this exact workload shape, so
            # the auto plan then ranks measured costs, not priors.
            for warmup in warmups[:2]:
                for strategy in STRATEGIES:
                    engine.run_workload(SearchRequest.from_workload(
                        warmup, plan=PlannerPolicy(strategy=strategy),
                    ))
            previous = None
            for warmup in warmups[2:]:
                engine.run_workload(warmup)
                choice = engine.plan(warmup.queries[0], k).strategy
                if choice == previous:
                    break
                previous = choice
        else:
            engine.run_workload(warmups[0])  # a single priming pass
    # Interleave the timed passes (variant-major, engine-minor) so
    # clock drift on a shared machine lands on every engine alike.
    times: dict[str, list[float]] = {label: [] for label in engines}
    for variant in variants:
        for label, engine in engines.items():
            times[label].append(engine.timed_workload(variant)[1])
    for label in engines:
        entry[f"{label}_seconds"] = round(min(times[label]), 6)
    best_static = min(entry[f"{s}_seconds"] for s in STRATEGIES)
    entry["best_static"] = min(
        STRATEGIES, key=lambda s: entry[f"{s}_seconds"]
    )
    entry["planner_choice"] = \
        engines["auto"].plan(variants[0].queries[0], k).strategy
    entry["planner_vs_best"] = round(
        entry["auto_seconds"] / best_static, 4
    ) if best_static else 1.0
    return entry


def _mixed_calls(city, dna, queries_per_side: int,
                 seed: int) -> list[tuple[str, int]]:
    city_k1 = make_workload(
        city, queries_per_side, 1, alphabet_symbols=CITY_ALPHABET,
        seed=seed, name="mixed-city-k1",
    ).queries
    city_k2 = make_workload(
        city, queries_per_side, 2, alphabet_symbols=CITY_ALPHABET,
        seed=seed + 1, name="mixed-city-k2",
    ).queries
    dna_k3 = make_workload(
        dna, queries_per_side, 3, alphabet_symbols=DNA_ALPHABET,
        seed=seed + 2, name="mixed-dna",
    ).queries
    calls: list[tuple[str, int]] = []
    for triplet in zip(city_k1, city_k2, dna_k3):
        calls.append((triplet[0], 1))
        calls.append((triplet[1], 2))
        calls.append((triplet[2], 3))
    return calls


def measure_mixed(city, dna, profile, queries_per_side: int,
                  repeats: int) -> dict:
    """Interleave both regimes; no static backend fits the stream."""
    corpus = tuple(city) + tuple(dna)
    variants = [
        _mixed_calls(city, dna, queries_per_side, seed=31 + 3 * i)
        for i in range(repeats + 1)
    ]
    engines = _build_engines(corpus, profile)
    entry: dict = {
        "workload": "mixed",
        "queries": len(variants[0]),
        "calls_per_regime": queries_per_side,
    }

    def run_stream(engine, calls):
        started = time.perf_counter()
        answers = [engine.search(query, k) for query, k in calls]
        return time.perf_counter() - started, answers

    expected = None
    for label, engine in engines.items():
        _, answers = run_stream(engine, variants[0])  # warmup
        if expected is None:
            expected = answers
        assert answers == expected, f"{label} answers drifted"
    times: dict[str, list[float]] = {label: [] for label in engines}
    for calls in variants[1:]:
        for label, engine in engines.items():
            times[label].append(run_stream(engine, calls)[0])
    for label in engines:
        entry[f"{label}_seconds"] = round(min(times[label]), 6)
    for strategy in STRATEGIES:
        entry[f"speedup_vs_{strategy}"] = round(
            entry[f"{strategy}_seconds"] / entry["auto_seconds"], 4
        )
    entry["beats_every_static"] = all(
        entry["auto_seconds"] < entry[f"{s}_seconds"]
        for s in STRATEGIES
    )
    return entry


def run_benchmark(*, city_count: int = 2000, dna_count: int = 400,
                  uniform_queries: int = 40, mixed_queries: int = 25,
                  repeats: int = 6, calibrated: bool = True,
                  report_queries: int = 7) -> dict:
    city = tuple(generate_city_names(city_count, seed=101))
    dna = tuple(generate_reads(dna_count, seed=202))
    profile = calibrate() if calibrated else None

    uniform_specs = (
        ("city_k1", city, 1, CITY_ALPHABET, 11),
        ("city_k2", city, 2, CITY_ALPHABET, 12),
        ("dna_k1", dna, 1, DNA_ALPHABET, 13),
        ("dna_k2", dna, 2, DNA_ALPHABET, 14),
    )
    uniform = [
        measure_uniform(name, corpus, k, alphabet, seed,
                        uniform_queries, profile, repeats)
        for name, corpus, k, alphabet, seed in uniform_specs
    ]
    mixed = measure_mixed(city, dna, profile, mixed_queries, repeats)

    # One observed report carrying the plan section, so the artifact
    # exercises the full report schema (validated at write time).
    # ``report_queries`` differs between smoke and full runs so the
    # regression gate never pairs them for an exact result-drift
    # check (the corpora differ).
    reporter = SearchEngine(city, profile=profile, observe=True)
    reporter.search_many(list(city[:report_queries]), 2)
    report = reporter.last_report

    record = {
        "benchmark": "bench_planner",
        "python": platform.python_version(),
        "calibrated": calibrated,
        "city_strings": len(city),
        "dna_strings": len(dna),
        "uniform": uniform,
        "mixed": mixed,
        "worst_uniform_overhead": max(
            entry["planner_vs_best"] for entry in uniform
        ),
        "report": report.to_dict(),
    }
    record["measurements"] = common.build_measurements({
        **{
            f"uniform.{entry['workload']}.{label}":
                entry[f"{label}_seconds"]
            for entry in uniform
            for label in (*STRATEGIES, "auto")
        },
        **{
            f"mixed.{label}": mixed[f"{label}_seconds"]
            for label in (*STRATEGIES, "auto")
        },
    })
    return record


def render(record: dict) -> str:
    lines = [
        "cost-model planner: auto vs every static backend",
        f"  python {record['python']}, "
        f"{'calibrated' if record['calibrated'] else 'default'} "
        f"profile, {record['city_strings']} city names + "
        f"{record['dna_strings']} DNA reads",
        "",
        f"  {'workload':>10}{'q':>4}{'k':>3}"
        + "".join(f"{label:>12}" for label in (*STRATEGIES, "auto"))
        + f"{'pick':>11}{'vs best':>9}",
    ]
    for entry in record["uniform"]:
        lines.append(
            f"  {entry['workload']:>10}{entry['queries']:>4}"
            f"{entry['k']:>3}"
            + "".join(f"{entry[f'{label}_seconds']:>11.4f}s"
                      for label in (*STRATEGIES, "auto"))
            + f"{entry['planner_choice']:>11}"
            f"{entry['planner_vs_best']:>8.2f}x"
        )
    mixed = record["mixed"]
    lines.extend([
        "",
        f"  mixed stream ({mixed['queries']} calls, both regimes "
        "interleaved):",
        "    " + ", ".join(
            f"{strategy} {mixed[f'{strategy}_seconds']:.4f}s "
            f"({mixed[f'speedup_vs_{strategy}']:.2f}x slower)"
            for strategy in STRATEGIES
        ),
        f"    auto {mixed['auto_seconds']:.4f}s — "
        + ("beats every static backend"
           if mixed["beats_every_static"]
           else "does NOT beat every static backend"),
        "",
        f"  worst uniform overhead: "
        f"{record['worst_uniform_overhead']:.2f}x "
        f"(gate {MAX_UNIFORM_OVERHEAD:.2f}x)",
    ])
    return "\n".join(lines)


def write_record(record: dict) -> Path:
    return common.write_record(record, JSON_PATH)


def gates_pass(record: dict) -> bool:
    return (
        record["worst_uniform_overhead"] <= MAX_UNIFORM_OVERHEAD
        and record["mixed"]["beats_every_static"]
    )


def test_planner_beats_statics(emit):
    record = run_benchmark()
    write_record(record)
    emit("planner", render(record))
    assert record["worst_uniform_overhead"] <= MAX_UNIFORM_OVERHEAD, \
        record
    assert record["mixed"]["beats_every_static"], record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="the cost-model planner vs every static backend, "
                    "on uniform and mixed workloads",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny corpora, default profile, no speedup gates: "
             "exercises the full pipeline (and emits the same "
             "BENCH_planner.json shape) in seconds — what the CI "
             "planner-smoke job runs",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        record = run_benchmark(city_count=300, dna_count=120,
                               uniform_queries=8, mixed_queries=6,
                               repeats=1, calibrated=False,
                               report_queries=4)
        record["smoke"] = True
    else:
        record = run_benchmark()
    path = write_record(record)
    print(render(record))
    print(f"\nrecorded to {path}")
    if args.smoke:
        return 0
    return 0 if gates_pass(record) else 1


if __name__ == "__main__":
    raise SystemExit(main())
