"""Head-to-head: compiled-corpus batch engine vs. per-query scan.

The amortization claim, measured: a repeated-mix workload (every query
appears several times, as competition workloads and production traffic
both do) is answered once by the per-query
``SequentialScanSearcher(kernel="bitparallel")`` and once by
``BatchScanExecutor.search_many`` over a ``CompiledCorpus``, on both of
the paper's regimes (city names and DNA reads). Batch results are
gated through :func:`repro.core.verification.verify_against_reference`
before any timing counts — the paper's section-3.1 methodology.

Besides the rendered table, the run emits a machine-readable
``BENCH_batch.json`` at the repository root (wall-clock per stage and
speedup per workload) so future PRs have a perf trajectory to compare
against. Run directly::

    PYTHONPATH=src python benchmarks/bench_batch_compiled.py

or through pytest (``pytest benchmarks/bench_batch_compiled.py``).
"""

from __future__ import annotations

import argparse
import platform
import time
from pathlib import Path

try:  # package mode (pytest) vs script mode (python benchmarks/...)
    from benchmarks import common
except ImportError:  # pragma: no cover - script-mode fallback
    import common

from repro.core.sequential import SequentialScanSearcher
from repro.core.verification import verify_against_reference
from repro.data.cities import generate_city_names
from repro.data.dna import generate_reads
from repro.data.workload import make_workload
from repro.obs.report import build_report
from repro.scan.corpus import CompiledCorpus
from repro.scan.executor import BatchScanExecutor
from repro.scan.searcher import CompiledScanSearcher

#: Where the machine-readable record lands (repository root).
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_batch.json"

#: Default number of queries gated against the reference kernel (full
#: reference runs are quadratic; a sample is the paper's own practice
#: for spot verification). Override with ``--verify-sample N``.
VERIFY_QUERIES = 25


def _repeated_mix(dataset, unique: int, repeats: int, k: int,
                  alphabet_symbols: str, name: str):
    """A workload of ``unique * repeats`` queries, each repeated."""
    base = make_workload(dataset, unique, k,
                         alphabet_symbols=alphabet_symbols,
                         seed=2013, name=name)
    queries = tuple(base.queries) * repeats
    from repro.data.workload import Workload

    return Workload(queries, k, f"{name}x{repeats}")


def _time(function):
    started = time.perf_counter()
    value = function()
    return value, time.perf_counter() - started


def run_workload_comparison(dataset, workload, *, label: str,
                            verify_sample: int = VERIFY_QUERIES) -> dict:
    """Measure one regime; returns the per-stage record."""
    # Stage 1: the per-query baseline (one scan per query, every time).
    baseline = SequentialScanSearcher(dataset, kernel="bitparallel")
    baseline_results, per_query_seconds = _time(
        lambda: baseline.run_workload(workload)
    )

    # Stage 2: compile the corpus (paid once per dataset lifetime).
    corpus, compile_seconds = _time(lambda: CompiledCorpus(dataset))

    # Stage 3: the batch path over the compiled corpus.
    executor = BatchScanExecutor(corpus)
    batch_results, batch_seconds = _time(
        lambda: executor.search_many(list(workload.queries), workload.k)
    )

    # Correctness gates, strictly off-clock (the speedup ratio above is
    # computed from the two scan stages only): batch rows must equal
    # the per-query scan everywhere, and the reference kernel on a
    # sample workload whose size is reported alongside the timings.
    assert batch_results == baseline_results, (
        f"{label}: batch results diverge from the per-query scan"
    )
    sample = workload.take(verify_sample)
    _, verify_seconds = _time(lambda: verify_against_reference(
        CompiledScanSearcher(corpus), dataset, sample,
        candidate_name=f"batch[{label}]",
    ))

    speedup = per_query_seconds / batch_seconds if batch_seconds else 0.0
    stats = executor.stats
    # The executor is fresh, so its cumulative counters/stats/histograms
    # are exactly this batch's work — the same SearchReport the engine
    # API hands out, embedded so CI can validate the artifact's schema
    # (and the regression gate can diff the latency quantiles).
    report = build_report(
        backend="compiled",
        engine="compiled-scan",
        mode="batch",
        queries=len(workload),
        k=workload.k,
        matches=batch_results.total_matches,
        seconds=batch_seconds,
        counters=executor.counters_snapshot(),
        histograms=executor.hists_snapshot(),
        batch=stats,
        choice_backend="compiled",
        choice_reason=f"benchmark harness ({label} regime)",
    )
    return {
        "workload": workload.name,
        "dataset_strings": len(dataset),
        "queries": len(workload),
        "unique_queries": stats.unique_queries,
        "k": workload.k,
        "stages": {
            "per_query_scan_seconds": round(per_query_seconds, 6),
            "corpus_compile_seconds": round(compile_seconds, 6),
            "batch_scan_seconds": round(batch_seconds, 6),
            "verify_sample_seconds_offclock": round(verify_seconds, 6),
        },
        "verify_sample": verify_sample,
        "verified_queries": len(sample),
        "speedup_vs_per_query": round(speedup, 3),
        "corpus": corpus.describe(),
        "report": report.to_dict(),
    }


def run_benchmark(city_count: int = 3000, dna_count: int = 400, *,
                  city_unique: int = 40, dna_unique: int = 20,
                  verify_sample: int = VERIFY_QUERIES) -> dict:
    """Both regimes; returns the full record written to JSON."""
    cities = generate_city_names(city_count, seed=2013)
    reads = generate_reads(dna_count, seed=2013)

    city_workload = _repeated_mix(
        cities, unique=city_unique, repeats=3, k=2,
        alphabet_symbols="abcdefghinorst", name="city-mix",
    )
    dna_workload = _repeated_mix(
        reads, unique=dna_unique, repeats=3, k=4,
        alphabet_symbols="ACGNT", name="dna-mix",
    )

    record = {
        "benchmark": "bench_batch_compiled",
        "baseline": "SequentialScanSearcher(kernel='bitparallel')",
        "candidate": "BatchScanExecutor over CompiledCorpus",
        "python": platform.python_version(),
        "verify_sample": verify_sample,
        "workloads": [
            run_workload_comparison(cities, city_workload, label="city",
                                    verify_sample=verify_sample),
            run_workload_comparison(reads, dna_workload, label="dna",
                                    verify_sample=verify_sample),
        ],
    }
    record["min_speedup"] = min(
        entry["speedup_vs_per_query"] for entry in record["workloads"]
    )
    # The flat series the regression gate diffs label-by-label (the
    # per-report histograms cover per-query latency; these cover the
    # stage wall-clocks, compile cost included).
    record["measurements"] = common.build_measurements({
        f"{entry['workload']}.{stage}": seconds
        for entry in record["workloads"]
        for stage, seconds in entry["stages"].items()
    })
    return record


def render(record: dict) -> str:
    lines = [
        "batch compiled-corpus engine vs per-query bitparallel scan",
        f"  python {record['python']}",
        "",
        f"  {'workload':<12}{'strings':>9}{'queries':>9}{'unique':>8}"
        f"{'per-query':>11}{'compile':>9}{'batch':>8}{'speedup':>9}",
    ]
    for entry in record["workloads"]:
        stages = entry["stages"]
        lines.append(
            f"  {entry['workload']:<12}{entry['dataset_strings']:>9}"
            f"{entry['queries']:>9}{entry['unique_queries']:>8}"
            f"{stages['per_query_scan_seconds']:>10.3f}s"
            f"{stages['corpus_compile_seconds']:>8.3f}s"
            f"{stages['batch_scan_seconds']:>7.3f}s"
            f"{entry['speedup_vs_per_query']:>8.2f}x"
        )
    lines.append("")
    lines.append(
        f"  every batch row verified identical to the reference kernel "
        f"on {record['workloads'][0]['verified_queries']}-query samples "
        f"(off-clock)"
    )
    return "\n".join(lines)


def write_record(record: dict) -> Path:
    return common.write_record(record, JSON_PATH)


def test_batch_compiled_speedup(emit):
    record = run_benchmark()
    write_record(record)
    emit("batch_compiled", render(record))
    # The acceptance bar: the amortized path must beat the per-query
    # scan by 1.5x wall-clock on the repeated-mix workloads.
    assert record["min_speedup"] >= 1.5, record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="compiled-corpus batch engine vs per-query scan",
    )
    parser.add_argument(
        "--verify-sample", type=int, default=VERIFY_QUERIES, metavar="N",
        help="queries gated against the reference kernel, off-clock "
             f"(default {VERIFY_QUERIES}; the quadratic reference "
             "dominates wall time well before it adds confidence)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small datasets, no speedup gate: exercises the full "
             "pipeline (and emits the same BENCH_batch.json shape) in "
             "seconds — what the CI schema job runs",
    )
    parser.add_argument(
        "--stats-format", default=None, choices=("json", "prom"),
        help="additionally print each workload's embedded SearchReport "
             "to stdout (JSON lines or Prometheus text)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        # The smoke workload is deliberately a different shape (half
        # the unique queries) so the regression gate compares it to a
        # full-mode baseline per unit of work, not by exact matches.
        record = run_benchmark(city_count=600, dna_count=120,
                               city_unique=20, dna_unique=10,
                               verify_sample=min(args.verify_sample, 10))
        record["smoke"] = True
    else:
        record = run_benchmark(verify_sample=args.verify_sample)
    path = write_record(record)
    print(render(record))
    print(f"\nrecorded to {path}")
    if args.stats_format:
        from repro.obs.report import report_from_dict

        for entry in record["workloads"]:
            report = report_from_dict(entry["report"])
            if args.stats_format == "json":
                print(report.to_json())
            else:
                print(report.to_prometheus(), end="")
    if args.smoke:
        return 0
    return 0 if record["min_speedup"] >= 1.5 else 1


if __name__ == "__main__":
    raise SystemExit(main())
