"""Section 6 future-work ablations, measured.

Covers the paper's proposed extensions: presorting by length,
dictionary compression (3-bit DNA packing), PETER-style frequency
vectors in the trie, and a different well-known index (inverted
q-grams) — each against the configuration it would extend.
"""

from repro.bench.registry import run_experiment


def test_ablation_future_work(benchmark, scale, emit):
    report = benchmark.pedantic(
        run_experiment, args=("ablation", scale), rounds=1, iterations=1
    )
    emit("ablation", report)

    assert "scan, presorted by length" in report
    assert "frequency vectors (PETER)" in report
    assert "inverted q-gram index" in report
    # The 3-bit packing saves exactly 1 - 3/8 of the storage.
    assert "storage saved: 62%" in report
    assert "branches cut" in report
