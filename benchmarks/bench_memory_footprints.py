"""Memory footprints (sections 2.3/4.2 context): time/space trade-offs.

The paper motivates compression and PETER's design by main-memory
pressure; this bench quantifies what each structure actually costs to
hold, on both datasets.
"""

from repro.bench.memory import (
    measure_compiled_footprints,
    measure_footprints,
    render_compiled_footprints,
)
from repro.bench.experiment import load_city_dataset, load_dna_dataset
from repro.bench.registry import run_experiment


def test_memory_footprints(benchmark, scale, emit):
    report = benchmark.pedantic(
        run_experiment, args=("memory", scale), rounds=1, iterations=1
    )
    emit("memory", report)

    # Compression's memory story (the paper's section 4.2 rationale):
    # the compressed trie must be much smaller than the plain one.
    for dataset in (list(load_city_dataset(scale.city_count)),
                    list(load_dna_dataset(scale.dna_count))):
        sizes = measure_footprints(dataset)
        assert sizes["compressed trie"] < sizes["prefix trie"] / 2
        # Annotations cost memory — the PETER trade-off.
        assert sizes["compressed trie + freq vectors"] > \
            sizes["compressed trie"]


def test_compiled_footprints(scale, emit, tmp_path):
    """The raw-speed layer's storage ladder, measured on DNA.

    Packed ``numpy`` buckets must compress the code storage by the
    bits-per-symbol ratio (~2.6x for 3-bit DNA, 4x for 2-bit), and an
    mmap-loaded segment must cost this process's heap almost nothing —
    its arrays are views into the page cache.
    """
    from repro.scan.corpus import CompiledCorpus

    # Floor the dataset size: below a few hundred strings, fixed
    # object headers dominate and the storage ratios are meaningless.
    dna = list(load_dna_dataset(max(scale.dna_count, 400)))
    segment = str(tmp_path / "dna-corpus.seg")
    emit("memory_compiled",
         render_compiled_footprints(dna, "DNA", segment_path=segment))

    sizes = measure_compiled_footprints(dna, segment_path=segment)
    # Packed numpy buckets beat the encoded corpus's Python tuples.
    assert sizes["compiled corpus (packed)"] < \
        sizes["compiled corpus (encoded)"]
    # The mmap load keeps no bucket payloads on the heap.
    assert sizes["corpus segment (mmap heap cost)"] < \
        sizes["compiled corpus (packed)"] / 5

    # The paper's section-6 compression ratio, in bulk: byte codes vs
    # bit-packed codes inside the packed corpus itself.
    profile = CompiledCorpus(dna, packed=True).storage_profile()
    assert profile["packed_reduction"] >= 2.0
