"""Memory footprints (sections 2.3/4.2 context): time/space trade-offs.

The paper motivates compression and PETER's design by main-memory
pressure; this bench quantifies what each structure actually costs to
hold, on both datasets.
"""

from repro.bench.memory import measure_footprints
from repro.bench.experiment import load_city_dataset, load_dna_dataset
from repro.bench.registry import run_experiment


def test_memory_footprints(benchmark, scale, emit):
    report = benchmark.pedantic(
        run_experiment, args=("memory", scale), rounds=1, iterations=1
    )
    emit("memory", report)

    # Compression's memory story (the paper's section 4.2 rationale):
    # the compressed trie must be much smaller than the plain one.
    for dataset in (list(load_city_dataset(scale.city_count)),
                    list(load_dna_dataset(scale.dna_count))):
        sizes = measure_footprints(dataset)
        assert sizes["compressed trie"] < sizes["prefix trie"] / 2
        # Annotations cost memory — the PETER trade-off.
        assert sizes["compressed trie + freq vectors"] > \
            sizes["compressed trie"]
