"""Live-corpus benchmark: the cost of mutability, measured.

Four operational claims of :mod:`repro.live`, on a city-name corpus:

* **write mix** — under a 10% write mix (inserts + deletes woven into
  the query stream), search p99 must stay within ``2x`` the p99 of an
  identical frozen corpus answering the same queries. The LSM design
  pays for mutability with segment fan-out; this bounds the bill;
* **bounded stall** — a *background* compaction must never block
  searches for its duration: the worst search latency observed while
  a merge is in flight must stay below the time the same merge takes
  inline. (The merge builds the new segment outside the corpus lock
  and swaps it in under one short critical section; searches interleave
  with it at Python's normal thread granularity.)
* **oracle parity** — off the clock, after the write mix and a full
  compaction, the corpus must answer exactly like a from-scratch
  rebuild of its logical contents (the property the tests enforce at
  every step; here it gates the benchmark's own mutated corpus);
* **tracing** — replaying the same mixed stream with request tracing
  enabled-but-unsampled (the production stance between sampled
  requests) must hold search p50 within ``5%`` of the untraced
  replay, and a fully sampled ingest must land its ``live.*`` spans —
  memtable, segments, flushes, compactions — in one coherent tree.

Emits ``BENCH_live.json`` at the repository root (schema-validated
report embedded, diffable by ``python -m repro.obs.regress``). Run::

    PYTHONPATH=src python benchmarks/bench_live.py --smoke
"""

from __future__ import annotations

import argparse
import platform
import random
import time
from pathlib import Path

try:  # package mode (pytest) vs script mode (python benchmarks/...)
    from benchmarks import common
except ImportError:  # pragma: no cover - script-mode fallback
    import common

from repro.core.engine import SearchEngine
from repro.core.sequential import SequentialScanSearcher
from repro.data.cities import generate_city_names
from repro.live import Corpus, LiveCorpus
from repro.obs import Tracer, span_tree, use_trace
from repro.obs.report import require_valid_report

#: Where the machine-readable record lands (repository root).
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_live.json"

#: Fraction of the operation stream that mutates the corpus.
WRITE_MIX = 0.10

#: The write-mix bar: live search p99 <= this multiple of frozen p99.
P99_MULTIPLE = 2.0

#: The tracing bar: enabled-but-unsampled p50 / untraced p50.
TRACING_OVERHEAD_BAR = 1.05

#: Queries gated against the rebuild oracle, off the clock.
VERIFY_SAMPLE = 24

#: k used throughout (queries are corpus members, so matches exist).
K = 2


def _percentile(samples: list[float], fraction: float) -> float:
    ranked = sorted(samples)
    index = min(len(ranked) - 1,
                max(0, int(round(fraction * (len(ranked) - 1)))))
    return ranked[index]


def _latency_summary(samples: list[float]) -> dict:
    return {
        "p50": round(_percentile(samples, 0.50), 6),
        "p95": round(_percentile(samples, 0.95), 6),
        "p99": round(_percentile(samples, 0.99), 6),
        "max": round(max(samples), 6),
    }


def build_operations(corpus: list[str], fresh: list[str],
                     count: int, *, seed: int = 2013) -> list[tuple]:
    """A mixed operation stream: ~90% searches, ~10% writes.

    Searches draw from the corpus (so matches exist); writes alternate
    between inserting a fresh string and deleting one that is still
    present (the model multiset keeps every delete valid).
    """
    rng = random.Random(seed)
    present = list(corpus)
    pending = list(fresh)
    operations: list[tuple] = []
    for index in range(count):
        if rng.random() < WRITE_MIX:
            if index % 2 == 0 and pending:
                string = pending.pop()
                operations.append(("insert", string))
                present.append(string)
            elif len(present) > 1:
                victim = present.pop(rng.randrange(len(present)))
                operations.append(("delete", victim))
            else:  # pragma: no cover - degenerate tiny workloads
                operations.append(("search", rng.choice(present)))
        else:
            operations.append(("search", rng.choice(present)))
    return operations


# --------------------------------------------------------------------
# Config A: search p99 under a 10% write mix vs the frozen baseline.


def run_write_mix_config(corpus: list[str], operations: list[tuple],
                         *, flush_threshold: int,
                         verify_sample: int) -> dict:
    queries = [payload for kind, payload in operations
               if kind == "search"]

    # Frozen baseline: the same searches against Corpus.frozen — the
    # exact engine the live path wraps in segments, minus mutability.
    frozen = Corpus.frozen(corpus, packed=True)
    frozen_latencies: list[float] = []
    for query in queries:
        started = time.perf_counter()
        frozen.search(query, K)
        frozen_latencies.append(time.perf_counter() - started)

    # Live replay: identical searches with the writes woven in; only
    # the searches are timed (the writes are the *cause* of the
    # overhead being measured, not the measurement).
    live = Corpus.live(corpus, flush_threshold=flush_threshold,
                       packed=True)
    live_latencies: list[float] = []
    writes = 0
    for kind, payload in operations:
        if kind == "search":
            started = time.perf_counter()
            live.search(payload, K)
            live_latencies.append(time.perf_counter() - started)
        elif kind == "insert":
            live.insert(payload)
            writes += 1
        else:
            live.delete(payload)
            writes += 1

    # Off-clock: after a full compaction the mutated corpus must equal
    # a from-scratch rebuild of its logical contents.
    live.compact()
    oracle = SequentialScanSearcher(sorted(live.snapshot()))
    rng = random.Random(99)
    verified = 0
    probes = rng.sample(queries, min(verify_sample, len(queries)))
    for query in probes:
        expected = [m.string for m in oracle.search(query, K)]
        actual = sorted(m.string for m in live.search(query, K))
        assert actual == expected, (
            f"post-compaction answer for {query!r} diverges from the "
            f"rebuild oracle")
        verified += 1

    # A real engine run over the mutated corpus supplies the record's
    # schema-valid SearchReport (and exercises the epoch-drift sync).
    engine = SearchEngine(live, observe=True)
    _, report = engine.search_many(tuple(probes), K, report=True)
    report_dict = report.to_dict()
    require_valid_report(report_dict)

    frozen_summary = _latency_summary(frozen_latencies)
    live_summary = _latency_summary(live_latencies)
    layout = live.live_corpus.describe()
    return {
        "searches": len(queries),
        "writes": writes,
        "write_fraction": round(writes / len(operations), 4),
        "frozen": frozen_summary,
        "live": live_summary,
        "p99_ratio": round(live_summary["p99"]
                           / max(frozen_summary["p99"], 1e-9), 2),
        "bar": P99_MULTIPLE,
        "flushes": layout["flushes"],
        "compactions": layout["compactions"],
        "tombstones_purged": layout["tombstones_purged"],
        "oracle_verified": verified,
        "report": report_dict,
    }


# --------------------------------------------------------------------
# Config B: background compaction must not block searches.


def _staged_corpus(strings: list[str], *, segment_size: int,
                   fanout: int, compaction: str) -> LiveCorpus:
    """``len(strings) / segment_size`` level-0 segments, via inserts."""
    corpus = LiveCorpus(flush_threshold=segment_size, fanout=fanout,
                        compaction=compaction, packed=True)
    for string in strings:
        corpus.insert(string)
    return corpus


def run_stall_config(strings: list[str], *, segment_size: int,
                     probe: str) -> dict:
    """Time one merge inline, then race searches against it live.

    Both corpora stage the identical level-0 segment group from the
    same insert stream. The inline corpus merges it synchronously
    (``fanout`` kept above the group size so nothing fires early); the
    background corpus fires the merge off its last flush and answers
    searches while the merge runs.
    """
    groups = len(strings) // segment_size

    inline = _staged_corpus(strings, segment_size=segment_size,
                            fanout=groups + 1, compaction="inline")
    assert inline.segment_count == groups
    started = time.perf_counter()
    inline.compact()
    inline_seconds = time.perf_counter() - started
    assert inline.segment_count == 1

    background = _staged_corpus(strings[:-segment_size],
                                segment_size=segment_size,
                                fanout=groups, compaction="background")
    during: list[float] = []
    # The final segment's worth of inserts crosses the flush threshold
    # and fires the background merge; search against it immediately.
    for string in strings[-segment_size:]:
        background.insert(string)
    expected = [m.string for m in
                SequentialScanSearcher(sorted(set(strings)))
                .search(probe, K)]
    while True:
        compacting = background.compacting
        started = time.perf_counter()
        matches = background.search(probe, K)
        during.append(time.perf_counter() - started)
        assert sorted(m.string for m in matches) == expected, (
            "search during background compaction lost exactness")
        if not compacting:
            break
    background.drain_compaction()
    assert background.compactions >= 1

    max_stall = max(during)
    return {
        "segments_merged": groups,
        "strings_merged": len(strings),
        "inline_compaction_seconds": round(inline_seconds, 6),
        "searches_during_compaction": len(during),
        "search_latency_seconds": _latency_summary(during),
        "max_stall_seconds": round(max_stall, 6),
        "stall_ratio": round(max_stall / max(inline_seconds, 1e-9), 4),
    }


# --------------------------------------------------------------------
# Config C: tracing the write path — unsampled free, sampled coherent.


def run_tracing_config(corpus: list[str], operations: list[tuple], *,
                       flush_threshold: int) -> dict:
    """Replay the mixed stream untraced and enabled-but-unsampled.

    The overhead leg times only the searches (like the write-mix
    config) with an unsampled ambient trace installed for the whole
    replay — every ``trace_span``/``emit_span`` call sits on the
    null fast path. The structural leg replays a sampled ingest and
    requires one coherent tree: ``live.search`` spans with their
    memtable/segment children, plus the flushes and compactions the
    writes triggered, all under the one root.
    """

    def replay(tracer: Tracer | None) -> dict:
        live = Corpus.live(corpus, flush_threshold=flush_threshold,
                           packed=True)
        latencies: list[float] = []

        def run() -> None:
            for kind, payload in operations:
                if kind == "search":
                    started = time.perf_counter()
                    live.search(payload, K)
                    latencies.append(time.perf_counter() - started)
                elif kind == "insert":
                    live.insert(payload)
                else:
                    live.delete(payload)

        if tracer is None:
            run()
        else:
            with use_trace(tracer, tracer.mint()):
                run()
        return _latency_summary(latencies)

    untraced = replay(None)
    unsampled_tracer = Tracer(sample_rate=0.0)
    unsampled = replay(unsampled_tracer)
    assert unsampled_tracer.spans() == (), "unsampled replay recorded"
    overhead = unsampled["p50"] / max(untraced["p50"], 1e-9)

    # Structural leg, off the clock: a sampled ingest+search replay
    # must land every live.* span in the one root's tree.
    tracer = Tracer(max_spans=262144)
    live = Corpus.live(corpus, flush_threshold=flush_threshold,
                       packed=True)
    with tracer.root("bench.ingest") as root:
        for kind, payload in operations:
            if kind == "search":
                live.search(payload, K)
            elif kind == "insert":
                live.insert(payload)
            else:
                live.delete(payload)
        # A smoke-sized write mix may sit below the flush threshold;
        # force the layout work so the flush and compaction spans are
        # asserted at every scale, not just the full run.
        live.insert("bench.ingest.sentinel")
        live.flush()
        live.compact()
    assert tracer.dropped == 0, f"span budget too small: {tracer.dropped}"
    spans = tracer.spans_for(root.trace_id)
    assert len(spans) == len(tracer.spans()), "spans leaked the trace"
    tree = span_tree(spans)
    single_rooted = [span.name for span in tree.roots] == ["bench.ingest"]
    names = {span.name for span in spans}
    assert "live.search" in names and "live.flush" in names, names
    assert "live.compaction" in names, names
    return {
        "untraced": untraced,
        "unsampled": unsampled,
        "p50_overhead": round(overhead, 3),
        "bar": TRACING_OVERHEAD_BAR,
        "sampled_spans": len(spans),
        "single_rooted": single_rooted,
        "span_kinds": sorted(
            {name.split("[")[0] for name in names}),
    }


# --------------------------------------------------------------------


def run_benchmark(*, corpus_size: int = 3000,
                  operation_count: int = 1500,
                  flush_threshold: int = 16,
                  stall_strings: int = 9000,
                  stall_segment_size: int = 2000,
                  verify_sample: int = VERIFY_SAMPLE) -> dict:
    corpus = generate_city_names(corpus_size, seed=2013)
    fresh = generate_city_names(corpus_size + operation_count,
                                seed=2013)[corpus_size:]
    operations = build_operations(corpus, fresh, operation_count)
    write_mix = run_write_mix_config(
        corpus, operations, flush_threshold=flush_threshold,
        verify_sample=verify_sample)
    tracing = run_tracing_config(corpus, operations,
                                 flush_threshold=flush_threshold)
    # Truncate to a whole number of segments so the inline and the
    # background corpus stage — and merge — the identical group.
    unique = sorted(set(generate_city_names(stall_strings, seed=7)))
    unique = unique[:len(unique)
                    // stall_segment_size * stall_segment_size]
    stall = run_stall_config(
        unique, segment_size=stall_segment_size, probe=unique[0])
    gates = {
        "write_mix_p99":
            write_mix["live"]["p99"]
            <= P99_MULTIPLE * write_mix["frozen"]["p99"],
        "bounded_stall":
            stall["max_stall_seconds"]
            < stall["inline_compaction_seconds"],
        "oracle_parity":
            write_mix["oracle_verified"]
            == min(verify_sample, write_mix["searches"]),
        "tracing_overhead":
            tracing["p50_overhead"] <= TRACING_OVERHEAD_BAR,
        "tracing_single_rooted": tracing["single_rooted"],
    }
    return {
        "benchmark": "bench_live",
        "python": platform.python_version(),
        "workload": {
            "corpus": corpus_size,
            "operations": operation_count,
            "write_mix": WRITE_MIX,
            "flush_threshold": flush_threshold,
            "stall_strings": stall_strings,
            "stall_segment_size": stall_segment_size,
            "k": K,
        },
        "write_mix": write_mix,
        "tracing": tracing,
        "stall": stall,
        "gates": gates,
        "measurements": common.build_measurements({
            "frozen_p50_seconds": write_mix["frozen"]["p50"],
            "frozen_p99_seconds": write_mix["frozen"]["p99"],
            "live_p50_seconds": write_mix["live"]["p50"],
            "live_p99_seconds": write_mix["live"]["p99"],
            "tracing_untraced_p50_seconds": tracing["untraced"]["p50"],
            "tracing_unsampled_p50_seconds":
                tracing["unsampled"]["p50"],
            "inline_compaction_seconds":
                stall["inline_compaction_seconds"],
            "max_stall_seconds": stall["max_stall_seconds"],
        }),
    }


def render(record: dict) -> str:
    workload = record["workload"]
    mix = record["write_mix"]
    stall = record["stall"]
    return "\n".join([
        "live corpus: the cost of mutability under the LSM write path",
        f"  python {record['python']}",
        "",
        f"  workload: {mix['searches']} searches + {mix['writes']} "
        f"writes ({mix['write_fraction']:.0%} mix) over "
        f"{workload['corpus']} cities, k={workload['k']}, flush "
        f"threshold {workload['flush_threshold']}",
        f"  layout churn: {mix['flushes']} flushes, "
        f"{mix['compactions']} compactions, "
        f"{mix['tombstones_purged']} tombstones purged",
        "",
        f"  frozen: p50 {mix['frozen']['p50'] * 1000:.2f}ms, "
        f"p99 {mix['frozen']['p99'] * 1000:.2f}ms",
        f"  live:   p50 {mix['live']['p50'] * 1000:.2f}ms, "
        f"p99 {mix['live']['p99'] * 1000:.2f}ms",
        f"  p99 ratio {mix['p99_ratio']:.2f}x (bar {mix['bar']:g}x); "
        f"{mix['oracle_verified']} post-compaction answers gated "
        "against the rebuild oracle off-clock",
        "",
        f"  tracing unsampled: p50 "
        f"{record['tracing']['unsampled']['p50'] * 1000:.3f}ms vs "
        f"untraced {record['tracing']['untraced']['p50'] * 1000:.3f}ms "
        f"({record['tracing']['p50_overhead']:.3f}x, bar "
        f"{record['tracing']['bar']:g}x)",
        f"  tracing sampled ingest: {record['tracing']['sampled_spans']}"
        f" spans in one tree ("
        + ", ".join(record['tracing']['span_kinds']) + ")",
        "",
        f"  background compaction: {stall['segments_merged']} segments "
        f"({stall['strings_merged']} strings) merged in "
        f"{stall['inline_compaction_seconds'] * 1000:.1f}ms inline",
        f"  worst search stall during the live merge: "
        f"{stall['max_stall_seconds'] * 1000:.2f}ms over "
        f"{stall['searches_during_compaction']} searches "
        f"(ratio {stall['stall_ratio']:.3f} of the inline merge)",
        "",
        "  gates: " + ", ".join(_gate_labels(record)),
    ])


def _gate_labels(record: dict) -> list[str]:
    # The timing bars are claims about the full-size workload; a smoke
    # corpus sits at timer granularity, so its verdict on them is
    # noise, not a regression — label it as unenforced.
    timing_gates = {"write_mix_p99", "bounded_stall", "tracing_overhead"}
    labels = []
    for name, passed in sorted(record["gates"].items()):
        verdict = "PASS" if passed else "FAIL"
        if record.get("smoke") and name in timing_gates:
            verdict = f"{verdict.lower()} (timing, unenforced in smoke)"
        labels.append(f"{name}={verdict}")
    return labels


def write_record(record: dict) -> Path:
    return common.write_record(record, JSON_PATH)


def test_live_gates(emit):
    record = run_benchmark(corpus_size=400, operation_count=200,
                           flush_threshold=8, stall_strings=400,
                           stall_segment_size=100, verify_sample=8)
    record["smoke"] = True
    write_record(record)
    emit("live", render(record))
    # Exactness gates hold at any scale; the p99 multiple and the
    # stall bound are timing claims for the full-size workload (tiny
    # smoke corpora sit at timer granularity) and are enforced by the
    # direct full run that produces the committed record.
    assert record["gates"]["oracle_parity"], record["write_mix"]
    assert record["gates"]["tracing_single_rooted"], record["tracing"]
    assert record["write_mix"]["flushes"] > 0
    assert record["stall"]["searches_during_compaction"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="live-corpus write-mix and compaction benchmark",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small corpus and operation count: exercises both "
             "configs (and emits the same BENCH_live.json shape) in "
             "seconds — what the CI live-smoke job runs",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        record = run_benchmark(corpus_size=400, operation_count=200,
                               flush_threshold=8, stall_strings=400,
                               stall_segment_size=100,
                               verify_sample=8)
        record["smoke"] = True
    else:
        record = run_benchmark()
    path = write_record(record)
    print(render(record))
    print(f"\nrecorded to {path}")
    failed = [name for name, passed in record["gates"].items()
              if not passed]
    if failed:
        print(f"FAIL: {', '.join(failed)}")
    # Smoke mode is a pipeline exercise on shared hardware; the
    # timing bars are enforced on the full run (and in the committed
    # record), not on CI noise.
    if args.smoke:
        return 0
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
