"""The shared bench-artifact writer every harness records through.

Each standalone harness (``bench_batch_compiled``, ``bench_headtohead``,
``bench_service``) used to hand-roll its own ``json.dumps`` call; they
now all ship their records through :func:`write_record`, which is where
the observability pipeline's guarantees are enforced **at write time**:

* every embedded :class:`repro.obs.SearchReport` dict is validated
  against ``REPORT_SCHEMA`` before the file is written — a harness can
  never commit an artifact the regression gate
  (:mod:`repro.obs.regress`) would refuse to read;
* the record is stamped with :data:`RESULT_SCHEMA_VERSION` so future
  writers can evolve the envelope without silent drift;
* a ``measurements`` mapping (``{label: seconds}``) gives the gate
  flat, harness-defined wall-clock series to diff even where no
  SearchReport applies (build times, off-clock verification, ...).

The rendered text twin lands next to the JSON through :func:`emit_text`
(the same ``benchmarks/results/`` directory the pytest ``emit`` fixture
uses), so a direct ``python benchmarks/bench_*.py`` run leaves the same
artifacts as ``pytest benchmarks/``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.exceptions import ReproError
from repro.obs.report import validate_report
from repro.obs.validate import iter_reports

#: Version stamp for the harness record envelope (not the embedded
#: SearchReport schema, which carries its own ``schema_version``).
RESULT_SCHEMA_VERSION = 1

#: Where rendered text reports land (shared with the pytest fixture).
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def build_measurements(stages: Mapping[str, float]) -> dict[str, float]:
    """A flat ``{label: seconds}`` mapping for the regression gate.

    Labels are harness-defined; :mod:`repro.obs.regress` pairs them by
    ``(benchmark, label)`` across baseline and current, so keep them
    stable across runs (they are an interface, like counter names).
    """
    measurements = {}
    for label, seconds in stages.items():
        if not isinstance(seconds, (int, float)):
            raise ReproError(
                f"measurement {label!r} must be seconds (a number), "
                f"got {type(seconds).__name__}"
            )
        measurements[str(label)] = round(float(seconds), 6)
    return measurements


def validate_record(record: Mapping[str, Any]) -> list[str]:
    """Every problem that would make the regression gate reject this.

    Checks the envelope (``benchmark`` name, ``measurements`` shape)
    and validates every embedded SearchReport dict against the report
    schema. An empty list means :mod:`repro.obs.regress` will accept
    the record as one side of a comparison.
    """
    problems: list[str] = []
    if not record.get("benchmark"):
        problems.append("record has no 'benchmark' name")
    measurements = record.get("measurements")
    if not isinstance(measurements, Mapping):
        problems.append("record has no 'measurements' mapping")
    else:
        for label, seconds in measurements.items():
            if not isinstance(seconds, (int, float)):
                problems.append(
                    f"measurement {label!r} is not a number"
                )
    for where, report in iter_reports(record):
        for problem in validate_report(report):
            problems.append(f"report at {where}: {problem}")
    return problems


def write_record(record: Mapping[str, Any], json_path: Path) -> Path:
    """Validate and persist one harness record as a JSON artifact.

    Raises :class:`repro.exceptions.ReproError` instead of writing when
    the record would not survive the regression gate — a bad artifact
    on disk is strictly worse than a failed benchmark run.
    """
    record = dict(record)
    record.setdefault("result_schema_version", RESULT_SCHEMA_VERSION)
    problems = validate_record(record)
    if problems:
        raise ReproError(
            f"refusing to write {json_path.name}: "
            + "; ".join(problems)
        )
    json_path.write_text(json.dumps(record, indent=2) + "\n",
                         encoding="utf-8")
    return json_path


def emit_text(name: str, report: str) -> Path:
    """Persist a rendered report to ``benchmarks/results/<name>.txt``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(report + "\n", encoding="utf-8")
    return path
