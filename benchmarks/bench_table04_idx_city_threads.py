"""Table IV: thread-count sweep of the index-based solution on cities.

Paper shape: more threads keep helping the trie on cities (32 is the
paper's optimum at 500/1000 queries; 16 and 32 sit within 1%); the
deterministic model lands on 8-32 depending on measured cost skew, so
the assertion is the weaker, noise-robust one: oversubscription beyond
one thread per core costs little because trie queries are skewed.
"""

from repro.bench.registry import run_experiment_raw


def test_table04_idx_city_thread_sweep(benchmark, scale, emit):
    report = benchmark.pedantic(
        run_experiment_raw, args=("table04", scale), rounds=1, iterations=1
    )
    emit("table04", report.render())

    # Paper: at the large batch, 4 threads are clearly worst of the
    # useful range (20.99s vs 14.19-14.78s for 8/16/32).
    four = report.cell("4 threads", 2).seconds
    rest = [report.cell(f"{t} threads", 2).seconds for t in (8, 16, 32)]
    assert min(rest) < four
    # 16 and 32 threads stay competitive with 8 (within 2x), unlike the
    # sequential sweep where 32 is ruinous.
    assert max(rest) < 2 * min(rest)
