"""Table VIII: thread-count sweep of the index-based solution on DNA.

Paper shape: 4 threads lag badly (1094s vs 753-823s); 8/16/32 are
within ~10% of one another with 16 the nominal optimum.
"""

from repro.bench.registry import run_experiment_raw


def test_table08_idx_dna_thread_sweep(benchmark, scale, emit):
    report = benchmark.pedantic(
        run_experiment_raw, args=("table08", scale), rounds=1, iterations=1
    )
    emit("table08", report.render())

    four = report.cell("4 threads", 2).seconds
    wide = [report.cell(f"{t} threads", 2).seconds for t in (8, 16, 32)]
    assert four > 1.2 * min(wide)
    assert max(wide) < 2 * min(wide)
