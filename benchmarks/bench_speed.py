"""The raw-speed layer, measured: packing, vector kernels, segments.

Three optimizations compound in :mod:`repro.speed` and this harness
gates each one separately, on the paper's DNA regime (the long-string,
small-alphabet side where raw per-candidate cost dominates):

* **packed storage** — ``CompiledCorpus(packed=True)`` vs the encoded
  corpus: compile time and deep in-memory size (the paper's section-6
  compression, in bulk);
* **vectorized kernel** — the numpy Myers bucket kernel vs the scalar
  bit-parallel loop, per bucket size, with bit-identical match sets
  asserted before any timing counts;
* **segments** — ``save_segment``/``load_segment`` cold-start vs both
  compiling from scratch and a pickle round-trip.

The run emits ``BENCH_speed.json`` at the repository root through
:func:`benchmarks.common.write_record` (schema-validated, regression-
gated in CI against the committed baseline). Run directly::

    PYTHONPATH=src python benchmarks/bench_speed.py

or through pytest (``pytest benchmarks/bench_speed.py``).
"""

from __future__ import annotations

import argparse
import pickle
import platform
import time
from pathlib import Path

try:  # package mode (pytest) vs script mode (python benchmarks/...)
    from benchmarks import common
except ImportError:  # pragma: no cover - script-mode fallback
    import common

from repro.bench.memory import deep_sizeof
from repro.core.verification import verify_against_reference
from repro.data.dna import generate_reads
from repro.data.workload import make_workload
from repro.obs.report import build_report
from repro.scan.corpus import CompiledCorpus
from repro.scan.executor import BatchScanExecutor
from repro.scan.searcher import CompiledScanSearcher
from repro.speed import load_segment, save_segment

#: Where the machine-readable record lands (repository root).
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_speed.json"

#: Default number of queries gated against the reference kernel
#: (off-clock; the quadratic reference dominates wall time fast).
VERIFY_QUERIES = 15

#: Acceptance bars for a full (non-smoke) run.
MIN_VECTOR_SPEEDUP = 2.0
MIN_PACKED_REDUCTION = 2.0
MIN_MMAP_VS_COMPILE = 10.0


def _time(function):
    started = time.perf_counter()
    value = function()
    return value, time.perf_counter() - started


def measure_storage(reads) -> dict:
    """Packed vs encoded corpus: compile time and resident bytes."""
    encoded, encoded_seconds = _time(lambda: CompiledCorpus(reads))
    packed, packed_seconds = _time(
        lambda: CompiledCorpus(reads, packed=True)
    )
    encoded_bytes = deep_sizeof(encoded)
    packed_bytes = deep_sizeof(packed)
    profile = packed.storage_profile()
    return {
        "dna_strings": len(reads),
        "encoded_compile_seconds": round(encoded_seconds, 6),
        "packed_compile_seconds": round(packed_seconds, 6),
        "encoded_deep_bytes": encoded_bytes,
        "packed_deep_bytes": packed_bytes,
        "deep_reduction": round(encoded_bytes / packed_bytes, 3),
        "byte_code_bytes": profile["byte_code_bytes"],
        "packed_code_bytes": profile["packed_bytes"],
        "packed_reduction": round(profile["packed_reduction"], 3),
    }


def _timed_run(corpus, workload, *, kernel: str, use_frequency: bool):
    executor = BatchScanExecutor(corpus, cache_size=0, kernel=kernel,
                                 use_frequency=use_frequency)
    results, seconds = _time(lambda: executor.search_many(
        list(workload.queries), workload.k
    ))
    return results, executor.counters_snapshot(), seconds


def measure_kernels(bucket_sizes, *, k: int = 8, queries: int = 8,
                    verify_sample: int = VERIFY_QUERIES) -> list[dict]:
    """Scalar vs vectorized scan per bucket size, parity-gated.

    The headline speedup is measured with the frequency prefilter
    disabled — that is the kernel-bound regime the vectorized path
    exists for (every candidate reaches the distance kernel). The
    filtered regime is timed alongside as ``auto`` vs scalar: there the
    prefilter prunes most of the bucket and ``auto``'s survivor-count
    heuristic keeps the scalar kernel for the stragglers, so the hybrid
    must hold its ground rather than win big.
    """
    entries = []
    for size in bucket_sizes:
        reads = generate_reads(size, seed=2013 + size)
        corpus = CompiledCorpus(reads, packed=True)
        workload = make_workload(reads, queries, k,
                                 alphabet_symbols="ACGNT",
                                 seed=size, name=f"bucket{size}")
        # Kernel-bound regime: prefilter off, every candidate scanned.
        scalar_results, scalar_counters, scalar_seconds = _timed_run(
            corpus, workload, kernel="scalar", use_frequency=False)
        vector_results, vector_counters, vector_seconds = _timed_run(
            corpus, workload, kernel="vectorized", use_frequency=False)
        # Bit-identical match sets and work counters, before timing
        # counts for anything.
        assert vector_results == scalar_results, (
            f"bucket {size}: vectorized results diverge from scalar"
        )
        assert vector_counters == scalar_counters, (
            f"bucket {size}: vectorized counters diverge from scalar"
        )
        # Filtered regime: the production default, auto vs scalar.
        filtered_scalar, _, filtered_scalar_seconds = _timed_run(
            corpus, workload, kernel="scalar", use_frequency=True)
        filtered_auto, _, filtered_auto_seconds = _timed_run(
            corpus, workload, kernel="auto", use_frequency=True)
        assert filtered_auto == filtered_scalar, (
            f"bucket {size}: auto results diverge from scalar"
        )
        sample = workload.take(verify_sample)
        _, verify_seconds = _time(lambda: verify_against_reference(
            CompiledScanSearcher(corpus, kernel="vectorized"),
            corpus.strings, sample,
            candidate_name=f"vectorized[bucket{size}]",
        ))
        speedup = (scalar_seconds / vector_seconds
                   if vector_seconds else 0.0)
        entries.append({
            "bucket_size": len(corpus.strings),
            "read_length": len(reads[0]),
            "queries": len(workload),
            "k": k,
            "scalar_seconds": round(scalar_seconds, 6),
            "vectorized_seconds": round(vector_seconds, 6),
            "speedup": round(speedup, 3),
            "filtered_scalar_seconds": round(filtered_scalar_seconds, 6),
            "filtered_auto_seconds": round(filtered_auto_seconds, 6),
            "filtered_auto_speedup": round(
                filtered_scalar_seconds / filtered_auto_seconds
                if filtered_auto_seconds else 0.0, 3
            ),
            "verified_queries": len(sample),
            "verify_seconds_offclock": round(verify_seconds, 6),
        })
    return entries


def measure_segments(reads, tmp_dir: Path) -> dict:
    """Segment save/load vs compile-from-scratch and pickle."""
    corpus, compile_seconds = _time(
        lambda: CompiledCorpus(reads, packed=True)
    )
    path = str(tmp_dir / "bench-speed-corpus.seg")
    _, save_seconds = _time(lambda: save_segment(corpus, path))
    loaded, load_seconds = _time(lambda: load_segment(path))
    blob, dump_seconds = _time(lambda: pickle.dumps(corpus))
    _, unpickle_seconds = _time(lambda: pickle.loads(blob))
    # The loaded corpus must answer like the compiled one.
    fresh = BatchScanExecutor(corpus)
    mapped = BatchScanExecutor(loaded)
    probe = reads[0]
    assert mapped.search(probe, 4) == fresh.search(probe, 4), (
        "segment-loaded corpus diverges from the compiled one"
    )
    return {
        "dna_strings": len(reads),
        "compile_seconds": round(compile_seconds, 6),
        "save_seconds": round(save_seconds, 6),
        "mmap_load_seconds": round(load_seconds, 6),
        "pickle_dump_seconds": round(dump_seconds, 6),
        "pickle_load_seconds": round(unpickle_seconds, 6),
        "segment_bytes": Path(path).stat().st_size,
        "pickle_bytes": len(blob),
        "mmap_vs_compile_speedup": round(
            compile_seconds / load_seconds if load_seconds else 0.0, 2
        ),
        "mmap_vs_pickle_load_speedup": round(
            unpickle_seconds / load_seconds if load_seconds else 0.0, 2
        ),
    }


def run_benchmark(dna_count: int = 2000, *,
                  bucket_sizes=(250, 1000, 4000),
                  verify_sample: int = VERIFY_QUERIES,
                  tmp_dir: Path | None = None) -> dict:
    """All three stages; returns the record written to JSON."""
    import tempfile

    reads = generate_reads(dna_count, seed=2013)
    kernels = measure_kernels(bucket_sizes,
                              verify_sample=verify_sample)
    if tmp_dir is None:
        with tempfile.TemporaryDirectory() as scratch:
            segments = measure_segments(reads, Path(scratch))
    else:
        segments = measure_segments(reads, tmp_dir)

    # One observed batch run through the vectorized path, embedded so
    # CI validates the artifact's SearchReport schema and the
    # regression gate can diff the latency quantiles.
    corpus = CompiledCorpus(reads, packed=True)
    executor = BatchScanExecutor(corpus, kernel="vectorized")
    # Scale the observed workload with the dataset so a smoke run and a
    # full run embed reports with *different* query counts: the regress
    # gate's exact result-drift check only pairs identical workloads,
    # and a smoke refresh against a committed full baseline must fall
    # back to the (generously thresholded) latency comparison instead.
    report_queries = max(4, min(12, dna_count // 200))
    workload = make_workload(reads, report_queries, 8,
                             alphabet_symbols="ACGNT",
                             seed=2013, name="speed-report")
    results, seconds = _time(lambda: executor.search_many(
        list(workload.queries), workload.k
    ))
    report = build_report(
        backend="compiled",
        engine="compiled-scan",
        mode="batch",
        queries=len(workload),
        k=workload.k,
        matches=results.total_matches,
        seconds=seconds,
        counters=executor.counters_snapshot(),
        histograms=executor.hists_snapshot(),
        batch=executor.stats,
        choice_backend="compiled",
        choice_reason="speed harness (vectorized kernel, DNA regime)",
    )

    record = {
        "benchmark": "bench_speed",
        "python": platform.python_version(),
        "verify_sample": verify_sample,
        "storage": measure_storage(reads),
        "kernels": kernels,
        "segments": segments,
        "report": report.to_dict(),
    }
    record["max_bucket_speedup"] = max(
        entry["speedup"] for entry in kernels
    )
    record["measurements"] = common.build_measurements({
        "storage.encoded_compile":
            record["storage"]["encoded_compile_seconds"],
        "storage.packed_compile":
            record["storage"]["packed_compile_seconds"],
        **{
            f"kernel.bucket{entry['bucket_size']}.{kernel}":
                entry[f"{kernel}_seconds"]
            for entry in kernels
            for kernel in ("scalar", "vectorized")
        },
        "segment.save": segments["save_seconds"],
        "segment.mmap_load": segments["mmap_load_seconds"],
        "segment.pickle_load": segments["pickle_load_seconds"],
    })
    return record


def render(record: dict) -> str:
    storage = record["storage"]
    segments = record["segments"]
    lines = [
        "raw-speed layer: packed corpora, vector kernels, segments",
        f"  python {record['python']}",
        "",
        f"  storage ({storage['dna_strings']} DNA reads): "
        f"{storage['packed_reduction']:.2f}x code compression, "
        f"{storage['deep_reduction']:.2f}x deep size "
        f"({storage['packed_deep_bytes']:,} vs "
        f"{storage['encoded_deep_bytes']:,} bytes)",
        "",
        f"  {'bucket':>8}{'queries':>9}{'k':>4}{'scalar':>10}"
        f"{'vector':>10}{'speedup':>9}{'filtered':>10}",
    ]
    for entry in record["kernels"]:
        lines.append(
            f"  {entry['bucket_size']:>8}{entry['queries']:>9}"
            f"{entry['k']:>4}{entry['scalar_seconds']:>9.3f}s"
            f"{entry['vectorized_seconds']:>9.3f}s"
            f"{entry['speedup']:>8.2f}x"
            f"{entry['filtered_auto_speedup']:>9.2f}x"
        )
    lines.extend([
        "",
        f"  segment ({segments['dna_strings']} reads, "
        f"{segments['segment_bytes']:,} bytes): "
        f"mmap load {segments['mmap_load_seconds'] * 1000:.2f}ms = "
        f"{segments['mmap_vs_compile_speedup']:.0f}x compile, "
        f"{segments['mmap_vs_pickle_load_speedup']:.1f}x pickle load",
        "",
        f"  every vectorized row verified identical to the reference "
        f"kernel on {record['verify_sample']}-query samples (off-clock)",
    ])
    return "\n".join(lines)


def write_record(record: dict) -> Path:
    return common.write_record(record, JSON_PATH)


def test_speed_layer(emit, tmp_path):
    record = run_benchmark(tmp_dir=tmp_path)
    write_record(record)
    emit("speed", render(record))
    assert record["max_bucket_speedup"] >= MIN_VECTOR_SPEEDUP, record
    assert record["storage"]["packed_reduction"] >= \
        MIN_PACKED_REDUCTION, record
    assert record["segments"]["mmap_vs_compile_speedup"] >= \
        MIN_MMAP_VS_COMPILE, record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="packed corpora, vectorized kernels and mmap "
                    "segments, measured on the DNA regime",
    )
    parser.add_argument(
        "--verify-sample", type=int, default=VERIFY_QUERIES, metavar="N",
        help="queries gated against the reference kernel, off-clock "
             f"(default {VERIFY_QUERIES})",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small datasets, no speedup gates: exercises the full "
             "pipeline (and emits the same BENCH_speed.json shape) in "
             "seconds — what the CI speed-smoke job runs",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        record = run_benchmark(dna_count=200, bucket_sizes=(40, 120),
                               verify_sample=min(args.verify_sample, 6))
        record["smoke"] = True
    else:
        record = run_benchmark(verify_sample=args.verify_sample)
    path = write_record(record)
    print(render(record))
    print(f"\nrecorded to {path}")
    if args.smoke:
        return 0
    gates_ok = (
        record["max_bucket_speedup"] >= MIN_VECTOR_SPEEDUP
        and record["storage"]["packed_reduction"] >= MIN_PACKED_REDUCTION
        and record["segments"]["mmap_vs_compile_speedup"]
        >= MIN_MMAP_VS_COMPILE
    )
    return 0 if gates_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
