"""Dataset-size scaling (section 6: "number of data records").

The paper's last future-work question: does dataset size move the
scan-vs-index answer? Measured on DNA: yes — the scan's cost grows
linearly with the record count, the trie's sub-linearly, so the trie's
relative position improves with scale.
"""

from repro.bench.registry import run_experiment_raw


def test_scaling_with_record_count(benchmark, scale, emit):
    report = benchmark.pedantic(
        run_experiment_raw, args=("scaling", scale), rounds=1,
        iterations=1,
    )
    emit("scaling", report.render())

    rows = report.row_labels
    # Ratio of trie time to scan time must improve (drop) from the
    # smallest to the largest dataset.
    first_ratio = report.cells[0][1].seconds / report.cells[0][0].seconds
    last_ratio = report.cells[-1][1].seconds / report.cells[-1][0].seconds
    assert last_ratio < first_ratio
    # And the scan's absolute cost must grow roughly linearly: at least
    # 4x from the 10x size increase (sub-linear would break the story).
    assert report.cells[-1][0].seconds > 4 * report.cells[0][0].seconds
    assert len(rows) == 4
