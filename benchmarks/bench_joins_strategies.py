"""Join strategies (competition join track): scan vs prefix vs trie.

All three strategies must produce identical pairs (verified inside the
experiment); this bench compares their clocks and asserts the expected
regime behaviour: prefix filtering pays off on the large-alphabet city
join, where rare q-grams are highly selective.
"""

from repro.bench.registry import run_experiment_raw

SCAN = "length-banded scan"
PREFIX = "prefix-filtered (Ed-Join)"
TRIE = "trie probing"


def test_join_strategies(benchmark, scale, emit):
    report = benchmark.pedantic(
        run_experiment_raw, args=("joins", scale), rounds=1, iterations=1
    )
    emit("joins", report.render())

    assert report.row_labels == [SCAN, PREFIX, TRIE]
    # Prefix filtering beats the plain scan on the city join.
    assert report.cell(PREFIX, 0).seconds < report.cell(SCAN, 0).seconds
    # The verification footnote proves all strategies agreed.
    assert any("verified identical" in note for note in report.footnotes)
