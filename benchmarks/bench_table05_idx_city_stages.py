"""Table V: the three index stages on city names.

Paper shape: compression trims a modest slice off the base trie
(42.26 -> 38.79s at 500 queries); managed parallelism then delivers the
large win (down to 7.58s).
"""

from repro.bench.registry import run_experiment_raw

STAGE1 = "1) base implementation (prefix tree)"
STAGE2 = "2) compression"


def test_table05_idx_city_stages(benchmark, scale, emit):
    report = benchmark.pedantic(
        run_experiment_raw, args=("table05", scale), rounds=1, iterations=1
    )
    emit("table05", report.render())

    stage3 = next(label for label in report.row_labels
                  if label.startswith("3)"))
    for column in range(3):
        base = report.cell(STAGE1, column).seconds
        compressed = report.cell(STAGE2, column).seconds
        parallel = report.cell(stage3, column).seconds
        # Compression never hurts by more than measurement noise...
        assert compressed < base * 1.25
        # ...and parallelism always improves on it.
        assert parallel < compressed
    # At the 1000-query batch, parallelism is the decisive stage, like
    # the paper's 73.43 -> 14.19s step (small batches pay the thread
    # creation overhead, diluting the factor).
    assert report.cell(stage3, 2).seconds < \
        report.cell(STAGE2, 2).seconds / 2
    # Node-count footnote proves compression actually happened.
    assert any("trie nodes" in note for note in report.footnotes)
