"""Figure 7: best sequential vs best index-based on DNA reads.

The paper's second hypothesis: on long strings over a tiny alphabet the
index wins — by 9-20% in its numbers, a slim margin. In this
reproduction the paper-config index (length annotations only) lands
within the same near-parity band of the inlined bit-parallel scan and
can end up on either side of it; the paper's own section-6 extension
(frequency vectors in the nodes) then makes the index win decisively.
EXPERIMENTS.md discusses the deviation.
"""

from repro.bench.registry import run_experiment

from benchmarks.bench_fig06_city_best import parse_series


def test_fig07_dna_best_vs_best(benchmark, scale, emit):
    report = benchmark.pedantic(
        run_experiment, args=("fig07", scale), rounds=1, iterations=1
    )
    emit("fig07", report)

    columns = parse_series(report)
    assert len(columns) == 3
    for column in columns:
        sequential = next(v for name, v in column.items()
                          if name.startswith("best sequential"))
        paper_index = next(v for name, v in column.items()
                           if name.startswith("best index-based"))
        freq_index = next(v for name, v in column.items()
                          if name.startswith("index + freq"))
        # Paper-config index: a close competitor on DNA (the paper's
        # margin was 9-20%; ours sits in a near-parity band that can
        # flip sign with measurement jitter — see EXPERIMENTS.md).
        assert 0.5 <= paper_index / sequential <= 2.0
        # The paper's proposed extension settles it for the index.
        assert freq_index < sequential
        assert freq_index < paper_index
