"""Index shootout (beyond the paper): every structure vs the scan.

The paper's title pits the scan against "a well-known index" but its
evaluation covers one index family (the trie). The library implements
five; this bench races them all on both datasets, with every contender
verified against the reference before its clock counts.
"""

from repro.bench.registry import run_experiment_raw


def test_shootout_all_structures(benchmark, scale, emit):
    report = benchmark.pedantic(
        run_experiment_raw, args=("shootout", scale), rounds=1,
        iterations=1,
    )
    emit("shootout", report.render())

    # Regime contrast (the paper's core finding, generalized): on city
    # names the scan beats the paper's index family (the tries); on DNA
    # at least one index beats the scan. The inverted q-gram index may
    # beat everything on cities — an honest extra finding recorded in
    # EXPERIMENTS.md, not a shape violation.
    scan_city = report.cell("sequential scan (bit-parallel)", 0).seconds
    scan_dna = report.cell("sequential scan (bit-parallel)", 1).seconds
    trie_rows = [label for label in report.row_labels
                 if "trie" in label or "DAWG" in label]
    index_rows = [label for label in report.row_labels
                  if "scan" not in label]
    best_trie_city = min(report.cell(row, 0).seconds
                         for row in trie_rows)
    best_index_dna = min(report.cell(row, 1).seconds
                         for row in index_rows)
    assert scan_city <= best_trie_city * 1.1
    assert best_index_dna < scan_dna
