"""Table III: the six sequential stages on city names.

Paper shape: stage 2 (edit-distance tricks) cuts the base time by
several-fold; stage 5 (thread per query) is a big regression over stage
4; stage 6 (managed pool) is the best stage at the large batches.
"""

from repro.bench.registry import run_experiment_raw

STAGE1 = "1) base implementation"
STAGE2 = "2) calculation of the edit distance"
STAGE4 = "4) simple data types and program methods"
STAGE5 = "5) parallelism (thread per query)"


def test_table03_seq_city_stages(benchmark, scale, emit):
    report = benchmark.pedantic(
        run_experiment_raw, args=("table03", scale), rounds=1, iterations=1
    )
    emit("table03", report.render())

    stage6 = next(label for label in report.row_labels
                  if label.startswith("6)"))
    for column in range(3):
        base = report.cell(STAGE1, column).seconds
        banded = report.cell(STAGE2, column).seconds
        simple = report.cell(STAGE4, column).seconds
        per_query = report.cell(STAGE5, column).seconds
        managed = report.cell(stage6, column).seconds
        # Paper: stage 2 reduces to ~1/5-1/7; any >=3x gain keeps shape.
        assert banded < base / 3
        # Paper: thread-per-query is ~6x worse than stage 4.
        assert per_query > 2 * simple
        # Paper: managed parallelism beats thread-per-query everywhere.
        assert managed < per_query
    # ... and at the 1000-query batch it beats the serial stage too.
    assert report.cell(stage6, 2).seconds < report.cell(STAGE4, 2).seconds
