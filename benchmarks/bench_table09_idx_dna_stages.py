"""Table IX: the three index stages on DNA.

Paper shape: compression is a *large* win on DNA (8686 -> 3450s: reads
have long unique suffix chains that merge into single nodes); managed
parallelism then delivers the rest (753s).
"""

from repro.bench.registry import run_experiment_raw

STAGE1 = "1) base implementation (prefix tree)"
STAGE2 = "2) compression"


def test_table09_idx_dna_stages(benchmark, scale, emit):
    report = benchmark.pedantic(
        run_experiment_raw, args=("table09", scale), rounds=1, iterations=1
    )
    emit("table09", report.render())

    stage3 = next(label for label in report.row_labels
                  if label.startswith("3)"))
    for column in range(3):
        base = report.cell(STAGE1, column).seconds
        compressed = report.cell(STAGE2, column).seconds
        parallel = report.cell(stage3, column).seconds
        # Compression helps on DNA (paper: ~2.5x; any real cut keeps
        # the shape — Python per-node overhead is smaller than C++'s
        # cache effects, so the margin is thinner here). The smallest
        # batch is measured on few queries, so grant it jitter room.
        tolerance = 1.25 if column == 0 else 1.0
        assert compressed < base * tolerance
        assert parallel < compressed
    # Parallelism is decisive at the large batch (paper: 3450 -> 753s).
    assert report.cell(stage3, 2).seconds < \
        report.cell(STAGE2, 2).seconds / 2
    # Reads merge into dramatically fewer nodes.
    note = next(n for n in report.footnotes if "trie nodes" in n)
    assert "->" in note
