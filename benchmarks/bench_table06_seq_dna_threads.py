"""Table VI: thread-count sweep of the sequential solution on DNA.

Paper shape: the sweep is *flat* between 8/16/32 threads (841/848/827s
at 1000 queries — within 2.5%) while 4 threads lag well behind; the
paper's nominal optimum of 16 over 8 is inside its own noise band, so
the assertions here check the flatness and the 4-thread gap.
"""

from repro.bench.registry import run_experiment_raw


def test_table06_seq_dna_thread_sweep(benchmark, scale, emit):
    report = benchmark.pedantic(
        run_experiment_raw, args=("table06", scale), rounds=1, iterations=1
    )
    emit("table06", report.render())

    four = report.cell("4 threads", 2).seconds
    eight = report.cell("8 threads", 2).seconds
    # 4 threads on 8 cores leave half the machine idle (paper: 1136s vs
    # 841s at 1000 queries).
    assert four > 1.25 * eight
    # DNA queries are long, so creation overhead is negligible: even 32
    # threads stay within 2x of the best.
    best = min(report.cell(f"{t} threads", 2).seconds
               for t in (4, 8, 16, 32))
    worst_wide = max(report.cell(f"{t} threads", 2).seconds
                     for t in (8, 16, 32))
    assert worst_wide < 2 * best
