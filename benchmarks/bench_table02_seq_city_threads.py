"""Table II: thread-count sweep of the sequential solution on cities.

Paper shape: 4 threads win the small batch (creation overhead), 8
threads — one per core — win at 500/1000 queries, and 32 threads lose
everywhere to oversubscription.
"""

from repro.bench.registry import run_experiment_raw


def test_table02_seq_city_thread_sweep(benchmark, scale, emit):
    report = benchmark.pedantic(
        run_experiment_raw, args=("table02", scale), rounds=1, iterations=1
    )
    emit("table02", report.render())

    # Paper orderings at the 100-query batch: 4 beats 8 beats 32
    # (creation overhead dominates the small batch).
    assert report.cell("4 threads", 0).seconds < \
        report.cell("8 threads", 0).seconds
    assert report.cell("8 threads", 0).seconds < \
        report.cell("32 threads", 0).seconds
    # At 1000 queries the sweet spot moves to one-ish thread per core;
    # the paper reads 8 with 16 only 4% behind, so either may win a
    # deterministic replay — but 4 (half the machine idle) must not.
    assert report.best_row(2) in ("8 threads", "16 threads")
    assert report.cell("4 threads", 2).seconds > \
        report.cell("8 threads", 2).seconds
