"""Figure 6: best sequential vs best index-based on city names.

The paper's headline result: on short strings over a large alphabet,
the optimized sequential scan needs only 4-58% of the index's time.
The figure adds the paper's section-6 extension (frequency vectors) as
a third series; on city names the vowel vectors prune little, so the
sequential win must survive it.
"""

import re

from repro.bench.registry import run_experiment

_BAR = re.compile(r"^\s+(.+?)\s+#+ ([\d.]+)s$")


def parse_series(report: str) -> list[dict[str, float]]:
    """Per-column mapping of series name -> seconds, in column order."""
    columns: list[dict[str, float]] = []
    current: dict[str, float] = {}
    for line in report.splitlines():
        if line.endswith("queries:"):
            current = {}
            columns.append(current)
            continue
        match = _BAR.match(line)
        if match and columns:
            current[match.group(1)] = float(match.group(2))
    return columns


def test_fig06_city_best_vs_best(benchmark, scale, emit):
    report = benchmark.pedantic(
        run_experiment, args=("fig06", scale), rounds=1, iterations=1
    )
    emit("fig06", report)

    columns = parse_series(report)
    assert len(columns) == 3
    for column in columns:
        assert len(column) == 3  # scan, paper index, freq index
        sequential = next(v for name, v in column.items()
                          if name.startswith("best sequential"))
        best_index = min(v for name, v in column.items()
                         if "index" in name)
        # The paper's headline: the scan wins cities, needing 4-58% of
        # the index's time (we allow up to 90% — the banded traversal
        # here is a stronger index than the paper's).
        assert sequential < best_index
        assert sequential / best_index <= 0.90
