"""Table VII: the six sequential stages on DNA.

Paper shape: the base implementation is so slow it can only be
*estimated* ("~ half day"); the edit-distance stage brings it into
measurable range (a >10x cut); stages 2-4 are within ~15% of each
other; parallel management delivers the final ~3-4x.
"""

from repro.bench.registry import run_experiment_raw

STAGE1 = "1) base implementation"
STAGE2 = "2) calculation of the edit distance"
STAGE4 = "4) simple data types and program methods"
STAGE5 = "5) parallelism (thread per query)"


def test_table07_seq_dna_stages(benchmark, scale, emit):
    report = benchmark.pedantic(
        run_experiment_raw, args=("table07", scale), rounds=1, iterations=1
    )
    emit("table07", report.render())

    stage6 = next(label for label in report.row_labels
                  if label.startswith("6)"))
    # Stage 1 is estimated, exactly like the paper's Table VII row 1.
    assert all(cell.estimated for cell in report.row(STAGE1))
    for column in range(3):
        base = report.cell(STAGE1, column).seconds
        banded = report.cell(STAGE2, column).seconds
        managed = report.cell(stage6, column).seconds
        # Paper: 1-2 days down to under an hour — a massive cut.
        assert banded < base / 10
        # Managed parallelism always beats thread-per-query.
        assert managed < report.cell(STAGE5, column).seconds
    # At the 500/1000-query batches it is the best stage outright
    # (paper: 827s vs 2833s serial); at 100 queries thread creation
    # can eat the margin, as the paper's own 89.53s-vs-88.18s shows.
    for column in (1, 2):
        assert report.cell(stage6, column).seconds < \
            report.cell(STAGE4, column).seconds
