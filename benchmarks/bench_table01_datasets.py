"""Table I: dataset generation and properties.

Regenerates the paper's dataset overview and benchmarks generation
throughput (the one build-time cost both solutions share).
"""

from repro.bench.experiment import load_city_dataset, load_dna_dataset
from repro.bench.registry import run_experiment
from repro.data.stats import describe


def test_table01_dataset_properties(benchmark, scale, emit):
    report = benchmark.pedantic(
        run_experiment, args=("table01", scale), rounds=1, iterations=1
    )
    emit("table01", report)

    cities = load_city_dataset(scale.city_count)
    reads = load_dna_dataset(scale.dna_count)
    city_stats = describe(cities)
    dna_stats = describe(reads)

    # Shape of Table I: short strings / large alphabet vs long strings /
    # five-symbol alphabet.
    assert city_stats.max_length <= 64
    assert city_stats.alphabet_size > 50
    assert dna_stats.alphabet_size <= 5
    assert 80 <= dna_stats.mean_length <= 120
