"""DNA read matching — the paper's non-natural-language scenario.

Run with::

    python examples/dna_read_matching.py

Synthesizes a reference genome, samples noisy reads from it, and then
answers the two questions genomics pipelines ask:

1. *read deduplication* — which reads in the set are near-duplicates of
   a probe read? (the paper's similarity-search problem, solved with
   the compressed trie that wins this regime);
2. *read mapping* — where does a read come from in the genome?
   (the Navarro-style suffix-array substrate with pattern
   partitioning).
"""

import time

from repro import IndexedSearcher
from repro.data.dna import DnaReadGenerator
from repro.data.stats import describe
from repro.index import SuffixArray

READ_COUNT = 800
K = 8


def main() -> None:
    generator = DnaReadGenerator(genome_length=30_000, read_length=100,
                                 seed=2013)
    reads = generator.generate(READ_COUNT)
    stats = describe(reads)
    print(f"reads: {stats.count} over alphabet size "
          f"{stats.alphabet_size}, mean length {stats.mean_length:.1f} "
          f"(the paper's long-string regime)\n")

    # --- near-duplicate detection with the compressed trie -----------
    print(f"building compressed trie index ...")
    started = time.perf_counter()
    index = IndexedSearcher(reads, index="compressed",
                            frequency_pruning=True,
                            tracked_symbols="ACGNT")
    build_seconds = time.perf_counter() - started
    print(f"  built in {build_seconds:.2f}s "
          f"({index.node_count:,} nodes)\n")

    probe = reads[0]
    started = time.perf_counter()
    matches = index.search(probe, K)
    query_ms = 1000 * (time.perf_counter() - started)
    print(f"reads within edit distance {K} of read 0 "
          f"({probe[:40]}...):")
    for match in matches[:5]:
        print(f"  distance {match.distance:>2}  {match.string[:60]}...")
    if len(matches) > 5:
        print(f"  ... and {len(matches) - 5} more")
    counters = index.counters_snapshot()
    print(f"  [{query_ms:.1f} ms; traversal visited "
          f"{counters['trie.nodes_visited']:,} nodes, pruned "
          f"{counters['trie.branches_pruned_by_length']:,} branches "
          f"by length and "
          f"{counters['trie.branches_pruned_by_frequency']:,} "
          f"by frequency vectors]\n")

    # --- read mapping with the suffix array ---------------------------
    print("building suffix array over the reference genome ...")
    started = time.perf_counter()
    suffix_array = SuffixArray(generator.genome)
    print(f"  built in {time.perf_counter() - started:.2f}s "
          f"({len(suffix_array):,} suffixes)\n")

    noisy_read = reads[1]
    started = time.perf_counter()
    hits = suffix_array.approximate_occurrences(noisy_read, K)
    map_ms = 1000 * (time.perf_counter() - started)
    print(f"mapping read 1 (with sequencing noise) at k={K}:")
    for hit in hits[:3]:
        print(f"  genome[{hit.start}:{hit.end}]  distance {hit.distance}")
    if not hits:
        print("  no placement found (raise k for noisier reads)")
    print(f"  [{map_ms:.1f} ms via pattern partitioning: "
          f"{K + 1} exact pieces seed banded verification]")


if __name__ == "__main__":
    main()
