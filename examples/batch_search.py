"""Batch search: compile the corpus once, amortize every query.

Run with::

    python examples/batch_search.py

Builds a synthetic city gazetteer, compiles it once, and answers a
repeated-mix workload three ways — per-query scan, serial batch, and
batch over a thread pool — verifying all of them against the reference
kernel and printing where the time went.
"""

import time

from repro import (
    BatchScanExecutor,
    CompiledCorpus,
    SequentialScanSearcher,
    Workload,
    make_workload,
    verify_against_reference,
)
from repro.data.cities import generate_city_names
from repro.parallel.executor import ThreadPoolRunner
from repro.scan import CompiledScanSearcher


def main() -> None:
    dataset = generate_city_names(2000, seed=7)
    # A repeated-mix workload: 30 distinct perturbed queries, each
    # asked four times — the shape competition files and real traffic
    # share, and the shape batch mode exploits.
    base = make_workload(dataset, 30, 2,
                         alphabet_symbols="abcdefghinorst", seed=11,
                         name="demo")
    workload = Workload(tuple(base.queries) * 4, 2, "demo-mix")
    print(f"dataset: {len(dataset)} strings, "
          f"workload: {len(workload)} queries "
          f"({len(set(workload.queries))} distinct), k={workload.k}\n")

    # 1. The per-query baseline: one full scan per query, every time.
    per_query = SequentialScanSearcher(dataset, kernel="bitparallel")
    started = time.perf_counter()
    baseline = per_query.run_workload(workload)
    per_query_s = time.perf_counter() - started
    print(f"per-query bitparallel scan   {per_query_s:8.3f}s")

    # 2. Compile once, batch serially.
    started = time.perf_counter()
    corpus = CompiledCorpus(dataset)
    compile_s = time.perf_counter() - started
    executor = BatchScanExecutor(corpus)
    started = time.perf_counter()
    batched = executor.search_many(list(workload.queries), workload.k)
    batch_s = time.perf_counter() - started
    print(f"compile corpus               {compile_s:8.3f}s   "
          f"({corpus.describe()['buckets']} length buckets)")
    print(f"batch scan (serial)          {batch_s:8.3f}s   "
          f"speedup {per_query_s / batch_s:.1f}x")
    stats = executor.stats
    print(f"  {stats.unique_queries} scans answered "
          f"{stats.queries_seen} queries "
          f"({stats.deduplicated} deduplicated)")

    # 3. Same corpus, fanned out over a thread pool.
    threaded = BatchScanExecutor(corpus, runner=ThreadPoolRunner(threads=4))
    started = time.perf_counter()
    fanned = threaded.search_many(list(workload.queries), workload.k)
    fanout_s = time.perf_counter() - started
    print(f"batch scan (threads:4)       {fanout_s:8.3f}s")

    # Identical results, the paper's acceptance criterion:
    assert batched == baseline and fanned == baseline
    verify_against_reference(CompiledScanSearcher(corpus), dataset,
                             workload.take(20))
    print("\nall three result sets identical; "
          "verified against the reference kernel on a 20-query sample")


if __name__ == "__main__":
    main()
