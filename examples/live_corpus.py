"""The mutable corpus: inserts, deletes, compaction, persistence.

Run with::

    python examples/live_corpus.py

The paper freezes its dataset before the race starts; real gazetteers
grow and shrink while queries keep arriving. This example walks the
`Corpus` facade's mutable side (docs/LIVE.md): an LSM-style write path
where inserts land in a memtable, deletes become tombstones, flushes
seal immutable segments, and compaction folds the segments back into
one — all while `search` keeps answering exactly.
"""

import tempfile

from repro import Corpus, SearchEngine

SEED = ["Berlin", "Bern", "Bergen", "Bremen", "Hamburg", "Hannover"]


def banner(title: str) -> None:
    print(f"--- {title} ---")


def main() -> None:
    # A tiny flush threshold so the LSM machinery is visible at this
    # scale; the default (256) would keep everything in the memtable.
    corpus = Corpus.live(SEED, flush_threshold=4, fanout=2)

    banner("mutations are immediately searchable")
    corpus.insert("Bonn")
    corpus.delete("Bergen")
    hits = ", ".join(m.string for m in corpus.search("Ber", 3))
    print(f"within distance 3 of 'Ber': {hits}")
    print(f"epoch {corpus.epoch} after one insert and one delete")
    print()

    banner("flushes seal segments; compaction folds them")
    for i in range(8):
        corpus.insert(f"Neustadt-{i}")
    live = corpus.live_corpus
    print(f"{live.segment_count} segments of sizes {live.segment_sizes()}, "
          f"{live.memtable_size} strings still in the memtable")
    corpus.compact()
    print(f"after compact(): {live.segment_count} segment of "
          f"{live.segment_sizes()[0]} strings, "
          f"{live.tombstone_count} tombstones left")
    print()

    banner("the rest of the stack tracks the epoch")
    engine = SearchEngine(corpus)
    before = engine.plan("Neustadt-3", 1).statistics["count"]
    corpus.insert("Neustadt-99")
    after = engine.plan("Neustadt-3", 1).statistics["count"]
    print(f"planner statistics re-derived on drift: "
          f"{before} -> {after} strings")
    print()

    banner("persistence: sync, reopen, keep mutating")
    with tempfile.TemporaryDirectory() as segment_dir:
        durable = Corpus.live(corpus.snapshot(), flush_threshold=4,
                              segment_dir=segment_dir)
        durable.insert("Wiesbaden")
        durable.sync()  # manifest + unflushed memtable hit disk

        reopened = Corpus.open(segment_dir)
        assert reopened.mutable and "Wiesbaden" in reopened
        reopened.delete("Wiesbaden")
        print(f"reopened {len(reopened)} strings at epoch "
              f"{reopened.epoch}; 'Wiesbaden' in corpus: "
              f"{'Wiesbaden' in reopened}")
    print()

    # The same handle, frozen: identical read surface, mutations raise.
    frozen = Corpus.frozen(corpus.snapshot())
    print(f"frozen twin answers identically: "
          f"{frozen.search('Bonn', 0) == corpus.search('Bonn', 0)}")


if __name__ == "__main__":
    main()
