"""Similarity join and deduplication — the competition's other problem.

Run with::

    python examples/similarity_join.py

The paper's datasets come from the EDBT/ICDT 2013 String Similarity
**Search/Join** Competition. This example runs the join side: match a
"dirty" list of city names (with typos) against a clean gazetteer, and
deduplicate a read set whose sequencing produced near-identical copies.
"""

from repro import deduplicate, similarity_join
from repro.core.join import index_join, scan_join
from repro.data import apply_random_edits, generate_city_names
from repro.data.dna import DnaReadGenerator


def main() -> None:
    # ------------------------------------------------------------------
    # Join a dirty list against a clean gazetteer.
    # ------------------------------------------------------------------
    gazetteer = generate_city_names(1500, seed=2013)
    dirty = [
        apply_random_edits(name, edits, "abcdefghilmnorstu", seed=i)
        for i, (name, edits) in enumerate(
            (gazetteer[i * 7], i % 3) for i in range(40)
        )
    ]
    result = similarity_join(dirty, gazetteer, 2)
    print(f"joined {len(dirty)} dirty entries against "
          f"{len(gazetteer)} gazetteer names at k=2: "
          f"{len(result)} pairs in {result.seconds:.3f}s")
    for left_string, right_string, distance in \
            result.as_string_pairs(dirty, gazetteer)[:5]:
        marker = "exact" if distance == 0 else f"d={distance}"
        print(f"  {left_string!r:<30} -> {right_string!r}  ({marker})")
    print()

    # Both join strategies produce identical pairs; compare their work.
    scan = scan_join(dirty, gazetteer, 2)
    indexed = index_join(dirty, gazetteer, 2)
    assert scan.pairs == indexed.pairs
    print(f"scan join:  {scan.seconds:.3f}s "
          f"({scan.candidates_examined} candidates)")
    print(f"index join: {indexed.seconds:.3f}s "
          f"({indexed.candidates_examined} candidates)\n")

    # ------------------------------------------------------------------
    # Deduplicate a read set (PCR duplicates are near-identical).
    # ------------------------------------------------------------------
    generator = DnaReadGenerator(genome_length=8000, read_length=80,
                                 duplicate_fraction=0.35, seed=7)
    reads = generator.generate(150)
    clusters = deduplicate(reads, 4)
    duplicates = sum(len(cluster) - 1 for cluster in clusters)
    print(f"read deduplication at k=4: {len(clusters)} duplicate "
          f"clusters covering {duplicates} redundant reads "
          f"out of {len(reads)}")
    if clusters:
        sample = clusters[0]
        print(f"  e.g. reads {sample} share the window "
              f"{reads[sample[0]][:32]}...")


if __name__ == "__main__":
    main()
