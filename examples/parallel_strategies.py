"""The three parallelism strategies of sections 3.5/3.6, side by side.

Run with::

    python examples/parallel_strategies.py

Shows both execution surfaces:

* the *real* runners (results must be identical under every strategy —
  the invariant the paper's verification loop enforces), and
* the *scheduler model*, which replays measured per-query costs on the
  paper's modelled 8-core machine and reproduces its thread-sweep
  story: thread-per-query drowns in creation overhead, one thread per
  core is the sweet spot, oversubscription pays a contention tax.
"""

import time

from repro import SequentialScanSearcher, verify_result_sets
from repro.data import generate_city_names, make_workload
from repro.parallel import (
    AdaptiveManager,
    ManagerRules,
    SchedulerModel,
    SerialRunner,
    ThreadPerQueryRunner,
    ThreadPoolRunner,
    simulate_adaptive,
    simulate_fixed_pool,
    simulate_thread_per_query,
)
from repro.parallel.simulator import simulate_serial
from repro.parallel.strategies import AdaptiveStrategy


def main() -> None:
    cities = generate_city_names(1500, seed=3)
    workload = make_workload(cities, 30, 2,
                             alphabet_symbols="abcdeghilmnorst",
                             seed=5, name="strategies")
    searcher = SequentialScanSearcher(cities, kernel="bitparallel")

    # ------------------------------------------------------------------
    # Real runners: strategy never changes results, only plumbing.
    # ------------------------------------------------------------------
    print("real executors (results verified identical):")
    reference = None
    for runner in (
        SerialRunner(),
        ThreadPerQueryRunner(max_live=16),
        ThreadPoolRunner(threads=8),
        AdaptiveManager(ManagerRules(min_threads=2, max_threads=8,
                                     sample_interval=0.005)),
    ):
        started = time.perf_counter()
        results = searcher.run_workload(workload, runner)
        elapsed = time.perf_counter() - started
        if reference is None:
            reference = results
        else:
            verify_result_sets(reference, results,
                               candidate_name=runner.name)
        print(f"  {runner.name:<18} {elapsed:.3f}s "
              f"({results.total_matches} matches)")
    print("  (CPython's GIL serializes CPU-bound threads, so these "
        "clocks barely move — which is exactly why the paper's sweeps "
        "run on the scheduler model below)\n")

    # ------------------------------------------------------------------
    # Scheduler model: the paper's 8-core testbed, replayed.
    # ------------------------------------------------------------------
    costs = []
    for query in workload.queries:
        started = time.perf_counter()
        searcher.search(query, workload.k)
        costs.append(time.perf_counter() - started)
    mean = sum(costs) / len(costs)
    machine = SchedulerModel(cores=8, thread_create_cost=5 * mean,
                             thread_join_cost=mean)
    print(f"scheduler model (8 cores, thread overhead = 6x the "
          f"{1000 * mean:.1f} ms mean query):")
    print(f"  {'serial':<22} "
          f"{simulate_serial(costs).wall_time:.3f}s")
    print(f"  {'thread per query':<22} "
          f"{simulate_thread_per_query(costs, machine).wall_time:.3f}s"
          "   <- the paper's stage-5 regression")
    for threads in (4, 8, 16, 32):
        result = simulate_fixed_pool(costs, threads, machine)
        note = "   <- one per core" if threads == 8 else ""
        print(f"  {f'fixed pool, {threads}':<22} "
              f"{result.wall_time:.3f}s{note}")
    adaptive = simulate_adaptive(costs, AdaptiveStrategy(max_threads=16),
                                 machine)
    print(f"  {'adaptive (70%/30%)':<22} {adaptive.wall_time:.3f}s"
          f"   (opened {adaptive.threads_opened} workers, peak "
          f"{adaptive.peak_threads})")


if __name__ == "__main__":
    main()
