"""Typo-tolerant city lookup — the paper's natural-language scenario.

Run with::

    python examples/city_typo_search.py

Generates a synthetic world gazetteer (the competition's city dataset
is not distributed; see DESIGN.md), corrupts real entries the way users
mistype them, and walks the paper's sequential optimization ladder to
show how each stage changes the time to answer the whole batch —
finishing with the stage-acceptance report of Figure 3.
"""

import time

from repro import Approach, ApproachPipeline, SequentialScanSearcher
from repro.core.stages import sequential_stage_ladder
from repro.data import generate_city_names, make_workload
from repro.data.stats import describe

GAZETTEER_SIZE = 3000
QUERIES = 25
K = 2


def main() -> None:
    cities = generate_city_names(GAZETTEER_SIZE, seed=2013)
    stats = describe(cities)
    print(f"gazetteer: {stats.count:,} names, "
          f"{stats.alphabet_size} symbols, "
          f"mean length {stats.mean_length:.1f} "
          f"(the paper's short-string regime)")

    workload = make_workload(
        cities, QUERIES, K,
        alphabet_symbols="abcdefghilmnorstu", seed=7, name="typos",
    )
    print(f"workload: {len(workload)} queries at k={K} "
          f"(dataset names with 0-{K} random edits)\n")

    # A couple of individual lookups first.
    searcher = SequentialScanSearcher(cities, kernel="bitparallel")
    for query in workload.queries[:3]:
        started = time.perf_counter()
        matches = searcher.search(query, K)
        elapsed = 1000 * (time.perf_counter() - started)
        preview = ", ".join(m.string for m in matches[:4])
        more = f" (+{len(matches) - 4} more)" if len(matches) > 4 else ""
        print(f"  {query!r:<28} -> {preview}{more}   [{elapsed:.1f} ms]")
    print()

    # The paper's methodology, end to end: run every stage, verify it
    # against the base implementation, accept only if faster.
    ladder = sequential_stage_ladder(cities)
    pipeline = ApproachPipeline(ladder[0], workload)
    outcomes = pipeline.run(ladder[1:])
    print(pipeline.report(outcomes))


if __name__ == "__main__":
    main()
