"""The competition workflow, end to end — the paper's section 3.1 loop.

Run with::

    python examples/competition_runner.py [workdir]

Writes a data file and a query file, answers the queries with *both*
solutions, checks the result files are byte-identical (the paper's
correctness gate), and reports the timing comparison the whole paper is
about.
"""

import sys
import tempfile
import time
from pathlib import Path

from repro import (
    IndexedSearcher,
    SequentialScanSearcher,
    Workload,
    verify_result_sets,
)
from repro.data import generate_city_names, make_workload
from repro.data.io import read_queries, read_strings, write_result_file, \
    write_strings

DATASET_SIZE = 2500
QUERIES = 40
K = 3


def main() -> None:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path(tempfile.mkdtemp(prefix="repro-competition-"))
    workdir.mkdir(parents=True, exist_ok=True)
    data_path = workdir / "cities.txt"
    query_path = workdir / "queries.txt"

    # 1. Produce the competition files.
    cities = generate_city_names(DATASET_SIZE, seed=2013)
    workload_spec = make_workload(
        cities, QUERIES, K, alphabet_symbols="abcdefghilmnorstu",
        seed=99, name="competition",
    )
    write_strings(data_path, cities)
    write_strings(query_path, workload_spec.queries)
    print(f"wrote {data_path} ({DATASET_SIZE} strings) and "
          f"{query_path} ({QUERIES} queries, k={K})\n")

    # 2. Read them back, exactly like a competition entry would.
    dataset = read_strings(data_path)
    queries = tuple(read_queries(query_path))
    workload = Workload(queries, K, name="competition")

    # 3. Solve with both solutions, timing only query execution.
    solutions = {
        "sequential (bit-parallel scan)":
            SequentialScanSearcher(dataset, kernel="bitparallel"),
        "index-based (compressed trie)":
            IndexedSearcher(dataset, index="compressed"),
    }
    results = {}
    timings = {}
    for name, searcher in solutions.items():
        started = time.perf_counter()
        results[name] = searcher.run_workload(workload)
        timings[name] = time.perf_counter() - started

    # 4. The paper's gate: both solutions must agree exactly.
    names = list(solutions)
    verify_result_sets(results[names[0]], results[names[1]],
                       candidate_name=names[1])
    print("correctness gate passed: both solutions returned identical "
          "result sets\n")

    # 5. Write result files and compare the clocks.
    for name, result in results.items():
        slug = "seq" if "sequential" in name else "idx"
        path = workdir / f"results-{slug}.txt"
        write_result_file(
            path, list(queries),
            [list(result.strings_for(i)) for i in range(len(result))],
        )
        print(f"{name:<36} {timings[name]:.3f}s  -> {path.name}")

    faster = min(timings, key=timings.get)  # type: ignore[arg-type]
    slower = max(timings, key=timings.get)  # type: ignore[arg-type]
    share = 100.0 * timings[faster] / timings[slower]
    print(f"\n{faster} wins on this dataset, needing {share:.0f}% of "
          f"the other's time (paper, city names: 4-58%)")


if __name__ == "__main__":
    main()
