"""A spell-checker in thirty lines — the application the paper motivates.

Run with::

    python examples/spellcheck.py

Section 1 of the paper opens with applications that "have to be
tolerant against input errors". This example assembles one from the
library's parts: an auto-selected engine over a gazetteer, top-k
ranking for suggestions, a live corpus for learning new names, and
edit scripts to explain what the user got wrong.
"""

from repro import Corpus, SearchEngine, search_topk
from repro.data import apply_random_edits, generate_city_names
from repro.distance import edit_script


def main() -> None:
    gazetteer = generate_city_names(5000, seed=2013)
    engine = SearchEngine(gazetteer)
    print(f"dictionary: {len(gazetteer):,} place names "
          f"({engine.default_plan.strategy} strategy)\n")

    # Corrupt real gazetteer entries the way users mistype them.
    typos = [
        apply_random_edits(gazetteer[i * 311], edits,
                           "abcdefghilmnorstu", seed=i)
        for i, edits in enumerate((1, 1, 2, 2), start=1)
    ]

    for typo in typos:
        suggestions = search_topk(engine.searcher, typo, 3)
        print(f"did you mean (for {typo!r}):")
        for rank, match in enumerate(suggestions, start=1):
            if match.distance == 0:
                note = "exact match"
            else:
                note = "; ".join(edit_script(typo, match.string)[:2])
            print(f"  {rank}. {match.string:<28} "
                  f"(distance {match.distance}: {note})")
        print()

    # Threshold retrieval treats all errors alike; a typo model knows
    # better. Re-rank a retrieved short list with keyboard-aware costs:
    from repro.distance import rank_corrections

    probe = "Mistadt"  # 'i' sits next to 'u' and 'o' on QWERTY
    shortlist = [m.string for m in search_topk(engine.searcher, probe, 8)]
    reranked = rank_corrections(probe, shortlist, limit=3)
    print(f"keyboard-aware re-ranking for {probe!r}:")
    for string, cost in reranked:
        print(f"  {string:<28} weighted cost {cost:.2f}")
    print()

    # While the user is still typing, complete the (possibly already
    # misspelled) prefix instead of the whole word.
    from repro.index import CompressedTrie, autocomplete

    trie = CompressedTrie(gazetteer)
    typed = gazetteer[42][:4]
    mistyped = typed[:-1] + ("x" if typed[-1] != "x" else "y")
    for prompt in (typed, mistyped):
        completions = autocomplete(trie, prompt, 1, limit=3)
        rendered = ", ".join(
            f"{c.string} (+{c.prefix_distance})" for c in completions
        )
        print(f"autocomplete {prompt!r}: {rendered}")
    print()

    # Dictionaries grow: a live corpus absorbs new names without a
    # rebuild, and they are immediately searchable (docs/LIVE.md).
    live = Corpus.live(gazetteer[:1000])
    live.insert("Neuspringfield")
    (hit,) = search_topk(live, "Neuspringfeild", 1)
    print("after learning 'Neuspringfield', the live corpus corrects "
          f"'Neuspringfeild' -> {hit.string!r} (distance {hit.distance})")


if __name__ == "__main__":
    main()
