"""Quickstart: similarity search in five minutes.

Run with::

    python examples/quickstart.py

Builds a tiny gazetteer, asks the engine for everything within edit
distance 2 of a misspelled query, and shows how the library explains
both its cost-model plan and each match.
"""

from repro import Corpus, SearchEngine, edit_distance
from repro.distance import DistanceMatrix, edit_script

CITIES = [
    "Berlin", "Bern", "Bergen", "Bremen", "Hamburg", "Hannover",
    "Magdeburg", "Marburg", "Ulm", "Köln", "München", "Münster",
]


def main() -> None:
    # Corpus.frozen is the canonical way to hand a dataset to any
    # layer (a plain iterable still works; see examples/live_corpus.py
    # for the mutable variant).
    engine = SearchEngine(Corpus.frozen(CITIES))
    print(f"strategy: {engine.default_plan.strategy}")
    print(f"reason:   {engine.default_plan.reason}")
    print()

    query = "Magdburg"  # a missing 'e' — the typo the paper motivates
    print(f"query: {query!r}, threshold k=2")
    print(engine.explain(query, 2).render())
    print()
    for match in engine.search(query, 2):
        fixes = "; ".join(edit_script(query, match.string))
        print(f"  {match.string:<12} distance {match.distance}   ({fixes})")
    print()

    # The paper's Figure 1, reproduced for any pair of strings:
    print("the DP matrix behind ed('AGGCGT', 'AGAGT'):")
    matrix = DistanceMatrix("AGGCGT", "AGAGT")
    print(matrix.render())
    print(f"edit distance: {matrix.distance} "
          f"(same as edit_distance(): {edit_distance('AGGCGT', 'AGAGT')})")


if __name__ == "__main__":
    main()
