"""Setup shim: enables `pip install -e .` in offline environments.

The environment this repo ships in has no `wheel` package and no network,
so PEP 660 editable wheels cannot be built; the legacy `setup.py develop`
path used by `pip install -e . --no-use-pep517` works without it. All
project metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
