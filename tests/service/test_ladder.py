"""The degradation ladder: fallbacks, retries, honest labels."""

from dataclasses import dataclass, field

import pytest

from repro.core.deadline import Budget
from repro.core.request import SearchOptions, SearchRequest
from repro.core.result import Match
from repro.core.sequential import SequentialScanSearcher
from repro.exceptions import (
    DeadlineExceeded,
    PartialResultError,
    ReproError,
)
from repro.service import (
    BackendPlan,
    FilterOnlyPlan,
    PlanResult,
    Service,
    default_ladder,
)

DATASET = ["Berlin", "Berlyn", "Bern", "Merlin", "Ulm", "Hamburg"] * 4


@dataclass
class ScriptedPlan:
    """Test double: raises per script, then succeeds."""

    name: str
    failures: list = field(default_factory=list)
    matches: tuple = (Match("Berlin", 1),)
    calls: int = 0

    def run(self, corpus, query, k, deadline):
        self.calls += 1
        if self.failures:
            raise self.failures.pop(0)
        return PlanResult(plan=self.name, matches=self.matches,
                          verified=True)


class TestLadderFallback:
    def test_first_rung_success_is_complete(self):
        service = Service(DATASET, shards=2)
        result = service.submit("Berlino", 2)
        assert result.status == "complete"
        assert result.verified
        assert result.plan == "flat"

    def test_results_verified_correct_down_the_ladder(self):
        # Whatever rung answers, an exact-status result must equal the
        # plain reference searcher's answer.
        reference = set(SequentialScanSearcher(sorted(set(DATASET)))
                        .search("Berlino", 2))
        for plans in ([BackendPlan("flat")], [BackendPlan("compiled")],
                      [BackendPlan("sequential")], default_ladder()):
            service = Service(DATASET, shards=3, plans=plans)
            result = service.submit("Berlino", 2)
            assert result.complete
            assert set(result.matches) == reference

    def test_expiry_degrades_to_next_rung(self):
        flaky = ScriptedPlan("flaky", failures=[
            DeadlineExceeded("expired", partial=(Match("Bern", 2),)),
        ])
        solid = ScriptedPlan("solid")
        service = Service(DATASET, plans=[flaky, solid])
        result = service.submit("Berlino", 2)
        assert result.status == "degraded"
        assert result.plan == "solid"
        assert flaky.calls == 1  # expiry does not retry the same rung
        assert result.attempts == 2

    def test_transient_error_retries_with_backoff(self):
        sleeps = []
        plan = ScriptedPlan("wobbly", failures=[ReproError("transient")])
        service = Service(DATASET, plans=[plan], retry_budget=2,
                          sleep=sleeps.append)
        result = service.submit("Berlino", 2)
        assert result.status == "complete"
        assert plan.calls == 2
        assert len(sleeps) == 1
        assert sleeps[0] > 0

    def test_backoff_is_bounded_exponential(self):
        sleeps = []
        plan = ScriptedPlan("wobbly", failures=[
            ReproError("one"), ReproError("two"), ReproError("three"),
        ])
        service = Service(DATASET, plans=[plan], retry_budget=3,
                          backoff_base=0.01, backoff_cap=0.025,
                          sleep=sleeps.append)
        service.submit("Berlino", 2)
        assert sleeps == [0.01, 0.02, 0.025]  # doubling, then capped

    def test_retry_budget_exhausted_falls_through(self):
        always_down = ScriptedPlan("down", failures=[
            ReproError("boom")] * 10)
        solid = ScriptedPlan("solid")
        service = Service(DATASET, plans=[always_down, solid],
                          retry_budget=1, sleep=lambda _: None)
        result = service.submit("Berlino", 2)
        assert result.status == "degraded"
        assert always_down.calls == 2  # first try + one retry

    def test_full_default_ladder_ends_in_candidates(self):
        service = Service(DATASET, shards=2)
        result = service.submit("Berlino", 2,
                                deadline=Budget(0, check_interval=1))
        assert result.status == "candidates"
        assert not result.verified
        assert result.plan == "filter-only"
        # Candidates are a superset of the exact answer.
        exact = {m.string for m in SequentialScanSearcher(
            sorted(set(DATASET))).search("Berlino", 2)}
        assert exact <= {m.string for m in result.matches}

    def test_exhausted_ladder_surfaces_best_partial(self):
        first = ScriptedPlan("a", failures=[
            DeadlineExceeded("expired", partial=(Match("Bern", 2),))])
        second = ScriptedPlan("b", failures=[
            DeadlineExceeded("expired", partial=(
                Match("Bern", 2), Match("Berlin", 1)))])
        service = Service(DATASET, plans=[first, second])
        result = service.submit("Berlino", 2)
        assert result.status == "partial"
        assert result.verified
        assert set(result.matches) == {Match("Bern", 2),
                                       Match("Berlin", 1)}

    def test_allow_partial_false_raises_with_result_attached(self):
        service = Service(DATASET, shards=2)
        with pytest.raises(PartialResultError) as caught:
            service.submit(SearchRequest(
                "Berlino", 2, deadline=Budget(0, check_interval=1),
                options=SearchOptions(allow_partial=False)))
        refused = caught.value.result
        assert refused.status == "candidates"

    def test_backend_hint_promotes_rung(self):
        service = Service(DATASET, shards=2)
        result = service.submit("Berlino", 2, backend="compiled")
        assert result.status == "complete"
        assert result.plan == "compiled"


class TestFilterOnlyPlan:
    def test_superset_and_lower_bound_distances(self):
        from repro.service.sharding import ShardedCorpus

        corpus = ShardedCorpus(DATASET, shards=2)
        outcome = FilterOnlyPlan().run(corpus, "Berlino", 2, None)
        assert not outcome.verified
        exact = SequentialScanSearcher(sorted(set(DATASET))).search(
            "Berlino", 2)
        candidates = {m.string: m.distance for m in outcome.matches}
        for match in exact:
            assert match.string in candidates
            assert candidates[match.string] <= match.distance

    def test_relaxation_widens_the_net(self):
        from repro.service.sharding import ShardedCorpus

        corpus = ShardedCorpus(["ab", "abcd", "abcdef"], shards=1)
        strict = FilterOnlyPlan().run(corpus, "ab", 1, None)
        relaxed = FilterOnlyPlan(relax=3).run(corpus, "ab", 1, None)
        assert {m.string for m in strict.matches} \
            < {m.string for m in relaxed.matches}
