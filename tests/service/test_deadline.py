"""Wall-clock deadlines are honored within tolerance on a slow corpus.

The acceptance bar: a deadline-bounded query over a deliberately slow
synthetic corpus returns *something* (partial, degraded or candidates)
within a small multiple of the requested deadline, instead of running
to completion. Work-unit budgets cover the deterministic side; this
file is the one place that measures actual wall clock, with a generous
(2x + constant) tolerance to stay robust on slow CI machines.
"""

import time

import pytest

from repro.core.deadline import Deadline
from repro.data.dna import generate_reads
from repro.service import Service

# DNA reads at a high threshold: the regime where a single trie descent
# visits most of the index — the paper's hardest workload. The query is
# a full-length read so the length filter cannot shortcut the descent.
READS = generate_reads(400, seed=7)
QUERY = READS[0]
K = 16

#: Requested wall-clock deadline per attempt.
DEADLINE_SECONDS = 0.05

#: The ladder may burn one deadline per rung (three rungs) plus
#: scheduling noise; well under "ran to completion" on this corpus.
TOLERANCE_SECONDS = 3 * DEADLINE_SECONDS * 2 + 0.25


class TestWallClockDeadline:
    def test_bounded_answer_arrives_in_time(self):
        service = Service(READS, shards=4)
        started = time.perf_counter()
        result = service.submit(
            QUERY, K,
            deadline=Deadline(DEADLINE_SECONDS, check_interval=64))
        elapsed = time.perf_counter() - started
        assert elapsed < TOLERANCE_SECONDS
        # Whatever came back is honestly labeled.
        assert result.status in ("complete", "degraded", "partial",
                                 "candidates")
        if result.status == "candidates":
            assert not result.verified
        else:
            assert result.verified

    def test_zero_deadline_still_answers_via_filter_only(self):
        service = Service(READS, shards=2)
        result = service.submit(QUERY, K, deadline=Deadline(0.0))
        assert result.status == "candidates"
        assert result.matches  # length filter admits the read family

    def test_unbounded_submit_is_exact(self):
        service = Service(READS[:100], shards=2)
        result = service.submit(QUERY, 4)
        assert result.status == "complete"
        assert result.verified

    @pytest.mark.parametrize("shards", [1, 4])
    def test_sharding_does_not_change_answers(self, shards):
        service = Service(READS[:120], shards=shards)
        result = service.submit(QUERY, 4)
        reference = Service(READS[:120], shards=2).submit(QUERY, 4)
        assert result.matches == reference.matches
