"""Partial results are verified subsets of the exact answer.

The partial-result contract (docs/SERVICE.md): whatever a
:class:`DeadlineExceeded` carries in ``partial`` was *proven* before
the cutoff — every match is a real ``<= k`` neighbor, so the partial is
a strict subset of the exact answer, never a guess. Checked here for
all four hot paths using deterministic work-unit budgets.
"""

import pytest

from repro.core.deadline import Budget
from repro.core.indexed import IndexedSearcher
from repro.core.result import Match
from repro.core.sequential import SequentialScanSearcher
from repro.exceptions import DeadlineExceeded
from repro.index.batch import FlatIndexSearcher
from repro.scan.searcher import CompiledScanSearcher

# A corpus dense enough that a tiny budget always expires mid-search,
# with several neighbors so partials are usually non-empty.
DATASET = (
    ["Berlin", "Berlyn", "Berlim", "Bern", "Merlin", "Marlin"]
    + [f"pad{i:04d}x" for i in range(400)]
)
QUERY = "Berlino"
K = 2


def exact_answer():
    return set(SequentialScanSearcher(sorted(set(DATASET)))
               .search(QUERY, K))


@pytest.mark.parametrize("make_searcher", [
    lambda: SequentialScanSearcher(DATASET),
    lambda: CompiledScanSearcher(DATASET),
    lambda: IndexedSearcher(DATASET, index="trie"),
    lambda: IndexedSearcher(DATASET, index="compressed"),
    lambda: IndexedSearcher(DATASET, index="flat"),
    lambda: FlatIndexSearcher(DATASET),
], ids=["sequential", "compiled-scan", "object-trie",
        "compressed-trie", "flat-trie", "batch-index"])
class TestPartialSubsetContract:
    def test_partial_is_subset_of_exact(self, make_searcher):
        exact = exact_answer()
        searcher = make_searcher()
        with pytest.raises(DeadlineExceeded) as caught:
            # A one-unit budget polled every unit: expires on the very
            # first check, deterministically, on any machine.
            searcher.search(QUERY, K,
                            deadline=Budget(1, check_interval=1))
        error = caught.value
        partial = set(error.partial)
        assert partial <= exact
        assert all(isinstance(match, Match) for match in partial)
        assert all(match.distance <= K for match in partial)

    def test_error_is_labeled(self, make_searcher):
        searcher = make_searcher()
        with pytest.raises(DeadlineExceeded) as caught:
            searcher.search(QUERY, K,
                            deadline=Budget(1, check_interval=1))
        error = caught.value
        assert error.scope in ("candidates", "nodes", "queries", "shards")
        assert error.completed >= 0
        assert error.total >= 0

    def test_larger_budget_grows_toward_exact(self, make_searcher):
        # Monotonicity: more budget can only add verified matches.
        exact = exact_answer()
        small_partial = set()
        try:
            make_searcher().search(
                QUERY, K, deadline=Budget(64, check_interval=16))
        except DeadlineExceeded as error:
            small_partial = set(error.partial)
        try:
            large = set(make_searcher().search(
                QUERY, K, deadline=Budget(10**9, check_interval=16)))
        except DeadlineExceeded as error:  # pragma: no cover
            large = set(error.partial)
        assert small_partial <= large <= exact


class TestBatchPartials:
    @pytest.mark.parametrize("make_searcher", [
        lambda: CompiledScanSearcher(DATASET),
        lambda: FlatIndexSearcher(DATASET),
    ], ids=["compiled-scan", "batch-index"])
    def test_batch_partial_maps_completed_queries(self, make_searcher):
        searcher = make_searcher()
        queries = [QUERY, "Bern", "Marlin"]
        with pytest.raises(DeadlineExceeded) as caught:
            searcher.search_many(queries, K,
                                 deadline=Budget(1, check_interval=1))
        error = caught.value
        assert error.scope == "queries"
        assert isinstance(error.partial, dict)
        exact = {
            query: tuple(sorted(SequentialScanSearcher(
                sorted(set(DATASET))).search(query, K)))
            for query in queries
        }
        for query, row in error.partial.items():
            assert tuple(row) == exact[query]

    def test_partial_rows_never_cached(self):
        searcher = CompiledScanSearcher(DATASET)
        with pytest.raises(DeadlineExceeded):
            searcher.search(QUERY, K, deadline=Budget(1, check_interval=1))
        # A subsequent unbounded search must re-scan and be exact, not
        # replay a truncated memo row.
        assert set(searcher.search(QUERY, K)) == exact_answer()
