"""Admission control: the bounded queue rejects at capacity."""

import threading

import pytest

from repro.core.result import Match
from repro.exceptions import ServiceOverloaded
from repro.service import PlanResult, Service

DATASET = ["Berlin", "Bern", "Ulm"] * 5


class GatedPlan:
    """Blocks inside run() until released, so tests can hold slots open."""

    name = "gated"

    def __init__(self):
        self.entered = threading.Semaphore(0)
        self.release = threading.Event()

    def run(self, corpus, query, k, deadline):
        self.entered.release()
        assert self.release.wait(timeout=10), "test forgot to release"
        return PlanResult(plan=self.name,
                          matches=(Match("Berlin", 1),), verified=True)


class TestAdmission:
    def test_rejects_beyond_capacity(self):
        plan = GatedPlan()
        service = Service(DATASET, capacity=2, plans=[plan])
        outcomes = []

        def submit():
            try:
                outcomes.append(service.submit("Berlino", 2).status)
            except ServiceOverloaded as error:
                outcomes.append(error)

        holders = [threading.Thread(target=submit) for _ in range(2)]
        for thread in holders:
            thread.start()
        # Both slots taken and blocked inside the plan.
        assert plan.entered.acquire(timeout=10)
        assert plan.entered.acquire(timeout=10)

        with pytest.raises(ServiceOverloaded) as caught:
            service.submit("Berlino", 2)
        assert caught.value.capacity == 2
        assert caught.value.in_flight == 2

        plan.release.set()
        for thread in holders:
            thread.join(timeout=10)
        assert outcomes == ["complete", "complete"]

    def test_slots_recycle_after_completion(self):
        service = Service(DATASET, capacity=1, shards=1)
        # Serial submits never collide: each releases its slot.
        for _ in range(3):
            assert service.submit("Berlino", 2).status == "complete"

    def test_rejection_counted_not_queued(self):
        plan = GatedPlan()
        service = Service(DATASET, capacity=1, plans=[plan])
        holder = threading.Thread(
            target=lambda: service.submit("Berlino", 2))
        holder.start()
        assert plan.entered.acquire(timeout=10)
        with pytest.raises(ServiceOverloaded):
            service.submit("Berlino", 2)
        plan.release.set()
        holder.join(timeout=10)
        counters = service.counters_snapshot()
        assert counters["service.rejected"] == 1
        assert counters["service.submitted"] == 2
        assert counters["service.accepted"] == 1

    def test_bad_capacity_rejected(self):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            Service(DATASET, capacity=0)


class TestRetryAfterHint:
    def test_no_estimate_before_any_completion(self):
        service = Service(DATASET)
        assert service.estimate_retry_after_ms() is None

    def test_estimate_tracks_submit_latency(self):
        service = Service(DATASET, shards=1)
        service.submit("Berlino", 2)
        estimate = service.estimate_retry_after_ms()
        hist = service.hists_snapshot()["service.submit_seconds"]
        assert estimate == pytest.approx(hist.mean() * 1000.0)

    def test_rejection_carries_retry_after_ms(self):
        plan = GatedPlan()
        service = Service(DATASET, capacity=1, plans=[plan])
        # Prime the drain estimate with one completed submit.
        release_early = threading.Thread(target=plan.release.set)
        release_early.start()
        service.submit("Berlino", 2)
        release_early.join()
        plan.release.clear()

        holder = threading.Thread(
            target=lambda: service.submit("Berlino", 2))
        holder.start()
        assert plan.entered.acquire(timeout=10)
        with pytest.raises(ServiceOverloaded) as caught:
            service.submit("Berlino", 2)
        assert caught.value.retry_after_ms is not None
        assert caught.value.retry_after_ms > 0
        assert "retry in ~" in str(caught.value)
        plan.release.set()
        holder.join(timeout=10)

    def test_rejection_without_history_has_no_hint(self):
        plan = GatedPlan()
        service = Service(DATASET, capacity=1, plans=[plan])
        holder = threading.Thread(
            target=lambda: service.submit("Berlino", 2))
        holder.start()
        assert plan.entered.acquire(timeout=10)
        with pytest.raises(ServiceOverloaded) as caught:
            service.submit("Berlino", 2)
        assert caught.value.retry_after_ms is None
        assert "retry in ~" not in str(caught.value)
        plan.release.set()
        holder.join(timeout=10)
