"""ShardedCorpus: partitioned search with deadline-safe merging."""

import pytest

from repro.core.deadline import Budget
from repro.core.result import Match
from repro.core.sequential import SequentialScanSearcher
from repro.exceptions import DeadlineExceeded, ReproError
from repro.service.sharding import ShardedCorpus, merge_matches

DATASET = (
    ["Berlin", "Berlyn", "Bern", "Merlin", "Hamburg", "Bremen"]
    + [f"city{i:03d}" for i in range(150)]
)


class TestPartitioning:
    def test_every_string_lands_in_exactly_one_shard(self):
        corpus = ShardedCorpus(DATASET, shards=4)
        rejoined = sorted(
            string for index in range(corpus.shard_count)
            for string in corpus.shard(index)
        )
        assert rejoined == sorted(DATASET)

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ReproError):
            ShardedCorpus(DATASET, shards=0)

    def test_more_shards_than_strings(self):
        corpus = ShardedCorpus(["a", "b"], shards=5)
        assert corpus.shard_count == 5
        assert [m.string for m in corpus.search("a", 0)] == ["a"]


class TestExactness:
    @pytest.mark.parametrize("plan", ["flat", "compiled", "sequential"])
    @pytest.mark.parametrize("shards", [1, 2, 5])
    def test_matches_unsharded_reference(self, plan, shards):
        reference = set(SequentialScanSearcher(sorted(set(DATASET)))
                        .search("Berlino", 2))
        corpus = ShardedCorpus(DATASET, shards=shards)
        assert set(corpus.search("Berlino", 2, plan=plan)) == reference

    def test_duplicates_across_shards_deduplicated(self):
        # Round-robin splits repeated strings over shards; the merge
        # must still return each string once.
        corpus = ShardedCorpus(["Bern"] * 7, shards=3)
        assert corpus.search("Bern", 0) == (Match("Bern", 0),)

    def test_unknown_plan_rejected(self):
        corpus = ShardedCorpus(DATASET, shards=2)
        with pytest.raises(ReproError):
            corpus.search("Bern", 1, plan="bogus")


class TestDeadlineAcrossShards:
    def test_expiry_keeps_completed_shards(self):
        corpus = ShardedCorpus(DATASET, shards=4)
        exact = set(corpus.search("Berlino", 2))
        # Budget sized so at least one shard completes but not all:
        # each shard scans ~39 strings; poll every unit.
        with pytest.raises(DeadlineExceeded) as caught:
            corpus.search("Berlino", 2, plan="sequential",
                          deadline=Budget(45, check_interval=1))
        error = caught.value
        assert error.scope == "shards"
        assert 0 < error.completed < error.total == 4
        assert set(error.partial) <= exact

    def test_immediate_expiry_yields_empty_partial(self):
        corpus = ShardedCorpus(DATASET, shards=2)
        with pytest.raises(DeadlineExceeded) as caught:
            corpus.search("Berlino", 2, plan="sequential",
                          deadline=Budget(0, check_interval=1))
        assert caught.value.completed == 0


class TestMergeMatches:
    def test_dedups_keeping_min_distance(self):
        merged = merge_matches([
            [Match("a", 2), Match("b", 1)],
            [Match("a", 1)],
        ])
        assert merged == (Match("a", 1), Match("b", 1))

    def test_sorted_output(self):
        merged = merge_matches([[Match("z", 0)], [Match("a", 0)]])
        assert [m.string for m in merged] == ["a", "z"]
