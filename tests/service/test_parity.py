"""Zero-deadline parity: the instrumented paths change nothing.

The refactor's safety net. With ``deadline=None``, every backend must
return byte-identical results through byte-identical code paths — the
deadline hooks reduce to (at most) one falsy branch per work unit, and
the request surface is a pure adapter over the legacy arguments.
"""

import pytest

from repro.core.engine import SearchEngine
from repro.core.indexed import IndexedSearcher
from repro.core.request import SearchRequest
from repro.core.sequential import SequentialScanSearcher
from repro.data.cities import generate_city_names
from repro.data.dna import generate_reads
from repro.data.workload import Workload
from repro.index.batch import FlatIndexSearcher
from repro.scan.searcher import CompiledScanSearcher
from repro.service import Service

CITIES = generate_city_names(300, seed=11)
READS = generate_reads(120, seed=11)


@pytest.mark.parametrize("dataset,query,k", [
    (CITIES, CITIES[3][:-1] + "x", 2),
    (READS, READS[5], 4),
], ids=["cities", "dna"])
class TestBackendParity:
    def test_all_backends_identical_without_deadline(self, dataset,
                                                     query, k):
        reference = sorted(SequentialScanSearcher(sorted(set(dataset)))
                           .search(query, k))
        for searcher in (
            SequentialScanSearcher(dataset),
            CompiledScanSearcher(dataset),
            IndexedSearcher(dataset, index="trie"),
            IndexedSearcher(dataset, index="compressed"),
            IndexedSearcher(dataset, index="flat"),
            FlatIndexSearcher(dataset),
        ):
            assert sorted(searcher.search(query, k)) == reference

    def test_deadline_none_kwarg_is_inert(self, dataset, query, k):
        for searcher in (
            SequentialScanSearcher(dataset),
            CompiledScanSearcher(dataset),
            IndexedSearcher(dataset, index="flat"),
            FlatIndexSearcher(dataset),
        ):
            with_kwarg = searcher.search(query, k, deadline=None)
            plain = searcher.search(query, k)
            assert with_kwarg == plain

    def test_service_matches_engine_without_deadline(self, dataset,
                                                     query, k):
        engine = SearchEngine(dataset)
        service = Service(dataset, shards=3)
        assert sorted(service.submit(query, k).matches) \
            == sorted(engine.search(query, k))


class TestEngineParity:
    def test_request_and_legacy_spellings_identical(self):
        engine = SearchEngine(CITIES)
        query = CITIES[0]
        assert engine.search(query, 1) \
            == engine.search(SearchRequest(query, 1))

    def test_workload_and_request_identical(self):
        engine = SearchEngine(CITIES)
        workload = Workload(tuple(CITIES[:20]), 1)
        assert engine.run_workload(workload) \
            == engine.run_workload(SearchRequest.from_workload(workload))
