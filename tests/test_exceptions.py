"""Unit tests for the exception hierarchy."""

import pytest

from repro.exceptions import (
    AlphabetError,
    DatasetFormatError,
    DeadlineExceeded,
    ExperimentError,
    IndexConstructionError,
    InvalidThresholdError,
    ParallelismError,
    PartialResultError,
    ReproError,
    ServiceOverloaded,
    VerificationError,
)


class TestHierarchy:
    @pytest.mark.parametrize("error_type", [
        AlphabetError, DatasetFormatError, ExperimentError,
        IndexConstructionError, InvalidThresholdError, ParallelismError,
        VerificationError, DeadlineExceeded, ServiceOverloaded,
        PartialResultError,
    ])
    def test_all_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)

    def test_value_error_compatibility(self):
        # Threshold/alphabet/format errors double as ValueError so
        # generic callers can catch them idiomatically.
        assert issubclass(InvalidThresholdError, ValueError)
        assert issubclass(AlphabetError, ValueError)
        assert issubclass(DatasetFormatError, ValueError)


class TestInvalidThresholdError:
    def test_message_carries_value(self):
        error = InvalidThresholdError(-3)
        assert "-3" in str(error)
        assert error.k == -3


class TestDatasetFormatError:
    def test_location_formatting(self):
        error = DatasetFormatError("bad line", path="data.txt",
                                   line_number=7)
        assert "data.txt" in str(error)
        assert "line 7" in str(error)
        assert error.line_number == 7

    def test_path_only(self):
        error = DatasetFormatError("empty", path="data.txt")
        assert "data.txt" in str(error)
        assert error.line_number is None

    def test_bare_message(self):
        assert str(DatasetFormatError("oops")) == "oops"


class TestVerificationError:
    def test_carries_diff_sets(self):
        error = VerificationError("differs", missing=frozenset({"a"}),
                                  spurious=frozenset({"b"}))
        assert error.missing == {"a"}
        assert error.spurious == {"b"}

    def test_defaults_are_empty(self):
        error = VerificationError("differs")
        assert error.missing == frozenset()
        assert error.spurious == frozenset()


class TestDeadlineExceeded:
    def test_carries_partial_contract(self):
        error = DeadlineExceeded("out of time", partial=("a", "b"),
                                 scope="candidates", completed=512,
                                 total=2048)
        assert error.partial == ("a", "b")
        assert error.scope == "candidates"
        assert error.completed == 512
        assert error.total == 2048

    def test_defaults(self):
        error = DeadlineExceeded("out of time")
        assert error.partial == ()
        assert error.scope == "candidates"
        assert error.completed == 0
        assert error.total == 0


class TestServiceOverloaded:
    def test_carries_capacity(self):
        error = ServiceOverloaded("full", capacity=8, in_flight=8)
        assert error.capacity == 8
        assert error.in_flight == 8


class TestPartialResultError:
    def test_carries_refused_result(self):
        refused = object()
        error = PartialResultError("partial refused", result=refused)
        assert error.result is refused
