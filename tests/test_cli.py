"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.data.io import read_result_file, write_strings


@pytest.fixture()
def city_files(tmp_path):
    data = tmp_path / "cities.txt"
    queries = tmp_path / "queries.txt"
    write_strings(data, ["Berlin", "Bern", "Ulm", "Hamburg"])
    write_strings(queries, ["Bern", "Hamburk", "zzz"])
    return data, queries


class TestSearchCommand:
    def test_writes_result_file(self, city_files, tmp_path, capsys):
        data, queries = city_files
        output = tmp_path / "results.txt"
        exit_code = main([
            "search", str(data), str(queries), "-k", "1",
            "-o", str(output),
        ])
        assert exit_code == 0
        rows = read_result_file(output)
        assert rows[0] == ("Bern", ["Bern"])
        assert rows[1] == ("Hamburk", ["Hamburg"])
        assert rows[2] == ("zzz", [])

    def test_stdout_mode(self, city_files, capsys):
        data, queries = city_files
        assert main(["search", str(data), str(queries), "-k", "0"]) == 0
        captured = capsys.readouterr()
        assert "Bern\tBern" in captured.out
        assert "backend:" in captured.err

    def test_forced_backend(self, city_files, capsys):
        data, queries = city_files
        main(["search", str(data), str(queries), "-k", "1",
              "--backend", "indexed"])
        assert "indexed" in capsys.readouterr().err

    def test_thread_runner(self, city_files, tmp_path):
        data, queries = city_files
        output = tmp_path / "results.txt"
        assert main([
            "search", str(data), str(queries), "-k", "1",
            "-o", str(output), "--runner", "threads:2",
        ]) == 0
        assert read_result_file(output)[0] == ("Bern", ["Bern"])

    def test_batch_mode_identical_results(self, city_files, tmp_path):
        data, queries = city_files
        plain = tmp_path / "plain.txt"
        batched = tmp_path / "batched.txt"
        assert main(["search", str(data), str(queries), "-k", "1",
                     "-o", str(plain)]) == 0
        assert main(["search", str(data), str(queries), "-k", "1",
                     "-o", str(batched), "--batch"]) == 0
        assert plain.read_text() == batched.read_text()

    def test_batch_mode_reports_dedup_stats(self, city_files, tmp_path,
                                            capsys):
        data, _ = city_files
        queries = tmp_path / "repeats.txt"
        write_strings(queries, ["Bern", "Bern", "Bern", "Ulm"])
        assert main(["search", str(data), str(queries), "-k", "1",
                     "--batch"]) == 0
        err = capsys.readouterr().err
        assert "batch: 2 unique of 4 queries" in err

    def test_compiled_backend(self, city_files, capsys):
        data, queries = city_files
        assert main(["search", str(data), str(queries), "-k", "1",
                     "--backend", "compiled"]) == 0
        assert "compiled" in capsys.readouterr().err

    def test_bad_runner_spec_is_an_error(self, city_files, capsys):
        data, queries = city_files
        assert main(["search", str(data), str(queries), "-k", "1",
                     "--runner", "gpu"]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.txt"
        with pytest.raises(FileNotFoundError):
            main(["search", str(missing), str(missing), "-k", "1"])

    def test_save_segment_then_segment_round_trip(self, city_files,
                                                  tmp_path, capsys):
        data, queries = city_files
        segment = tmp_path / "corpus.seg"
        first = tmp_path / "first.txt"
        second = tmp_path / "second.txt"
        assert main(["search", str(data), str(queries), "-k", "1",
                     "-o", str(first),
                     "--save-segment", str(segment)]) == 0
        assert segment.exists()
        assert "segment: compiled corpus saved" in \
            capsys.readouterr().err
        assert main(["search", str(data), str(queries), "-k", "1",
                     "-o", str(second), "--segment", str(segment)]) == 0
        assert "segment-backed corpus" in capsys.readouterr().err
        assert first.read_text() == second.read_text()

    def test_segment_builds_the_file_when_missing(self, city_files,
                                                  tmp_path):
        data, queries = city_files
        segment = tmp_path / "fresh.seg"
        assert main(["search", str(data), str(queries), "-k", "1",
                     "--segment", str(segment),
                     "-o", str(tmp_path / "out.txt")]) == 0
        assert segment.exists()

    def test_segment_conflicts_are_errors(self, city_files, tmp_path,
                                          capsys):
        data, queries = city_files
        segment = tmp_path / "corpus.seg"
        assert main(["search", str(data), str(queries), "-k", "1",
                     "--segment", str(segment),
                     "--backend", "indexed"]) == 2
        assert "--segment" in capsys.readouterr().err
        assert main(["search", str(data), str(queries), "-k", "1",
                     "--segment", str(segment), "--service"]) == 2
        assert "engine path" in capsys.readouterr().err


class TestObservabilityFlags:
    def test_slowlog_prints_slowest_queries_with_stages(
            self, city_files, capsys):
        data, queries = city_files
        assert main(["search", str(data), str(queries), "-k", "1",
                     "--slowlog", "2"]) == 0
        err = capsys.readouterr().err
        assert "slowlog: top 2 of 3 queries" in err
        assert "stage scan.search:" in err
        assert "scan.candidates = " in err

    def test_slowlog_on_the_compiled_backend(self, city_files, capsys):
        data, queries = city_files
        assert main(["search", str(data), str(queries), "-k", "1",
                     "--backend", "compiled", "--slowlog", "1"]) == 0
        err = capsys.readouterr().err
        assert "backend=compiled-scan" in err
        assert "stage scan.query:" in err

    def test_slowlog_on_the_service_path(self, city_files, capsys):
        data, queries = city_files
        assert main(["search", str(data), str(queries), "-k", "1",
                     "--service", "--slowlog", "3"]) == 0
        err = capsys.readouterr().err
        assert "slowlog:" in err
        assert "backend=service[ladder]" in err

    def test_slowlog_must_be_positive(self, city_files, capsys):
        data, queries = city_files
        assert main(["search", str(data), str(queries), "-k", "1",
                     "--slowlog", "0"]) == 2
        assert "slowlog" in capsys.readouterr().err

    def test_trace_out_writes_valid_trace_event_json(
            self, city_files, tmp_path, capsys):
        import json

        data, queries = city_files
        trace = tmp_path / "trace.json"
        assert main(["search", str(data), str(queries), "-k", "1",
                     "--trace-out", str(trace)]) == 0
        assert "spans written" in capsys.readouterr().err
        document = json.loads(trace.read_text(encoding="utf-8"))
        spans = [event for event in document["traceEvents"]
                 if event.get("ph") == "X"]
        assert spans, document
        assert any(event["name"].startswith("engine.")
                   for event in spans)

    def test_trace_out_on_the_service_path(self, city_files, tmp_path):
        import json

        data, queries = city_files
        trace = tmp_path / "svc.json"
        assert main(["search", str(data), str(queries), "-k", "1",
                     "--service", "--trace-out", str(trace)]) == 0
        document = json.loads(trace.read_text(encoding="utf-8"))
        assert any(event.get("ph") == "X"
                   for event in document["traceEvents"])

    def test_flags_compose_with_stats_and_results_stay_identical(
            self, city_files, tmp_path, capsys):
        data, queries = city_files
        plain = tmp_path / "plain.txt"
        observed = tmp_path / "observed.txt"
        trace = tmp_path / "trace.json"
        assert main(["search", str(data), str(queries), "-k", "1",
                     "-o", str(plain)]) == 0
        assert main(["search", str(data), str(queries), "-k", "1",
                     "-o", str(observed), "--stats", "--slowlog", "2",
                     "--trace-out", str(trace)]) == 0
        assert plain.read_text() == observed.read_text()


class TestGenerateCommand:
    def test_generate_cities(self, tmp_path):
        output = tmp_path / "cities.txt"
        assert main(["generate", "cities", "-n", "25",
                     "-o", str(output)]) == 0
        from repro.data.io import read_strings

        assert len(read_strings(output)) == 25

    def test_generate_dna(self, tmp_path):
        output = tmp_path / "reads.txt"
        assert main(["generate", "dna", "-n", "10",
                     "-o", str(output)]) == 0
        from repro.data.io import read_strings

        reads = read_strings(output)
        assert len(reads) == 10
        assert set("".join(reads)) <= set("ACGNT")

    def test_seed_reproducibility(self, tmp_path):
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        main(["generate", "cities", "-n", "10", "-o", str(a),
              "--seed", "42"])
        main(["generate", "cities", "-n", "10", "-o", str(b),
              "--seed", "42"])
        assert a.read_text() == b.read_text()


class TestStatsCommand:
    def test_reports_table_one_properties(self, city_files, capsys):
        data, _ = city_files
        assert main(["stats", str(data)]) == 0
        out = capsys.readouterr().out
        assert "strings:" in out
        assert "alphabet size:" in out
        assert "length:" in out


class TestDistanceCommand:
    def test_plain_distance(self, capsys):
        assert main(["distance", "AGGCGT", "AGAGT"]) == 0
        assert capsys.readouterr().out.strip() == "2"

    def test_matrix_mode_prints_figure_one(self, capsys):
        assert main(["distance", "AGGCGT", "AGAGT", "--matrix"]) == 0
        out = capsys.readouterr().out
        assert "edit distance: 2" in out
        assert "A" in out and "G" in out


class TestSuggestCommand:
    def test_ranked_suggestions(self, city_files, capsys):
        data, _ = city_files
        assert main(["suggest", str(data), "Hamburk", "-n", "2"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0] == "Hamburg\t1"
        assert len(lines) == 2

    def test_count_larger_than_dataset(self, city_files, capsys):
        data, _ = city_files
        assert main(["suggest", str(data), "Bern", "-n", "99"]) == 0
        assert len(capsys.readouterr().out.splitlines()) == 4


class TestCompleteCommand:
    def test_prefix_completion(self, city_files, capsys):
        data, _ = city_files
        assert main(["complete", str(data), "Ber", "-k", "0"]) == 0
        out = capsys.readouterr().out
        assert "Berlin\t0" in out
        assert "Bern\t0" in out
        assert "Hamburg" not in out

    def test_typo_in_prefix(self, city_files, capsys):
        data, _ = city_files
        assert main(["complete", str(data), "Bwr", "-k", "1",
                     "-n", "5"]) == 0
        out = capsys.readouterr().out
        assert "Berlin\t1" in out


class TestJoinCommand:
    def test_two_sided_join(self, city_files, tmp_path, capsys):
        data, queries = city_files
        output = tmp_path / "pairs.txt"
        assert main(["join", str(queries), str(data), "-k", "1",
                     "-o", str(output)]) == 0
        lines = output.read_text().splitlines()
        assert "Bern\tBern\t0" in lines
        assert "Hamburk\tHamburg\t1" in lines
        assert "pairs" in capsys.readouterr().err

    def test_self_join_to_stdout(self, tmp_path, capsys):
        data = tmp_path / "dup.txt"
        write_strings(data, ["Bern", "Berne", "Ulm"])
        assert main(["join", str(data), "-k", "1"]) == 0
        out = capsys.readouterr().out
        assert "Bern\tBerne\t1" in out
        assert "Ulm" not in out

    def test_forced_method(self, city_files, capsys):
        data, queries = city_files
        for method in ("scan", "index"):
            assert main(["join", str(queries), str(data), "-k", "1",
                         "--method", method]) == 0


class TestExplainCommand:
    def test_traces_the_layers(self, capsys):
        assert main(["explain", "Bern", "Berlin", "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "MATCH" in out
        assert "length filter" in out
        assert "kernel dispatch" in out

    def test_no_match_verdict(self, capsys):
        assert main(["explain", "aaaa", "zzzz", "-k", "1"]) == 0
        assert "NO MATCH" in capsys.readouterr().out

    def test_query_plan_mode(self, city_files, capsys):
        data, _ = city_files
        assert main(["explain", "Berlino", "-k", "2",
                     "--data", str(data)]) == 0
        out = capsys.readouterr().out
        assert "QueryPlan" in out
        for strategy in ("sequential", "compiled", "indexed", "qgram"):
            assert strategy in out

    def test_query_plan_json(self, city_files, capsys):
        import json

        data, _ = city_files
        assert main(["explain", "Berlino", "-k", "2",
                     "--data", str(data),
                     "--stats-format", "json"]) == 0
        plan = json.loads(capsys.readouterr().out)
        from repro.core.planner import validate_plan

        assert validate_plan(plan) == []
        assert plan["k"] == 2

    def test_query_plan_mode_without_data_is_an_error(self, capsys):
        assert main(["explain", "Berlino", "-k", "2"]) == 2
        assert "--data" in capsys.readouterr().err


class TestSearchExplainFlag:
    def test_explain_skips_execution(self, city_files, tmp_path,
                                     capsys):
        data, queries = city_files
        out_file = tmp_path / "results.txt"
        assert main(["search", str(data), str(queries), "-k", "1",
                     "--explain", "-o", str(out_file)]) == 0
        # The plan went to the output target; no query ran.
        assert "QueryPlan" in out_file.read_text()
        assert "queries in" not in capsys.readouterr().err

    def test_explain_json(self, city_files, capsys):
        import json

        data, queries = city_files
        assert main(["search", str(data), str(queries), "-k", "1",
                     "--explain", "--batch",
                     "--stats-format", "json"]) == 0
        plan = json.loads(capsys.readouterr().out)
        assert plan["strategy"] in ("compiled", "indexed")
        assert plan["queries"] == 3


class TestBenchCommand:
    def test_unknown_experiment_is_an_error(self, capsys):
        assert main(["bench", "table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestLiveCommand:
    @pytest.fixture()
    def ops_file(self, tmp_path):
        path = tmp_path / "ops.txt"
        path.write_text(
            "# seed, query, mutate, re-query\n"
            "+Berlin\n"
            "+Bern\n"
            "+Ulm\n"
            "?Berlino\n"
            "-Ulm\n"
            "?Ulm\n"
            "\n"
            "+Ulm\n"
            "?Ulm\n"
        )
        return path

    def test_replays_the_script(self, ops_file, capsys):
        assert main(["live", str(ops_file), "-k", "2"]) == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines() == [
            "Berlino\tBerlin", "Ulm", "Ulm\tUlm",
        ]
        assert "4 inserts, 1 deletes, 3 searches" in captured.err

    def test_data_seeds_the_corpus(self, tmp_path, capsys):
        data = tmp_path / "cities.txt"
        write_strings(data, ["Berlin", "Bern"])
        ops = tmp_path / "ops.txt"
        ops.write_text("?Berlino\n")
        assert main(["live", str(ops), "-k", "2",
                     "--data", str(data)]) == 0
        assert capsys.readouterr().out.splitlines() \
            == ["Berlino\tBerlin"]

    def test_scripts_compose_across_runs(self, tmp_path, capsys):
        directory = str(tmp_path / "segments")
        first = tmp_path / "first.txt"
        first.write_text("+Berlin\n+Bern\n")
        second = tmp_path / "second.txt"
        second.write_text("-Bern\n?Berlino\n")
        assert main(["live", str(first), "-k", "2",
                     "--segment-dir", directory]) == 0
        capsys.readouterr()
        assert main(["live", str(second), "-k", "2",
                     "--segment-dir", directory]) == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines() == ["Berlino\tBerlin"]

    def test_compact_folds_segments(self, tmp_path, capsys):
        ops = tmp_path / "ops.txt"
        ops.write_text("+aa\n+ab\n+ba\n+bb\n")
        assert main(["live", str(ops), "-k", "0",
                     "--flush-threshold", "2", "--compact"]) == 0
        assert "1 segments" in capsys.readouterr().err

    def test_reopen_conflicts_with_data(self, tmp_path, capsys):
        directory = str(tmp_path / "segments")
        data = tmp_path / "cities.txt"
        write_strings(data, ["Berlin"])
        ops = tmp_path / "ops.txt"
        ops.write_text("?Berlin\n")
        assert main(["live", str(ops), "-k", "0",
                     "--segment-dir", directory]) == 0
        capsys.readouterr()
        assert main(["live", str(ops), "-k", "0",
                     "--segment-dir", directory,
                     "--data", str(data)]) == 2
        assert "conflicts" in capsys.readouterr().err

    def test_unknown_operation_is_an_error(self, tmp_path, capsys):
        ops = tmp_path / "ops.txt"
        ops.write_text("!Berlin\n")
        assert main(["live", str(ops), "-k", "0"]) == 2
        assert "unknown operation" in capsys.readouterr().err
