"""End-to-end integration tests: the competition workflow.

These tests run the full pipeline the paper describes in section 3.1 —
read a data file, read a query file, compute all results, write a
result file — through both solutions and every execution strategy, and
assert byte-identical outputs.
"""

import pytest

from repro.core.engine import SearchEngine
from repro.core.indexed import IndexedSearcher
from repro.core.pipeline import Approach, ApproachPipeline
from repro.core.sequential import SequentialScanSearcher
from repro.core.stages import index_stage_ladder, sequential_stage_ladder
from repro.core.verification import verify_result_sets
from repro.data.io import (
    read_queries,
    read_result_file,
    read_strings,
    write_result_file,
    write_strings,
)
from repro.data.workload import Workload
from repro.parallel.adaptive import AdaptiveManager, ManagerRules
from repro.parallel.executor import SerialRunner, ThreadPoolRunner


@pytest.fixture()
def competition_files(tmp_path, city_names, city_workload):
    data_path = tmp_path / "data.txt"
    query_path = tmp_path / "queries.txt"
    write_strings(data_path, city_names)
    write_strings(query_path, city_workload.queries)
    return data_path, query_path


class TestCompetitionWorkflow:
    def test_file_to_file_roundtrip(self, competition_files, tmp_path,
                                    city_workload):
        data_path, query_path = competition_files
        dataset = read_strings(data_path)
        queries = read_queries(query_path)
        engine = SearchEngine(dataset)
        workload = Workload(tuple(queries), city_workload.k, "e2e")
        results = engine.run_workload(workload)

        result_path = tmp_path / "results.txt"
        write_result_file(
            result_path, list(results.queries),
            [list(results.strings_for(i)) for i in range(len(results))],
        )
        rows = read_result_file(result_path)
        assert len(rows) == len(queries)
        for (query, matches), index in zip(rows, range(len(rows))):
            assert query == queries[index]
            assert tuple(matches) == results.strings_for(index)

    def test_both_solutions_write_identical_result_files(
            self, competition_files, tmp_path, city_workload):
        data_path, query_path = competition_files
        dataset = read_strings(data_path)
        queries = tuple(read_queries(query_path))
        workload = Workload(queries, city_workload.k, "e2e")

        paths = []
        for name, searcher in (
            ("seq", SequentialScanSearcher(dataset)),
            ("idx", IndexedSearcher(dataset, index="compressed")),
        ):
            results = searcher.run_workload(workload)
            path = tmp_path / f"{name}.txt"
            write_result_file(
                path, list(queries),
                [list(results.strings_for(i)) for i in range(len(results))],
            )
            paths.append(path)
        assert paths[0].read_text() == paths[1].read_text()


class TestStrategyInvariance:
    def test_every_runner_yields_identical_results(self, city_names,
                                                   city_workload):
        searcher = SequentialScanSearcher(city_names)
        reference = searcher.run_workload(city_workload, SerialRunner())
        for runner in (
            ThreadPoolRunner(threads=2),
            ThreadPoolRunner(threads=8),
            AdaptiveManager(ManagerRules(min_threads=2, max_threads=4,
                                         sample_interval=0.005)),
        ):
            candidate = searcher.run_workload(city_workload, runner)
            verify_result_sets(reference, candidate,
                               candidate_name=runner.name)


class TestFullLadders:
    def test_sequential_ladder_on_dna(self, dna_reads, dna_workload):
        ladder = sequential_stage_ladder(dna_reads, pool_threads=2)
        pipeline = ApproachPipeline(ladder[0], dna_workload.take(3))
        outcomes = pipeline.run(ladder[1:])
        assert all(o.correct for o in outcomes), [
            (o.name, o.error) for o in outcomes if not o.correct
        ]

    def test_index_ladder_on_dna(self, dna_reads, dna_workload):
        reference = Approach(
            "reference",
            lambda: SequentialScanSearcher(dna_reads, kernel="reference"),
        )
        pipeline = ApproachPipeline(reference, dna_workload.take(3))
        outcomes = pipeline.run(index_stage_ladder(dna_reads,
                                                   pool_threads=2))
        assert all(o.correct for o in outcomes)

    def test_city_thresholds_table_one(self, city_names):
        # Every threshold of Table I works end to end on city names.
        searcher = SearchEngine(city_names)
        reference = SequentialScanSearcher(city_names, kernel="reference")
        query = city_names[7]
        for k in (0, 1, 2, 3):
            expected = [m.string for m in reference.search(query, k)]
            actual = [m.string for m in searcher.search(query, k)]
            assert actual == expected

    def test_dna_thresholds_table_one(self, dna_reads):
        searcher = SearchEngine(dna_reads)
        reference = SequentialScanSearcher(dna_reads, kernel="reference")
        query = dna_reads[3]
        for k in (0, 4, 8, 16):
            expected = [m.string for m in reference.search(query, k)]
            actual = [m.string for m in searcher.search(query, k)]
            assert actual == expected, k


class TestAdversarialInputs:
    def test_unicode_queries_against_city_index(self, city_names):
        searcher = IndexedSearcher(city_names, index="compressed")
        for query in ("北京市", "Владивосток", "Ωmega", "a" * 64):
            matches = searcher.search(query, 2)
            assert isinstance(matches, list)

    def test_very_large_threshold(self):
        dataset = ["a", "bb", "ccc"]
        seq = SequentialScanSearcher(dataset)
        idx = IndexedSearcher(dataset, index="trie")
        assert [m.string for m in seq.search("x", 100)] == \
            [m.string for m in idx.search("x", 100)] == dataset

    def test_single_string_dataset(self):
        for backend in ("sequential", "indexed"):
            engine = SearchEngine(["lonely"], backend=backend)
            assert [m.string for m in engine.search("lonely", 0)] == \
                ["lonely"]
