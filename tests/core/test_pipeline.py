"""Unit tests for the accept/reject approach pipeline."""

import time

import pytest

from repro.core.pipeline import Approach, ApproachPipeline, StageOutcome
from repro.core.result import Match
from repro.core.searcher import Searcher
from repro.core.sequential import SequentialScanSearcher
from repro.data.workload import Workload

DATASET = ("Berlin", "Bern", "Ulm", "Hamburg")
WORKLOAD = Workload(("Bern", "Ulm", "Hamburg", "Berlim"), 1, "unit")


def reference_approach() -> Approach:
    return Approach(
        "base", lambda: SequentialScanSearcher(DATASET, kernel="reference")
    )


class _WrongSearcher(Searcher):
    """Returns an extra bogus match for every query."""

    name = "wrong"

    def search(self, query, k):
        real = SequentialScanSearcher(DATASET).search(query, k)
        return real + [Match("zzz-bogus", 0)]


class _SlowSearcher(Searcher):
    """Correct but artificially slower than anything else."""

    name = "slow"

    def search(self, query, k):
        time.sleep(0.01)
        return SequentialScanSearcher(DATASET).search(query, k)


class TestApproachPipeline:
    def test_reference_is_measured_once(self):
        pipeline = ApproachPipeline(reference_approach(), WORKLOAD)
        assert pipeline.reference_seconds > 0
        assert len(pipeline.reference_results) == len(WORKLOAD)

    def test_correct_faster_approach_accepted(self):
        pipeline = ApproachPipeline(reference_approach(), WORKLOAD)
        outcome = pipeline.evaluate(Approach(
            "banded",
            lambda: SequentialScanSearcher(DATASET, kernel="banded"),
        ))
        assert outcome.correct
        assert outcome.accepted
        assert pipeline.best[0] == "banded"

    def test_wrong_approach_rejected_with_reason(self):
        pipeline = ApproachPipeline(reference_approach(), WORKLOAD)
        outcome = pipeline.evaluate(Approach("wrong",
                                             lambda: _WrongSearcher()))
        assert not outcome.correct
        assert not outcome.accepted
        assert outcome.error is not None
        assert "zzz-bogus" in outcome.error

    def test_slower_approach_rejected_but_correct(self):
        pipeline = ApproachPipeline(reference_approach(), WORKLOAD)
        fast = pipeline.evaluate(Approach(
            "fast",
            lambda: SequentialScanSearcher(DATASET, kernel="bitparallel"),
        ))
        slow = pipeline.evaluate(Approach("slow",
                                          lambda: _SlowSearcher()))
        assert fast.accepted
        assert slow.correct
        assert not slow.accepted
        assert pipeline.best[0] == "fast"

    def test_wrong_approach_never_becomes_baseline(self):
        pipeline = ApproachPipeline(reference_approach(), WORKLOAD)
        pipeline.evaluate(Approach("wrong", lambda: _WrongSearcher()))
        assert pipeline.best[0] == "base"

    def test_run_preserves_order(self):
        pipeline = ApproachPipeline(reference_approach(), WORKLOAD)
        outcomes = pipeline.run([
            Approach("a", lambda: SequentialScanSearcher(DATASET)),
            Approach("b", lambda: _WrongSearcher()),
        ])
        assert [o.name for o in outcomes] == ["a", "b"]

    def test_build_failure_is_reported_not_raised(self):
        from repro.exceptions import ReproError

        def broken_build():
            raise ReproError("cannot build")

        pipeline = ApproachPipeline(reference_approach(), WORKLOAD)
        outcome = pipeline.evaluate(Approach("broken", broken_build))
        assert not outcome.correct
        assert outcome.error == "cannot build"

    def test_report_contains_all_rows(self):
        pipeline = ApproachPipeline(reference_approach(), WORKLOAD)
        outcomes = pipeline.run([
            Approach("banded",
                     lambda: SequentialScanSearcher(DATASET,
                                                    kernel="banded")),
        ])
        report = pipeline.report(outcomes)
        assert "base" in report
        assert "banded" in report
        assert "best:" in report


class TestStageOutcome:
    def test_table_row_states_status(self):
        accepted = StageOutcome("x", 1.0, correct=True, accepted=True)
        slower = StageOutcome("y", 2.0, correct=True, accepted=False)
        wrong = StageOutcome("z", 0.1, correct=False, accepted=False)
        assert "accepted" in accepted.table_row()
        assert "slower" in slower.table_row()
        assert "WRONG" in wrong.table_row()
