"""Property tests: join strategies agree with each other and brute force."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.join import deduplicate, index_join, scan_join
from repro.distance.levenshtein import edit_distance

datasets = st.lists(
    st.text(alphabet="abc", min_size=1, max_size=6),
    min_size=0, max_size=10,
)
thresholds = st.integers(min_value=0, max_value=2)


def brute_pairs(left, right, k, self_join):
    pairs = []
    for i, r in enumerate(left):
        for j, s in enumerate(right):
            if self_join and j <= i:
                continue
            d = edit_distance(r, s)
            if d <= k:
                pairs.append((i, j, d))
    return sorted(pairs)


def as_tuples(result):
    return [(p.left_index, p.right_index, p.distance)
            for p in result.pairs]


@settings(max_examples=60)
@given(datasets, datasets, thresholds)
def test_scan_join_equals_brute_force(left, right, k):
    assert as_tuples(scan_join(left, right, k)) == \
        brute_pairs(left, right, k, self_join=False)


@settings(max_examples=60)
@given(datasets, thresholds)
def test_self_scan_join_equals_brute_force(data, k):
    assert as_tuples(scan_join(data, None, k)) == \
        brute_pairs(data, data, k, self_join=True)


@settings(max_examples=40)
@given(datasets, datasets, thresholds)
def test_index_join_equals_scan_join(left, right, k):
    assert as_tuples(index_join(left, right, k)) == \
        as_tuples(scan_join(left, right, k))


@settings(max_examples=40)
@given(datasets, datasets, thresholds)
def test_prefix_join_equals_scan_join(left, right, k):
    from repro.core.join import prefix_join

    assert as_tuples(prefix_join(left, right, k)) == \
        as_tuples(scan_join(left, right, k))


@settings(max_examples=30)
@given(datasets, thresholds)
def test_prefix_self_join_equals_scan(data, k):
    from repro.core.join import prefix_join

    assert as_tuples(prefix_join(data, None, k)) == \
        as_tuples(scan_join(data, None, k))


@settings(max_examples=40)
@given(datasets, thresholds)
def test_dedup_groups_are_consistent(data, k):
    groups = deduplicate(data, k)
    seen = set()
    for group in groups:
        assert len(group) > 1
        assert group == sorted(group)
        for index in group:
            assert index not in seen  # groups are disjoint
            seen.add(index)
        # Every member is within k of at least one other member
        # (single-linkage guarantee).
        for index in group:
            assert any(
                edit_distance(data[index], data[other]) <= k
                for other in group if other != index
            )
