"""Unit tests for the problem statement."""

import pytest

from repro.core.problem import SimilaritySearchProblem
from repro.exceptions import InvalidThresholdError, ReproError


class TestSimilaritySearchProblem:
    def test_dataset_is_normalized_to_tuple(self):
        problem = SimilaritySearchProblem(["b", "a"])
        assert problem.dataset == ("b", "a")
        assert problem.size == 2

    def test_duplicates_are_preserved(self):
        problem = SimilaritySearchProblem(["x", "x"])
        assert problem.size == 2

    def test_empty_string_rejected(self):
        with pytest.raises(ReproError):
            SimilaritySearchProblem(["ok", ""])

    def test_max_length(self):
        assert SimilaritySearchProblem(["ab", "abcde"]).max_length == 5
        assert SimilaritySearchProblem([]).max_length == 0

    def test_brute_force_equation_one(self):
        # Equation (1): x in X and ed(q, x) <= k.
        problem = SimilaritySearchProblem(
            ["Berlin", "Bern", "Ulm", "Bremen"]
        )
        assert problem.solve_brute_force("Bern", 0) == ["Bern"]
        assert problem.solve_brute_force("Bern", 2) == ["Berlin", "Bern"]
        assert problem.solve_brute_force("zzz", 1) == []

    def test_brute_force_deduplicates(self):
        problem = SimilaritySearchProblem(["Ulm", "Ulm"])
        assert problem.solve_brute_force("Ulm", 0) == ["Ulm"]

    def test_brute_force_rejects_bad_threshold(self):
        problem = SimilaritySearchProblem(["a"])
        with pytest.raises(InvalidThresholdError):
            problem.solve_brute_force("a", -1)

    def test_name_label(self):
        assert SimilaritySearchProblem(["a"], "cities").name == "cities"
