"""Unit tests for the index-based searcher."""

import pytest

from repro.core.indexed import INDEX_KINDS, IndexedSearcher
from repro.distance.levenshtein import edit_distance
from repro.exceptions import ReproError

DATASET = ["Berlin", "Bern", "Ulm", "Hamburg", "Bremen", "Bern"]


def brute_force(query, k):
    return sorted({s for s in DATASET if edit_distance(query, s) <= k})


class TestIndexKinds:
    @pytest.mark.parametrize("kind", INDEX_KINDS)
    def test_every_index_equals_brute_force(self, kind):
        searcher = IndexedSearcher(DATASET, index=kind)
        for query in ("Bern", "Berlln", "Ul", "zzz"):
            for k in (0, 1, 2, 3):
                actual = [m.string for m in searcher.search(query, k)]
                assert actual == brute_force(query, k), (kind, query, k)

    def test_unknown_index_rejected(self):
        with pytest.raises(ReproError):
            IndexedSearcher(DATASET, index="btree")

    def test_node_count_shrinks_under_compression(self):
        plain = IndexedSearcher(DATASET, index="trie")
        compressed = IndexedSearcher(DATASET, index="compressed")
        assert 0 < compressed.node_count < plain.node_count

    def test_qgram_has_no_trie_nodes(self):
        assert IndexedSearcher(DATASET, index="qgram").node_count == 0

    def test_kind_property(self):
        assert IndexedSearcher(DATASET, index="trie").kind == "trie"


class TestFrequencyPruning:
    def test_results_unchanged(self):
        plain = IndexedSearcher(DATASET, index="compressed")
        pruned = IndexedSearcher(DATASET, index="compressed",
                                 frequency_pruning=True,
                                 tracked_symbols="AEIOU")
        for query in ("Bern", "Bremen", "Ulm", "xxxx"):
            for k in (0, 1, 2):
                assert plain.search(query, k) == pruned.search(query, k)

    def test_requires_tracked_symbols(self):
        with pytest.raises(ReproError):
            IndexedSearcher(DATASET, index="trie", frequency_pruning=True)

    def test_incompatible_with_qgram(self):
        with pytest.raises(ReproError):
            IndexedSearcher(DATASET, index="qgram",
                            frequency_pruning=True,
                            tracked_symbols="AEIOU")

    def test_name_reflects_configuration(self):
        searcher = IndexedSearcher(DATASET, index="trie",
                                   frequency_pruning=True,
                                   tracked_symbols="AEIOU")
        assert "freq" in searcher.name


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestTraversalStats:
    # ``last_stats`` is a deprecated shim now (the SearchReport API
    # replaces it); these tests keep asserting the shim still returns
    # the correct per-search numbers. The deprecation itself is
    # asserted in test_last_stats_warns below.
    def test_stats_available_after_trie_search(self):
        searcher = IndexedSearcher(DATASET, index="trie")
        searcher.search("Bern", 1)
        assert searcher.last_stats is not None
        assert searcher.last_stats.nodes_visited > 0

    @pytest.mark.parametrize("kind", INDEX_KINDS)
    def test_every_kind_reports_stats(self, kind):
        searcher = IndexedSearcher(DATASET, index=kind)
        matches = searcher.search("Bern", 1)
        assert searcher.last_stats is not None
        assert searcher.last_stats.matches == len(matches)

    @pytest.mark.parametrize("kind", INDEX_KINDS)
    def test_stats_reset_per_search(self, kind):
        # Regression: a search must never report a previous search's
        # counters — the bktree/qgram kinds used to leave last_stats
        # untouched.
        searcher = IndexedSearcher(DATASET, index=kind)
        searcher.search("Bern", 2)
        busy = searcher.last_stats
        searcher.search("zzzzzzzz", 0)
        idle = searcher.last_stats
        assert idle is not busy
        assert idle.matches == 0

    def test_bktree_counts_distance_computations(self):
        searcher = IndexedSearcher(DATASET, index="bktree")
        searcher.search("Bern", 1)
        assert searcher.last_stats.nodes_visited > 0

    def test_flat_stats_match_object_trie(self):
        flat = IndexedSearcher(DATASET, index="flat")
        compressed = IndexedSearcher(DATASET, index="compressed")
        assert flat.search("Berlln", 2) == compressed.search("Berlln", 2)
        assert vars(flat.last_stats) == vars(compressed.last_stats)


class TestLastStatsDeprecation:
    def test_last_stats_warns(self):
        searcher = IndexedSearcher(DATASET, index="trie")
        searcher.search("Bern", 1)
        with pytest.warns(DeprecationWarning, match="SearchReport"):
            stats = searcher.last_stats
        assert stats.matches == 1

    def test_counters_snapshot_is_the_replacement(self):
        searcher = IndexedSearcher(DATASET, index="trie")
        searcher.search("Bern", 1)
        searcher.search("Bern", 1)
        counters = searcher.counters_snapshot()
        assert counters["trie.searches"] == 2
        assert counters["trie.nodes_visited"] > 0


class TestWorkloadExecution:
    def test_workload_equals_reference(self, city_workload, city_names):
        from repro.core.sequential import SequentialScanSearcher
        from repro.core.verification import verify_result_sets

        reference = SequentialScanSearcher(
            city_names, kernel="reference"
        ).run_workload(city_workload)
        for kind in INDEX_KINDS:
            searcher = IndexedSearcher(city_names, index=kind)
            verify_result_sets(reference,
                               searcher.run_workload(city_workload),
                               candidate_name=kind)


class TestConcurrentSearch:
    def test_flat_row_bank_is_per_thread(self):
        # The flat path reuses DP row buffers across queries; services
        # cache one searcher per shard and run concurrent submits
        # through it, so the scratch must be thread-local — a shared
        # bank lets two in-flight searches corrupt each other's rows.
        import threading

        searcher = IndexedSearcher(DATASET, index="flat")
        banks = {}

        def grab(name):
            searcher.search("Bern", 1)
            banks[name] = searcher._thread_row_bank()

        thread = threading.Thread(target=grab, args=("other",))
        thread.start()
        thread.join()
        grab("main")
        assert banks["main"] is not banks["other"]

    def test_shared_flat_searcher_is_safe_across_threads(self):
        import threading

        dataset = [f"city{i:03d}" for i in range(60)] + list(DATASET)
        searcher = IndexedSearcher(dataset, index="flat")
        expected = {
            query: sorted(m.string for m in searcher.search(query, 2))
            for query in ("Bern", "Berlln", "city05", "zzz")
        }
        failures = []

        def worker():
            for _ in range(80):
                for query, answer in expected.items():
                    got = sorted(m.string
                                 for m in searcher.search(query, 2))
                    if got != answer:
                        failures.append((query, got))
                        return

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert failures == []
