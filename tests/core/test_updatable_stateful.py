"""Stateful property testing of the updatable index.

Hypothesis drives random insert/remove/merge/search interleavings and
checks, after every step, that the index behaves exactly like a plain
multiset searched by brute force — the strongest form of the
main/delta/tombstone design's correctness claim.
"""

from collections import Counter

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.updatable import UpdatableIndex
from repro.distance.levenshtein import edit_distance

strings = st.text(alphabet="abc", min_size=1, max_size=5)


class UpdatableIndexMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.index = UpdatableIndex(merge_threshold=0.5)
        self.model: Counter[str] = Counter()

    @rule(string=strings)
    def insert(self, string):
        self.index.insert(string)
        self.model[string] += 1

    @precondition(lambda self: sum(self.model.values()) > 0)
    @rule(data=st.data())
    def remove_existing(self, data):
        string = data.draw(st.sampled_from(
            sorted(self.model.elements())
        ))
        self.index.remove(string)
        self.model[string] -= 1
        if self.model[string] == 0:
            del self.model[string]

    @rule()
    def force_merge(self):
        self.index.merge()

    @rule(query=st.text(alphabet="abcd", max_size=5),
          k=st.integers(min_value=0, max_value=2))
    def search_matches_brute_force(self, query, k):
        expected = sorted(
            string for string in self.model
            if edit_distance(query, string) <= k
        )
        actual = [m.string for m in self.index.search(query, k)]
        assert actual == expected

    @invariant()
    def sizes_agree(self):
        assert len(self.index) == sum(self.model.values())
        for string, multiplicity in self.model.items():
            assert self.index.count(string) == multiplicity


TestUpdatableIndexMachine = UpdatableIndexMachine.TestCase
TestUpdatableIndexMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None,
)
