"""Property tests for the engine's decision rule and search behaviour."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import SearchEngine
from repro.core.problem import SimilaritySearchProblem

datasets = st.lists(
    st.text(alphabet="abce", min_size=1, max_size=8),
    min_size=1, max_size=10,
)
queries = st.text(alphabet="abcd", max_size=8)
thresholds = st.integers(min_value=0, max_value=3)


class TestDecisionRule:
    @settings(max_examples=40)
    @given(st.integers(min_value=1, max_value=200),
           st.integers(min_value=2, max_value=30))
    def test_decision_depends_only_on_shape(self, length, alphabet_size):
        # Build a dataset with exactly this mean length and alphabet;
        # the planner's decision is a pure function of that shape, so
        # two engines over it must plan identically — and never pick a
        # strategy costlier than the cheapest feasible estimate.
        symbols = "ACGTNWXYZKLMPQRSUVabcdefghijkl"[:alphabet_size]
        strings = tuple(
            symbols[i % alphabet_size] * length for i in range(6)
        )
        plan = SearchEngine(strings).default_plan
        again = SearchEngine(strings).default_plan
        assert plan.strategy == again.strategy
        assert [e.cost for e in plan.estimates] \
            == [e.cost for e in again.estimates]
        feasible = [e for e in plan.estimates if e.feasible]
        assert plan.cost_for(plan.strategy) \
            == min(e.cost for e in feasible)

    @settings(max_examples=30)
    @given(datasets)
    def test_forced_backends_ignore_shape(self, dataset):
        for backend in ("sequential", "indexed"):
            engine = SearchEngine(dataset, backend=backend)
            assert engine.default_plan.strategy == backend
            assert engine.default_plan.forced


class TestEngineSearchProperties:
    @settings(max_examples=50)
    @given(datasets, queries, thresholds)
    def test_both_backends_equal_brute_force(self, dataset, query, k):
        problem = SimilaritySearchProblem(dataset)
        expected = problem.solve_brute_force(query, k)
        for backend in ("sequential", "indexed"):
            engine = SearchEngine(dataset, backend=backend)
            actual = [m.string for m in engine.search(query, k)]
            assert actual == expected, backend

    @settings(max_examples=40)
    @given(datasets, queries)
    def test_threshold_monotonicity(self, dataset, query):
        engine = SearchEngine(dataset)
        previous: set[str] = set()
        for k in (0, 1, 2, 3):
            current = {m.string for m in engine.search(query, k)}
            assert previous <= current
            previous = current
