"""Unit tests for the named stage ladders."""

from repro.core.pipeline import ApproachPipeline
from repro.core.stages import index_stage_ladder, sequential_stage_ladder
from repro.data.workload import Workload

DATASET = ("Berlin", "Bern", "Ulm", "Hamburg", "Bremen")
WORKLOAD = Workload(("Bern", "Ulm", "Hamburk"), 1, "stage-test")


class TestSequentialLadder:
    def test_six_stages_in_paper_order(self):
        ladder = sequential_stage_ladder(DATASET)
        assert len(ladder) == 6
        assert ladder[0].name.startswith("1)")
        assert ladder[5].name.startswith("6)")

    def test_all_stages_produce_reference_results(self):
        ladder = sequential_stage_ladder(DATASET, pool_threads=2)
        pipeline = ApproachPipeline(ladder[0], WORKLOAD)
        outcomes = pipeline.run(ladder[1:])
        assert all(outcome.correct for outcome in outcomes), [
            (o.name, o.error) for o in outcomes if not o.correct
        ]

    def test_parallel_stages_have_runners(self):
        ladder = sequential_stage_ladder(DATASET)
        assert ladder[4].runner is not None
        assert ladder[5].runner is not None
        assert ladder[0].runner is None


class TestIndexLadder:
    def test_three_stages_in_paper_order(self):
        ladder = index_stage_ladder(DATASET)
        assert len(ladder) == 3
        assert "prefix tree" in ladder[0].name
        assert "ompression" in ladder[1].name

    def test_all_stages_produce_reference_results(self):
        from repro.core.sequential import SequentialScanSearcher
        from repro.core.pipeline import Approach

        reference = Approach(
            "reference",
            lambda: SequentialScanSearcher(DATASET, kernel="reference"),
        )
        ladder = index_stage_ladder(DATASET, pool_threads=2)
        pipeline = ApproachPipeline(reference, WORKLOAD)
        outcomes = pipeline.run(ladder)
        assert all(outcome.correct for outcome in outcomes), [
            (o.name, o.error) for o in outcomes if not o.correct
        ]

    def test_adaptive_variant(self):
        from repro.parallel.adaptive import AdaptiveManager

        ladder = index_stage_ladder(DATASET, adaptive=True)
        assert isinstance(ladder[2].runner, AdaptiveManager)
