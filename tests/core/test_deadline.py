"""Unit tests for the Deadline/Budget work-limiting protocol."""

import pytest

from repro.core.deadline import DEFAULT_CHECK_INTERVAL, Budget, Deadline
from repro.exceptions import ReproError


class TestDeadline:
    def test_fresh_deadline_not_expired(self):
        deadline = Deadline(60.0)
        assert not deadline.expired()
        assert deadline.remaining() > 0
        assert not deadline.spend(1000)

    def test_zero_deadline_expires_immediately(self):
        deadline = Deadline(0.0)
        assert deadline.expired()
        assert deadline.spend(1)

    def test_negative_seconds_rejected(self):
        with pytest.raises(ReproError):
            Deadline(-1.0)

    def test_bad_check_interval_rejected(self):
        with pytest.raises(ReproError):
            Deadline(1.0, check_interval=0)

    def test_default_check_interval(self):
        assert Deadline(1.0).check_interval == DEFAULT_CHECK_INTERVAL

    def test_after_classmethod(self):
        assert not Deadline.after(60.0).expired()


class TestBudget:
    def test_spend_accumulates_to_limit(self):
        budget = Budget(10)
        assert not budget.spend(4)
        assert not budget.spend(5)
        assert budget.spend(1)
        assert budget.exhausted()

    def test_remaining(self):
        budget = Budget(10)
        budget.spend(3)
        assert budget.remaining() == 7

    def test_exhausted_stays_exhausted(self):
        budget = Budget(1)
        assert budget.spend(5)
        assert budget.spend(0)
        assert budget.expired()

    def test_zero_budget_expires_immediately(self):
        budget = Budget(0)
        assert budget.exhausted()
        assert budget.spend(1)

    def test_negative_limit_rejected(self):
        with pytest.raises(ReproError):
            Budget(-1)

    def test_deterministic_across_runs(self):
        # The whole point of Budget: identical spend sequences expire
        # at identical points, machine speed notwithstanding.
        def run():
            budget = Budget(100, check_interval=8)
            steps = 0
            while not budget.spend(8):
                steps += 1
            return steps

        assert run() == run()
