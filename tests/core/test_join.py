"""Unit tests for the string similarity join."""

import pytest

from repro.core.join import (
    JoinPair,
    deduplicate,
    index_join,
    scan_join,
    similarity_join,
)
from repro.distance.levenshtein import edit_distance
from repro.exceptions import InvalidThresholdError, ReproError

LEFT = ["Bern", "Berlin", "Ulm", "Hamburg"]
RIGHT = ["Berne", "Hamburk", "Bonn", "Ulm"]


def brute_force(left, right, k, self_join=False):
    pairs = []
    for i, r in enumerate(left):
        for j, s in enumerate(right):
            if self_join and j <= i:
                continue
            distance = edit_distance(r, s)
            if distance <= k:
                pairs.append((i, j, distance))
    return sorted(pairs)


def as_tuples(result):
    return [(p.left_index, p.right_index, p.distance)
            for p in result.pairs]


class TestScanJoin:
    def test_two_sided_join_equals_brute_force(self):
        for k in (0, 1, 2, 3):
            assert as_tuples(scan_join(LEFT, RIGHT, k)) == \
                brute_force(LEFT, RIGHT, k), k

    def test_self_join_equals_brute_force(self):
        data = ["Bern", "Berne", "Bern", "Ulm", "Ulmen"]
        for k in (0, 1, 2):
            assert as_tuples(scan_join(data, None, k)) == \
                brute_force(data, data, k, self_join=True), k

    def test_self_join_excludes_identity_pairs(self):
        result = scan_join(["same", "same"], None, 0)
        assert as_tuples(result) == [(0, 1, 0)]

    def test_empty_inputs(self):
        assert len(scan_join([], [], 2)) == 0
        assert len(scan_join(["a"], [], 2)) == 0

    def test_empty_string_rejected(self):
        with pytest.raises(ReproError):
            scan_join(["ok", ""], None, 1)
        with pytest.raises(ReproError):
            scan_join(["ok"], ["", "x"], 1)

    def test_invalid_threshold(self):
        with pytest.raises(InvalidThresholdError):
            scan_join(["a"], ["b"], -1)

    def test_length_band_limits_candidates(self):
        result = scan_join(["ab"], ["ab", "abcdefghij"], 1)
        assert result.candidates_examined == 1

    def test_statistics_populated(self):
        result = scan_join(LEFT, RIGHT, 2)
        assert result.seconds > 0
        assert result.candidates_examined >= len(result)


class TestIndexJoin:
    def test_matches_scan_join(self):
        for k in (0, 1, 2, 3):
            scan = scan_join(LEFT, RIGHT, k)
            for kind in ("trie", "compressed", "qgram"):
                indexed = index_join(LEFT, RIGHT, k, index=kind)
                assert as_tuples(indexed) == as_tuples(scan), (k, kind)

    def test_self_join_matches_scan(self):
        data = ["Bern", "Berne", "Bern", "Ulm"]
        for k in (0, 1, 2):
            assert as_tuples(index_join(data, None, k)) == \
                as_tuples(scan_join(data, None, k)), k

    def test_duplicates_on_the_right_join_individually(self):
        result = index_join(["Ulm"], ["Ulm", "Ulm"], 0)
        assert as_tuples(result) == [(0, 0, 0), (0, 1, 0)]

    def test_frequency_pruning_preserves_results(self):
        plain = index_join(LEFT, RIGHT, 2)
        pruned = index_join(LEFT, RIGHT, 2, tracked_symbols="AEIOU")
        assert as_tuples(plain) == as_tuples(pruned)


class TestSimilarityJoinFrontEnd:
    def test_auto_selects_and_agrees(self, city_names):
        subset = list(city_names[:60])
        auto = similarity_join(subset, None, 1, method="auto")
        scan = similarity_join(subset, None, 1, method="scan")
        index = similarity_join(subset, None, 1, method="index")
        assert as_tuples(auto) == as_tuples(scan) == as_tuples(index)

    def test_unknown_method_rejected(self):
        with pytest.raises(ReproError):
            similarity_join(["a"], None, 1, method="hash")


class TestDeduplicate:
    def test_groups_near_duplicates(self):
        groups = deduplicate(["Bern", "Berne", "Ulm", "Hamburg"], 1)
        assert groups == [[0, 1]]

    def test_transitive_clustering(self):
        # a-b within 1, b-c within 1, a-c within 2: one cluster.
        groups = deduplicate(["abcd", "abce", "abcef"], 1)
        assert groups == [[0, 1, 2]]

    def test_exact_duplicates_cluster_at_k_zero(self):
        groups = deduplicate(["x1", "x1", "y2"], 0)
        assert groups == [[0, 1]]

    def test_no_duplicates_yields_nothing(self):
        assert deduplicate(["aaaa", "zzzz"], 1) == []


class TestJoinPair:
    def test_ordering(self):
        assert JoinPair(0, 1, 2) < JoinPair(0, 2, 0) < JoinPair(1, 0, 0)

    def test_string_materialization(self):
        result = scan_join(["Bern"], ["Berne"], 1)
        rows = result.as_string_pairs(["Bern"], ["Berne"])
        assert rows == [("Bern", "Berne", 1)]
