"""Unit tests for pair explanation."""

import pytest

from repro.core.explain import explain_pair
from repro.exceptions import InvalidThresholdError


class TestExplainPair:
    def test_matching_pair(self):
        explanation = explain_pair("Bern", "Berlin", 2)
        assert explanation.matched
        assert explanation.distance == 2
        assert explanation.length_filter
        assert explanation.script  # non-exact match carries a script

    def test_exact_match_has_empty_script(self):
        explanation = explain_pair("Ulm", "Ulm", 0)
        assert explanation.matched
        assert explanation.distance == 0
        assert explanation.script == ()

    def test_length_rejected_pair(self):
        explanation = explain_pair("ab", "abcdefgh", 2)
        assert not explanation.matched
        assert not explanation.length_filter

    def test_frequency_bound_reported(self):
        explanation = explain_pair("Berlin", "Brln", 1)
        bound, rejects = explanation.frequency_bound
        assert bound == 2
        assert rejects  # 2 > k=1

    def test_qgram_bound_reported(self):
        explanation = explain_pair("ACGTACGT", "TTTTTTTT", 1)
        shared, needed, rejects = explanation.qgram_bound
        assert shared == 0
        assert needed > 0
        assert rejects

    def test_kernel_rationale_present(self):
        explanation = explain_pair("A" * 100, "A" * 100, 16)
        assert "bit-parallel" in explanation.kernel

    def test_render_is_complete(self):
        text = explain_pair("Bern", "Berlin", 2).render()
        assert "MATCH" in text
        assert "length filter" in text
        assert "frequency bound" in text
        assert "q-gram bound" in text
        assert "kernel dispatch" in text
        assert "insert" in text

    def test_render_no_match(self):
        text = explain_pair("aaaa", "zzzz", 1).render()
        assert "NO MATCH" in text

    def test_bounds_never_contradict_the_verdict(self):
        # Sound filters cannot reject a true match.
        cases = [("Bern", "Berne", 1), ("kitten", "sitting", 3),
                 ("same", "same", 0)]
        for query, candidate, k in cases:
            explanation = explain_pair(query, candidate, k)
            assert explanation.matched
            assert explanation.length_filter
            assert not explanation.frequency_bound[1]
            assert not explanation.qgram_bound[2]

    def test_invalid_threshold(self):
        with pytest.raises(InvalidThresholdError):
            explain_pair("a", "b", -1)

    def test_empty_operands(self):
        explanation = explain_pair("", "ab", 2)
        assert explanation.matched
        assert explanation.distance == 2
