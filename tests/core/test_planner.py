"""Tests for the cost-model query planner (`repro.core.planner`)."""

import json
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import SearchEngine
from repro.core.planner import (
    AUTO_POLICY,
    STRATEGIES,
    CostProfile,
    Planner,
    PlannerPolicy,
    QueryPlan,
    calibrate,
    collect_statistics,
    validate_plan,
)
from repro.core.request import BACKEND_DEPRECATION, SearchRequest
from repro.exceptions import ReproError
from repro.obs.report import validate_report


class TestCostProfile:
    def test_round_trip_through_disk(self, tmp_path):
        profile = CostProfile(seq_candidate=3.3e-6, trie_node=1.1e-6)
        path = profile.save(str(tmp_path / "profile.json"))
        loaded = CostProfile.load(path)
        assert loaded == profile
        assert loaded.seq_candidate == 3.3e-6
        assert loaded.trie_node == 1.1e-6

    def test_serialized_form_is_versioned(self, tmp_path):
        path = CostProfile().save(str(tmp_path / "p.json"))
        with open(path, encoding="utf-8") as handle:
            on_disk = json.load(handle)
        assert on_disk["profile_version"] == 1

    def test_future_version_rejected(self):
        mapping = CostProfile().to_dict()
        mapping["profile_version"] = 99
        with pytest.raises(ReproError):
            CostProfile.from_dict(mapping)

    def test_non_positive_constants_rejected(self):
        with pytest.raises(ReproError):
            CostProfile(seq_candidate=0.0)

    def test_engine_accepts_a_profile_path(self, city_names, tmp_path):
        path = CostProfile().save(str(tmp_path / "p.json"))
        engine = SearchEngine(city_names, profile=path)
        assert engine.planner.profile == CostProfile()


class TestStatistics:
    def test_candidate_window_is_exact(self, city_names):
        stats = collect_statistics(city_names)
        for length, k in ((7, 0), (7, 2), (1, 4), (40, 2)):
            expected = sum(
                1 for s in city_names
                if length - k <= len(s) <= length + k
            )
            assert stats.candidates_in_window(length, k) == expected

    def test_to_dict_is_stable_and_serializable(self, dna_reads):
        stats = collect_statistics(dna_reads)
        again = collect_statistics(dna_reads)
        assert stats.to_dict() == again.to_dict()
        assert json.loads(json.dumps(stats.to_dict())) \
            == stats.to_dict()


class TestPlanner:
    def test_planning_is_deterministic(self, city_names):
        first = Planner(city_names)
        second = Planner(city_names)
        for k in (0, 1, 2, 4):
            a = first.plan(length=8, k=k)
            b = second.plan(length=8, k=k)
            assert a.strategy == b.strategy
            assert [e.cost for e in a.estimates] \
                == [e.cost for e in b.estimates]

    def test_picks_the_cheapest_feasible(self, city_names, dna_reads):
        for corpus in (city_names, dna_reads):
            planner = Planner(corpus)
            for k in (0, 1, 2, 4):
                plan = planner.plan(length=len(corpus[0]), k=k)
                feasible = [e for e in plan.estimates if e.feasible]
                assert plan.cost_for(plan.strategy) \
                    == min(e.cost for e in feasible)

    def test_every_strategy_is_scored(self, city_names):
        plan = Planner(city_names).plan(length=7, k=2)
        assert {e.strategy for e in plan.estimates} == set(STRATEGIES)

    def test_costs_grow_with_k(self, city_names):
        planner = Planner(city_names)
        seq = [planner.estimate("sequential", 7, k) for k in range(5)]
        assert seq == sorted(seq)

    def test_batch_mode_drops_non_batch_strategies(self, city_names):
        plan = Planner(city_names).plan(queries=["Berlin", "Hamburg"],
                                        k=1, batch=True)
        assert plan.strategy in ("compiled", "indexed")
        infeasible = {e.strategy for e in plan.estimates
                      if not e.feasible}
        assert {"sequential", "qgram"} <= infeasible

    def test_deadline_mode_drops_the_qgram_path(self, city_names):
        plan = Planner(city_names).plan(length=7, k=2, deadline=True)
        qgram = next(e for e in plan.estimates
                     if e.strategy == "qgram")
        assert not qgram.feasible

    def test_forced_policy_wins_regardless_of_cost(self, city_names):
        planner = Planner(city_names)
        for strategy in STRATEGIES:
            plan = planner.plan(
                length=7, k=2,
                policy=PlannerPolicy(strategy=strategy),
            )
            assert plan.strategy == strategy
            assert plan.forced

    def test_observe_window_bends_future_estimates(self, city_names):
        planner = Planner(city_names)
        before = planner.estimate("sequential", 7, 2)
        # Report the sequential scan running 10x slower than predicted.
        planner.observe_window("sequential", 2, [7] * 20, before * 200)
        after = planner.estimate("sequential", 7, 2)
        assert after > before
        assert planner.observed_windows == 1

    def test_corrections_are_clamped(self, city_names):
        planner = Planner(city_names)
        predicted = planner.estimate("indexed", 7, 1)
        planner.observe_window("indexed", 1, [7], predicted * 1e6)
        assert planner.estimate("indexed", 7, 1) <= predicted * 32


class TestPlanSerialization:
    def test_to_dict_validates(self, city_names):
        plan = Planner(city_names).plan(length=7, k=2)
        assert validate_plan(plan.to_dict()) == []

    def test_validate_plan_flags_problems(self, city_names):
        mapping = Planner(city_names).plan(length=7, k=2).to_dict()
        mapping["strategy"] = "gpu"
        del mapping["estimates"]
        problems = validate_plan(mapping)
        assert problems

    def test_report_carries_a_valid_plan_section(self, city_names):
        engine = SearchEngine(city_names)
        engine.search("Berlino", 2)
        mapping = engine.last_report.to_dict()
        assert validate_report(mapping) == []
        assert mapping["plan"]["strategy"] == mapping["backend"]
        assert validate_plan(mapping["plan"]) == []

    def test_corrupt_plan_section_fails_report_validation(
            self, city_names):
        engine = SearchEngine(city_names)
        engine.search("Berlino", 2)
        mapping = engine.last_report.to_dict()
        mapping["plan"] = {"strategy": 42}
        assert validate_report(mapping)


class TestEnginePlanAPI:
    def test_explain_matches_the_executed_plan(self, city_names):
        engine = SearchEngine(city_names)
        explained = engine.explain("Berlino", 2)
        engine.search("Berlino", 2)
        assert engine.last_report.backend == explained.strategy

    def test_explain_does_not_execute(self, city_names):
        engine = SearchEngine(city_names)
        engine.explain("Berlino", 2)
        assert engine.last_report is None

    def test_plan_render_mentions_every_strategy(self, city_names):
        rendered = SearchEngine(city_names).explain("Berlino", 2) \
                                           .render()
        for strategy in STRATEGIES:
            assert strategy in rendered

    def test_default_plan_is_a_query_plan(self, city_names):
        plan = SearchEngine(city_names).default_plan
        assert isinstance(plan, QueryPlan)
        assert plan.strategy in STRATEGIES

    def test_qgram_strategy_matches_sequential_results(self,
                                                       city_names):
        auto = SearchEngine(city_names)
        sequential = SearchEngine(city_names, backend="sequential")
        qgram = SearchEngine(city_names, backend="qgram")
        for query in ("Berlino", "Hamburq", city_names[0]):
            expected = sequential.search(query, 2)
            assert auto.search(query, 2) == expected
            assert qgram.search(query, 2) == expected

    def test_split_batch_matches_unsplit(self, city_names, dna_reads):
        # A batch mixing the two regimes may be split across executors;
        # results must equal the single-executor answer, row for row.
        corpus = tuple(city_names) + tuple(dna_reads)
        queries = [city_names[0], dna_reads[0], city_names[1],
                   dna_reads[1]]
        engine = SearchEngine(corpus)
        unsplit = SearchEngine(corpus, backend="compiled")
        assert engine.search_many(queries, 2) \
            == unsplit.search_many(queries, 2)


class TestBackendDeprecation:
    def test_request_backend_string_warns_with_the_documented_text(
            self):
        with pytest.warns(DeprecationWarning) as captured:
            request = SearchRequest("q", 1, backend="indexed")
        assert str(captured[0].message) == BACKEND_DEPRECATION
        assert "removed in 2.0" in BACKEND_DEPRECATION
        assert "plan=PlannerPolicy" in BACKEND_DEPRECATION
        assert request.backend is None
        assert request.policy.strategy == "indexed"

    def test_engine_per_call_backend_string_warns(self, city_names):
        engine = SearchEngine(city_names)
        with pytest.warns(DeprecationWarning, match="plan="):
            hinted = engine.search("Berlino", 2, backend="sequential")
        assert hinted == engine.search("Berlino", 2)

    def test_plan_policy_does_not_warn(self, city_names):
        engine = SearchEngine(city_names)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine.search("Berlino", 2,
                          plan=PlannerPolicy(strategy="sequential"))

    def test_choice_warns_and_mirrors_the_plan(self, city_names):
        engine = SearchEngine(city_names)
        with pytest.warns(DeprecationWarning, match="removed in 2.0"):
            choice = engine.choice
        assert choice.backend == engine.default_plan.strategy


class TestPlannerProperty:
    @settings(max_examples=40, deadline=None)
    @given(length=st.integers(min_value=1, max_value=120),
           k=st.integers(min_value=0, max_value=6),
           deadline=st.booleans(), batch=st.booleans())
    def test_never_picks_a_costlier_strategy(self, city_names, length,
                                             k, deadline, batch):
        planner = Planner(city_names)
        if deadline and batch:
            batch = False  # deadline batches degrade elsewhere
        plan = planner.plan(length=length, k=k, deadline=deadline,
                            batch=batch)
        feasible = [e for e in plan.estimates if e.feasible]
        minimum = min(e.cost for e in feasible)
        assert plan.cost_for(plan.strategy) <= minimum
        assert any(e.strategy == plan.strategy and e.feasible
                   for e in plan.estimates)


class TestCalibrate:
    def test_calibrate_smoke(self, tmp_path):
        profile = calibrate(city_count=120, dna_count=24, queries=4,
                            repeats=1)
        for name, value in profile.constants().items():
            assert value > 0, name
        path = profile.save(str(tmp_path / "calibrated.json"))
        assert CostProfile.load(path) == profile

    def test_auto_policy_is_the_default(self):
        assert AUTO_POLICY.is_auto
        assert PlannerPolicy.from_backend(None) == AUTO_POLICY
        assert PlannerPolicy.from_backend("auto") == AUTO_POLICY
