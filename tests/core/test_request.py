"""Unit tests for the unified SearchRequest/SearchOptions surface."""

import pytest

from repro.core.deadline import Budget, Deadline
from repro.core.engine import SearchEngine
from repro.core.request import (
    DEFAULT_OPTIONS,
    SearchOptions,
    SearchRequest,
    as_request,
)
from repro.data.workload import Workload
from repro.exceptions import InvalidThresholdError, ReproError

CITIES = ["Berlin", "Bern", "Ulm", "Hamburg", "Bremen", "Dresden"]


class TestSearchRequest:
    def test_single_query(self):
        request = SearchRequest("Berlino", 2)
        assert not request.is_batch
        assert request.queries == ("Berlino",)

    def test_batch_query(self):
        request = SearchRequest(["Bern", "Ulm"], 1)
        assert request.is_batch
        assert request.query == ("Bern", "Ulm")

    def test_threshold_validated_at_construction(self):
        with pytest.raises(InvalidThresholdError):
            SearchRequest("q", -1)

    def test_backend_validated(self):
        with pytest.raises(ReproError):
            SearchRequest("q", 1, backend="bogus")

    def test_non_string_batch_item_rejected(self):
        with pytest.raises(ReproError):
            SearchRequest(["ok", 42], 1)

    def test_from_workload(self):
        workload = Workload(("Bern", "Ulm"), 1)
        request = SearchRequest.from_workload(workload)
        assert request.queries == ("Bern", "Ulm")
        assert request.k == 1

    def test_with_options(self):
        request = SearchRequest("q", 1).with_options(report=True)
        assert request.options.report
        assert request.options.allow_partial  # untouched default

    def test_frozen(self):
        request = SearchRequest("q", 1)
        with pytest.raises(AttributeError):
            request.k = 2


class TestCanonicalIdentity:
    """Equality/hash must agree with cache keys and dedup (regression:
    two spellings of the same request used to compare unequal)."""

    def test_default_options_explicit_or_implicit(self):
        implicit = SearchRequest("q", 1)
        explicit = SearchRequest("q", 1, options=SearchOptions())
        assert implicit == explicit
        assert hash(implicit) == hash(explicit)

    def test_options_value_equality(self):
        one = SearchRequest("q", 1,
                            options=SearchOptions(report=True))
        two = SearchRequest("q", 1,
                            options=SearchOptions(report=True))
        assert one == two
        assert hash(one) == hash(two)

    def test_differing_options_differ(self):
        plain = SearchRequest("q", 1)
        reporting = SearchRequest("q", 1,
                                  options=SearchOptions(report=True))
        assert plain != reporting

    def test_auto_backend_equals_none(self):
        assert SearchRequest("q", 1, backend="auto") \
            == SearchRequest("q", 1)
        assert hash(SearchRequest("q", 1, backend="auto")) \
            == hash(SearchRequest("q", 1))

    def test_real_backend_hint_distinguishes(self):
        assert SearchRequest("q", 1, backend="compiled") \
            != SearchRequest("q", 1)

    def test_deadline_is_execution_context_not_identity(self):
        bounded = SearchRequest("q", 1, deadline=Deadline(5.0))
        unbounded = SearchRequest("q", 1)
        assert bounded == unbounded
        assert hash(bounded) == hash(unbounded)

    def test_query_and_k_still_distinguish(self):
        assert SearchRequest("q", 1) != SearchRequest("q", 2)
        assert SearchRequest("q", 1) != SearchRequest("p", 1)

    def test_dedup_in_sets_and_dicts(self):
        requests = [
            SearchRequest("q", 1),
            SearchRequest("q", 1, backend="auto"),
            SearchRequest("q", 1, deadline=Deadline(1.0)),
            SearchRequest("q", 1, options=SearchOptions()),
            SearchRequest("q", 2),
        ]
        assert len(set(requests)) == 2

    def test_not_equal_to_other_types(self):
        assert SearchRequest("q", 1) != ("q", 1)


class TestAsRequest:
    def test_legacy_form(self):
        request = as_request("Berlino", 2)
        assert request.query == "Berlino"
        assert request.k == 2
        assert request.options is DEFAULT_OPTIONS

    def test_request_passthrough(self):
        original = SearchRequest("q", 1)
        assert as_request(original) is original

    def test_request_plus_k_conflicts(self):
        with pytest.raises(ReproError, match="inside the SearchRequest"):
            as_request(SearchRequest("q", 1), 3)

    @pytest.mark.parametrize("kwargs", [
        {"deadline": Deadline(1.0)},
        {"backend": "compiled"},
        {"options": SearchOptions(report=True)},
    ])
    def test_request_plus_kwarg_conflicts(self, kwargs):
        with pytest.raises(ReproError, match="inside the SearchRequest"):
            as_request(SearchRequest("q", 1), **kwargs)

    def test_k_required_without_request(self):
        with pytest.raises(ReproError, match="k is required"):
            as_request("q")

    def test_batch_rejects_bare_string(self):
        with pytest.raises(ReproError):
            as_request("q", 1, batch=True)


class TestEngineAcceptsRequests:
    def test_search_request_equals_legacy(self):
        engine = SearchEngine(CITIES)
        legacy = engine.search("Berlino", 2)
        via_request = engine.search(SearchRequest("Berlino", 2))
        assert legacy == via_request

    def test_search_many_request_equals_legacy(self):
        engine = SearchEngine(CITIES)
        legacy = engine.search_many(["Bern", "Ulm"], 1)
        via_request = engine.search_many(SearchRequest(("Bern", "Ulm"), 1))
        assert legacy == via_request

    def test_run_workload_request_equals_legacy(self):
        engine = SearchEngine(CITIES)
        workload = Workload(("Bern", "Ulm"), 1)
        legacy = engine.run_workload(workload)
        via_request = engine.run_workload(
            SearchRequest.from_workload(workload))
        assert legacy == via_request

    def test_batch_request_through_search_delegates(self):
        engine = SearchEngine(CITIES)
        results = engine.search(SearchRequest(("Bern", "Ulm"), 1))
        assert results == engine.search_many(["Bern", "Ulm"], 1)

    def test_options_report_returns_pair(self):
        engine = SearchEngine(CITIES)
        request = SearchRequest("Berlino", 2,
                                options=SearchOptions(report=True))
        matches, report = engine.search(request)
        assert report.mode == "search"
        assert report.matches == len(matches)

    def test_legacy_report_flag_still_works(self):
        engine = SearchEngine(CITIES)
        matches, report = engine.search("Berlino", 2, report=True)
        assert report.queries == 1

    def test_report_flag_conflicts_with_request(self):
        engine = SearchEngine(CITIES)
        with pytest.raises(ReproError):
            engine.search(SearchRequest("q", 1), report=True)

    def test_per_request_backend_hint_on_single_search(self):
        engine = SearchEngine(CITIES)
        with pytest.warns(DeprecationWarning, match="plan="):
            request = SearchRequest("Berlino", 2, backend="indexed")
        assert request.backend is None
        assert request.policy.strategy == "indexed"
        hinted = engine.search(request)
        assert engine.last_report.backend == "indexed"
        assert hinted == engine.search("Berlino", 2)

    def test_per_request_plan_on_single_search(self):
        from repro.core.planner import PlannerPolicy

        engine = SearchEngine(CITIES)
        planned = engine.search(
            SearchRequest("Berlino", 2,
                          plan=PlannerPolicy(strategy="indexed"))
        )
        assert engine.last_report.backend == "indexed"
        assert planned == engine.search("Berlino", 2)

    def test_deadline_kwarg_reaches_backend(self):
        engine = SearchEngine(CITIES)
        from repro.exceptions import DeadlineExceeded

        with pytest.raises(DeadlineExceeded):
            engine.search("Berlino", 2,
                          deadline=Budget(0, check_interval=1))
