"""Tests for the redesigned one-call reporting API of SearchEngine.

One SearchReport schema across all four execution paths, per-call
windows that always describe the backend that actually served the call,
counter parity between serial and process-pool execution, deprecation
of the old stats attributes, and the near-zero-cost guarantee of the
always-on counters.
"""

import time

import pytest

from repro.core.engine import SearchEngine
from repro.core.sequential import SequentialScanSearcher
from repro.data.workload import Workload
from repro.obs.registry import MetricsRegistry
from repro.obs.report import SearchReport, validate_report
from repro.parallel.executor import ProcessPoolRunner


class TestOneSchemaAcrossBackends:
    def test_sequential_search_report(self, city_names):
        engine = SearchEngine(city_names, backend="sequential")
        matches, report = engine.search(city_names[0], 1, report=True)
        assert isinstance(report, SearchReport)
        assert validate_report(report.to_dict()) == []
        assert report.backend == "sequential"
        assert report.mode == "search"
        assert report.queries == 1 and report.k == 1
        assert report.matches == len(matches)
        assert report.counters["scan.searches"] == 1
        assert report.counters["scan.candidates"] > 0
        assert report.batch is None

    def test_compiled_search_report(self, city_names):
        engine = SearchEngine(city_names, backend="compiled")
        _, report = engine.search(city_names[0], 1, report=True)
        assert validate_report(report.to_dict()) == []
        assert report.backend == "compiled"
        assert report.engine == "compiled-scan"
        assert report.counters["scan.kernel_calls"] > 0
        assert report.batch is not None      # served by the batch executor

    def test_indexed_search_report(self, city_names):
        engine = SearchEngine(city_names, backend="indexed")
        _, report = engine.search(city_names[0], 1, report=True)
        assert validate_report(report.to_dict()) == []
        assert report.backend == "indexed"
        assert report.counters["trie.searches"] == 1
        assert report.counters["trie.nodes_visited"] > 0

    def test_batch_index_report(self, dna_reads):
        engine = SearchEngine(dna_reads, backend="indexed")
        _, report = engine.search_many(dna_reads[:3], 2, report=True)
        assert validate_report(report.to_dict()) == []
        assert report.backend == "indexed"
        assert report.engine == "batch-index[flat]"
        assert report.mode == "batch"
        assert report.queries == 3
        assert report.counters["trie.nodes_visited"] > 0
        assert report.batch.queries_seen == 3

    def test_workload_report(self, city_names, city_workload):
        engine = SearchEngine(city_names)
        results, report = engine.run_workload(city_workload, report=True)
        assert validate_report(report.to_dict()) == []
        assert report.mode == "workload"
        assert report.queries == len(city_workload.queries)
        assert report.matches == results.total_matches

    def test_choice_section_carries_the_decision(self, dna_reads):
        engine = SearchEngine(dna_reads)
        engine.search(dna_reads[0], 2)
        report = engine.last_report.to_dict()
        choice = report["choice"]
        # The choice section now mirrors the per-call QueryPlan: it
        # names the strategy that actually served this call.
        assert choice["backend"] == report["backend"]
        assert "regime" in choice["reason"]
        assert report["plan"]["strategy"] == report["backend"]


class TestReportHistograms:
    """Every backend's report carries per-query latency quantiles."""

    EXPECTED = {
        "sequential": "scan.query_seconds",
        "compiled": "scan.query_seconds",
        "indexed": "trie.query_seconds",
    }

    @pytest.mark.parametrize("backend,series", sorted(EXPECTED.items()))
    def test_search_report_has_latency_quantiles(self, city_names,
                                                 backend, series):
        engine = SearchEngine(city_names, backend=backend)
        _, report = engine.search(city_names[0], 1, report=True)
        histograms = report.to_dict()["histograms"]
        assert series in histograms, sorted(histograms)
        cell = histograms[series]
        assert cell["count"] == 1
        assert cell["p50"] <= cell["p90"] <= cell["p99"]
        assert validate_report(report.to_dict()) == []

    def test_batch_index_report_has_latency_quantiles(self, dna_reads):
        engine = SearchEngine(dna_reads, backend="indexed")
        _, report = engine.search_many(dna_reads[:4], 2, report=True)
        cell = report.to_dict()["histograms"]["trie.query_seconds"]
        assert cell["count"] == 4

    def test_window_isolation(self, city_names):
        engine = SearchEngine(city_names, backend="sequential")
        engine.search(city_names[0], 1)
        engine.search_many(city_names[:5], 1)
        cell = engine.last_report.to_dict()["histograms"][
            "scan.query_seconds"]
        # only the 5 queries of the last call, not the earlier one
        assert cell["count"] == 5

    def test_work_profile_histograms_ride_along(self, city_names):
        engine = SearchEngine(city_names, backend="compiled")
        _, report = engine.search_many(city_names[:3], 1, report=True)
        histograms = report.to_dict()["histograms"]
        assert histograms["scan.candidates_per_query"]["count"] == 3
        assert histograms["scan.kernel_calls_per_query"]["count"] == 3


class TestPerCallWindows:
    def test_last_report_is_none_before_any_call(self, city_names):
        assert SearchEngine(city_names).last_report is None

    def test_report_holds_only_the_last_calls_work(self, city_names):
        engine = SearchEngine(city_names, backend="sequential")
        engine.search(city_names[0], 2)
        first = engine.last_report.counters["scan.candidates"]
        engine.search(city_names[0], 2)
        # cumulative counters keep growing; the window must not
        assert engine.last_report.counters["scan.candidates"] == first
        assert engine.searcher.counters_snapshot()["scan.candidates"] \
            == 2 * first

    def test_report_true_returns_the_same_object_as_last_report(
            self, city_names):
        engine = SearchEngine(city_names)
        _, report = engine.search(city_names[0], 1, report=True)
        assert report is engine.last_report

    def test_timed_workload_seconds_match_the_report(self, city_names):
        engine = SearchEngine(city_names)
        workload = Workload(tuple(city_names[:5]), 1, "report-test")
        _, seconds = engine.timed_workload(workload)
        assert engine.last_report.seconds == seconds


class TestServingBackendNeverStale:
    def test_forced_compiled_batch_on_an_indexed_engine(self, dna_reads):
        # Regression: after a caller forces the compiled path, the
        # report (and the deprecated shim) must describe the compiled
        # executor, not the engine's own batch index.
        from repro.core.planner import PlannerPolicy

        engine = SearchEngine(dna_reads, backend="indexed")
        engine.search_many(dna_reads[:2], 2)           # batch index
        engine.search_many(dna_reads[:4], 2,
                           plan=PlannerPolicy(strategy="compiled"))
        report = engine.last_report
        assert report.backend == "compiled"
        assert report.batch.queries_seen == 4
        assert "scan.kernel_calls" in report.counters
        assert "trie.nodes_visited" not in report.counters
        with pytest.warns(DeprecationWarning):
            stats = engine.batch_stats
        assert stats.queries_seen == 4       # the compiled executor's

    def test_switching_back_to_the_index(self, dna_reads):
        from repro.core.planner import PlannerPolicy

        engine = SearchEngine(dna_reads)
        engine.search_many(dna_reads[:4], 2,
                           plan=PlannerPolicy(strategy="compiled"))
        engine.search_many(dna_reads[:3], 2,
                           plan=PlannerPolicy(strategy="indexed"))
        report = engine.last_report
        assert report.backend == "indexed"
        assert report.batch.queries_seen == 3
        with pytest.warns(DeprecationWarning):
            assert engine.batch_stats.queries_seen == 3

    def test_batch_stats_shim_warns_and_is_none_before_batches(
            self, city_names):
        engine = SearchEngine(city_names)
        with pytest.warns(DeprecationWarning, match="last_report"):
            assert engine.batch_stats is None


class TestDeprecationMessages:
    """Both legacy stats shims must name their removal version."""

    def test_batch_stats_names_the_removal_version(self, city_names):
        engine = SearchEngine(city_names)
        with pytest.warns(DeprecationWarning,
                          match=r"removed in 2\.0") as captured:
            engine.batch_stats
        message = str(captured[0].message)
        assert "SearchEngine.batch_stats is deprecated" in message
        assert "engine.last_report" in message

    def test_last_stats_names_the_removal_version(self, city_names):
        from repro.core.indexed import IndexedSearcher

        searcher = IndexedSearcher(city_names)
        searcher.search(city_names[0], 1)
        with pytest.warns(DeprecationWarning,
                          match=r"removed in 2\.0") as captured:
            searcher.last_stats
        message = str(captured[0].message)
        assert "IndexedSearcher.last_stats is deprecated" in message
        assert "SearchReport" in message


class TestProcessPoolParity:
    def test_compiled_batch_counters_match_serial(self, city_names):
        queries = list(city_names[:6]) + [city_names[0]]
        serial = SearchEngine(city_names, backend="compiled")
        pooled = SearchEngine(city_names, backend="compiled",
                              runner=ProcessPoolRunner(processes=2))
        serial_results, serial_report = serial.search_many(
            queries, 2, report=True)
        pooled_results, pooled_report = pooled.search_many(
            queries, 2, report=True)
        assert serial_results == pooled_results
        # workers ship their counters home: the report must not lose
        # work done in child processes
        assert pooled_report.counters == serial_report.counters
        assert pooled_report.batch.to_dict() \
            == serial_report.batch.to_dict()

    def test_batch_index_counters_match_serial(self, dna_reads):
        queries = list(dna_reads[:5])
        serial = SearchEngine(dna_reads, backend="indexed")
        pooled = SearchEngine(dna_reads, backend="indexed",
                              runner=ProcessPoolRunner(processes=2))
        serial_results, serial_report = serial.search_many(
            queries, 2, report=True)
        pooled_results, pooled_report = pooled.search_many(
            queries, 2, report=True)
        assert serial_results == pooled_results
        # the row bank is a parent-process resource: its counters only
        # move on the serial path, so compare the traversal work itself
        bank_keys = {"trie.rows_allocated", "trie.bank_reuses"}
        strip = lambda c: {k: v for k, v in c.items()  # noqa: E731
                           if k not in bank_keys}
        assert strip(pooled_report.counters) \
            == strip(serial_report.counters)

    def test_compiled_histograms_match_serial(self, city_names):
        # Work-profile histograms (candidates, kernel calls per query)
        # must be bucket-for-bucket identical across execution modes:
        # the parent records them from worker-shipped counters, so the
        # pool cannot lose or distort per-query observations. Latency
        # histograms are wall-clock, so only their sample counts match.
        queries = list(city_names[:6])
        serial = SearchEngine(city_names, backend="compiled")
        pooled = SearchEngine(city_names, backend="compiled",
                              runner=ProcessPoolRunner(processes=2))
        _, serial_report = serial.search_many(queries, 2, report=True)
        _, pooled_report = pooled.search_many(queries, 2, report=True)
        serial_hists = serial_report.to_dict()["histograms"]
        pooled_hists = pooled_report.to_dict()["histograms"]
        assert set(serial_hists) == set(pooled_hists)
        for name in ("scan.candidates_per_query",
                     "scan.kernel_calls_per_query"):
            assert pooled_hists[name] == serial_hists[name]
        assert pooled_hists["scan.query_seconds"]["count"] \
            == serial_hists["scan.query_seconds"]["count"] \
            == len(queries)

    def test_batch_index_histograms_match_serial(self, dna_reads):
        queries = list(dna_reads[:5])
        serial = SearchEngine(dna_reads, backend="indexed")
        pooled = SearchEngine(dna_reads, backend="indexed",
                              runner=ProcessPoolRunner(processes=2))
        _, serial_report = serial.search_many(queries, 2, report=True)
        _, pooled_report = pooled.search_many(queries, 2, report=True)
        serial_hists = serial_report.to_dict()["histograms"]
        pooled_hists = pooled_report.to_dict()["histograms"]
        for name in ("trie.nodes_per_query", "trie.symbols_per_query"):
            assert pooled_hists[name] == serial_hists[name]
        assert pooled_hists["trie.query_seconds"]["count"] \
            == serial_hists["trie.query_seconds"]["count"]

    def test_workers_ship_their_timers_home(self, city_names):
        # Satellite guarantee: per-scan timers measured inside worker
        # processes arrive in the parent registry via merge_timers —
        # the pooled run must time the same number of scans the serial
        # run does, not zero.
        queries = list(city_names[:6])
        serial = SearchEngine(city_names, backend="compiled",
                              observe=True)
        pooled = SearchEngine(city_names, backend="compiled",
                              observe=True,
                              runner=ProcessPoolRunner(processes=2))
        _, serial_report = serial.search_many(queries, 2, report=True)
        _, pooled_report = pooled.search_many(queries, 2, report=True)
        assert pooled_report.timers["scan.query"]["calls"] \
            == serial_report.timers["scan.query"]["calls"]
        assert pooled_report.timers["scan.query"]["seconds"] > 0


class TestObserveMode:
    def test_observe_creates_a_registry_and_fills_timers(self, city_names):
        engine = SearchEngine(city_names, backend="compiled", observe=True)
        assert isinstance(engine.metrics, MetricsRegistry)
        engine.search_many(city_names[:4], 1)
        report = engine.last_report
        assert "scan.query" in report.timers
        assert report.timers["scan.query"]["calls"] > 0
        assert engine.metrics.counters()["scan.kernel_calls"] > 0

    def test_caller_owned_registry(self, city_names):
        registry = MetricsRegistry()
        engine = SearchEngine(city_names, backend="sequential",
                              metrics=registry)
        engine.search(city_names[0], 1)
        assert engine.metrics is registry
        assert registry.timers()["scan.search"]["calls"] == 1

    def test_observe_off_means_no_registry_and_no_timers(self, city_names):
        engine = SearchEngine(city_names)
        engine.search(city_names[0], 1)
        assert engine.metrics is None
        assert dict(engine.last_report.timers) == {}


class TestOverheadGuard:
    def test_default_engine_overhead_under_five_percent(self, city_names):
        # The redesigned API must stay near-zero-cost when nobody asks
        # for reports: counters flush once per search and the report is
        # built lazily. Guard the engine wrapper against regressing.
        queries = list(city_names[:40])
        plain = SequentialScanSearcher(city_names, kernel="bitparallel",
                                       order="length")
        engine = SearchEngine(city_names, backend="sequential")

        def measure(call):
            best = float("inf")
            for _ in range(5):
                started = time.perf_counter()
                for query in queries:
                    call(query, 2)
                best = min(best, time.perf_counter() - started)
            return best

        measure(plain.search)                # warm both paths up
        measure(engine.search)
        plain_time = measure(plain.search)
        engine_time = measure(engine.search)
        # 5% relative, plus a small absolute allowance so scheduler
        # noise on a tiny dataset cannot flake the build
        assert engine_time <= plain_time * 1.05 + 0.002, (
            f"engine overhead too high: {engine_time:.6f}s vs "
            f"{plain_time:.6f}s plain"
        )
