"""Unit tests for the updatable (main + delta + tombstones) index."""

import pytest

from repro.core.sequential import SequentialScanSearcher
from repro.core.updatable import UpdatableIndex
from repro.exceptions import ReproError


def assert_matches_scratch(index: UpdatableIndex, contents: list[str],
                           queries=("Bern", "Ulms", "x")):
    """The invariant: results equal a scratch-built search."""
    reference = SequentialScanSearcher(contents, kernel="reference")
    for query in queries:
        for k in (0, 1, 2):
            assert index.search(query, k) == reference.search(query, k), \
                (query, k, contents)


class TestBasicUpdates:
    def test_insert_is_visible(self):
        index = UpdatableIndex(["Bern"])
        index.insert("Berlin")
        assert "Berlin" in index
        assert_matches_scratch(index, ["Bern", "Berlin"])

    def test_remove_is_invisible(self):
        index = UpdatableIndex(["Bern", "Ulm"])
        index.remove("Ulm")
        assert "Ulm" not in index
        assert_matches_scratch(index, ["Bern"])

    def test_remove_missing_raises(self):
        index = UpdatableIndex(["Bern"])
        with pytest.raises(ReproError):
            index.remove("Ulm")

    def test_duplicate_handling(self):
        index = UpdatableIndex(["Ulm", "Ulm"])
        index.remove("Ulm")
        assert index.count("Ulm") == 1
        index.remove("Ulm")
        assert index.count("Ulm") == 0
        with pytest.raises(ReproError):
            index.remove("Ulm")

    def test_empty_string_rejected(self):
        with pytest.raises(ReproError):
            UpdatableIndex([""])
        index = UpdatableIndex()
        with pytest.raises(ReproError):
            index.insert("")

    def test_len_tracks_multiset(self):
        index = UpdatableIndex(["a", "a", "b"])
        assert len(index) == 3
        index.remove("a")
        assert len(index) == 2
        index.insert("c")
        assert len(index) == 3


class TestDeltaAndTombstones:
    def test_insert_lands_in_delta(self):
        index = UpdatableIndex(["x" + str(i) for i in range(100)])
        index.insert("fresh")
        assert index.delta_size == 1

    def test_remove_of_main_string_tombstones(self):
        index = UpdatableIndex(["x" + str(i) for i in range(100)])
        index.remove("x5")
        assert index.tombstone_count == 1
        assert "x5" not in index

    def test_insert_cancels_tombstone(self):
        index = UpdatableIndex(["x" + str(i) for i in range(100)])
        index.remove("x5")
        index.insert("x5")
        assert index.tombstone_count == 0
        assert "x5" in index

    def test_remove_of_delta_string_avoids_tombstone(self):
        index = UpdatableIndex(["x" + str(i) for i in range(100)])
        index.insert("fresh")
        index.remove("fresh")
        assert index.delta_size == 0
        assert index.tombstone_count == 0

    def test_churn_triggers_merge(self):
        index = UpdatableIndex([f"s{i:03d}" for i in range(40)],
                               merge_threshold=0.25)
        for i in range(40):
            index.insert(f"new{i:03d}")
        assert index.merges >= 1
        assert index.delta_size < 40

    def test_manual_merge(self):
        index = UpdatableIndex(["a", "b"])
        index.insert("c")
        index.merge()
        assert index.delta_size == 0
        assert index.tombstone_count == 0
        assert_matches_scratch(index, ["a", "b", "c"],
                               queries=("a", "c", "zz"))

    def test_invalid_threshold(self):
        with pytest.raises(ReproError):
            UpdatableIndex(merge_threshold=0.0)


class TestEquivalenceUnderChurn:
    def test_random_update_stream_stays_correct(self):
        import random

        rng = random.Random(77)
        contents: list[str] = []
        index = UpdatableIndex(merge_threshold=0.3)
        alphabet = "abc"
        for step in range(300):
            if contents and rng.random() < 0.4:
                victim = rng.choice(contents)
                contents.remove(victim)
                index.remove(victim)
            else:
                fresh = "".join(
                    rng.choice(alphabet)
                    for _ in range(rng.randint(1, 6))
                )
                contents.append(fresh)
                index.insert(fresh)
            if step % 50 == 49:
                assert_matches_scratch(index, contents,
                                       queries=("ab", "caba"))
        assert len(index) == len(contents)
