"""Unit tests for result verification."""

import pytest

from repro.core.result import Match, ResultSet
from repro.core.verification import verify_result_sets
from repro.exceptions import VerificationError


def result_set(*rows, queries=None):
    queries = queries or [f"q{i}" for i in range(len(rows))]
    return ResultSet(queries, list(rows))


class TestVerifyResultSets:
    def test_identical_sets_pass(self):
        a = result_set([Match("x", 1)], [])
        b = result_set([Match("x", 1)], [])
        verify_result_sets(a, b)  # no exception

    def test_missing_match_detected(self):
        reference = result_set([Match("x", 1)])
        candidate = result_set([])
        with pytest.raises(VerificationError) as error:
            verify_result_sets(reference, candidate,
                               candidate_name="broken")
        assert "broken" in str(error.value)
        assert error.value.missing == {"x"}
        assert error.value.spurious == frozenset()

    def test_spurious_match_detected(self):
        reference = result_set([])
        candidate = result_set([Match("ghost", 0)])
        with pytest.raises(VerificationError) as error:
            verify_result_sets(reference, candidate)
        assert error.value.spurious == {"ghost"}

    def test_wrong_distance_detected(self):
        reference = result_set([Match("x", 1)])
        candidate = result_set([Match("x", 2)])
        with pytest.raises(VerificationError) as error:
            verify_result_sets(reference, candidate)
        assert "distance" in str(error.value)

    def test_wrong_distance_tolerated_when_disabled(self):
        reference = result_set([Match("x", 1)])
        candidate = result_set([Match("x", 2)])
        verify_result_sets(reference, candidate, check_distances=False)

    def test_different_queries_detected(self):
        reference = ResultSet(["q1"], [[]])
        candidate = ResultSet(["q2"], [[]])
        with pytest.raises(VerificationError):
            verify_result_sets(reference, candidate)

    def test_error_reports_first_differing_query(self):
        reference = ResultSet(["fine", "bad"],
                              [[Match("a", 0)], [Match("b", 0)]])
        candidate = ResultSet(["fine", "bad"],
                              [[Match("a", 0)], []])
        with pytest.raises(VerificationError) as error:
            verify_result_sets(reference, candidate)
        assert "bad" in str(error.value)

    def test_aggregates_across_queries(self):
        reference = result_set([Match("x", 0)], [Match("y", 0)])
        candidate = result_set([], [Match("z", 0)])
        with pytest.raises(VerificationError) as error:
            verify_result_sets(reference, candidate)
        assert error.value.missing == {"x", "y"}
        assert error.value.spurious == {"z"}

    def test_empty_sets_pass(self):
        verify_result_sets(ResultSet([], []), ResultSet([], []))


class TestVerifyAgainstReference:
    DATASET = ["Berlin", "Bern", "Ulm", "Hamburg"]

    def test_honest_searcher_passes_and_returns_results(self):
        from repro.core.sequential import SequentialScanSearcher
        from repro.core.verification import verify_against_reference
        from repro.data.workload import Workload

        workload = Workload(("Bern", "Hamburk"), 1, "gate")
        results = verify_against_reference(
            SequentialScanSearcher(self.DATASET, kernel="bitparallel"),
            self.DATASET, workload,
        )
        assert results.strings_for(0) == ("Bern",)
        assert results.strings_for(1) == ("Hamburg",)

    def test_broken_searcher_is_caught(self):
        from repro.core.sequential import SequentialScanSearcher
        from repro.core.verification import verify_against_reference
        from repro.data.workload import Workload

        class DropsEverything(SequentialScanSearcher):
            def search(self, query, k):
                return []

        workload = Workload(("Bern",), 1, "gate")
        with pytest.raises(VerificationError) as error:
            verify_against_reference(
                DropsEverything(self.DATASET), self.DATASET, workload,
                candidate_name="broken",
            )
        assert "broken" in str(error.value)
