"""Unit tests for the sequential scan searcher."""

import pytest

from repro.core.sequential import KERNELS, SequentialScanSearcher
from repro.distance.levenshtein import edit_distance
from repro.exceptions import ReproError
from repro.filters.base import FilterChain
from repro.filters.frequency import FrequencyVectorFilter
from repro.filters.length import LengthFilter

DATASET = ["Berlin", "Bern", "Ulm", "Hamburg", "Bremen", "Bern"]


def brute_force(query, k):
    return sorted({s for s in DATASET if edit_distance(query, s) <= k})


class TestKernels:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_every_kernel_equals_brute_force(self, kernel):
        searcher = SequentialScanSearcher(DATASET, kernel=kernel)
        for query in ("Bern", "Berlln", "Ul", "zzz", "Hamburg"):
            for k in (0, 1, 2, 3):
                actual = [m.string for m in searcher.search(query, k)]
                assert actual == brute_force(query, k), (kernel, query, k)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_distances_are_exact(self, kernel):
        searcher = SequentialScanSearcher(DATASET, kernel=kernel)
        for match in searcher.search("Bermen", 2):
            assert match.distance == edit_distance("Bermen", match.string)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ReproError):
            SequentialScanSearcher(DATASET, kernel="quantum")

    def test_duplicates_reported_once(self):
        searcher = SequentialScanSearcher(DATASET)
        matches = searcher.search("Bern", 0)
        assert [m.string for m in matches] == ["Bern"]


class TestLengthOrdering:
    def test_sorted_scan_equals_plain_scan(self):
        plain = SequentialScanSearcher(DATASET, kernel="bitparallel")
        ordered = SequentialScanSearcher(DATASET, kernel="bitparallel",
                                         order="length")
        for query in ("Bern", "B", "Hamburg!", ""):
            for k in (0, 1, 2):
                assert ordered.search(query, k) == plain.search(query, k)

    def test_window_restricts_candidates(self):
        ordered = SequentialScanSearcher(DATASET, order="length")
        window = ordered._candidates("Ulm", 1)
        assert all(2 <= len(s) <= 4 for s in window)

    def test_unknown_order_rejected(self):
        with pytest.raises(ReproError):
            SequentialScanSearcher(DATASET, order="alphabet")


class TestPrefilter:
    def test_sound_prefilter_preserves_results(self):
        chain = FilterChain([LengthFilter(),
                             FrequencyVectorFilter("AEIOU")])
        filtered = SequentialScanSearcher(DATASET, kernel="banded",
                                          prefilter=chain)
        plain = SequentialScanSearcher(DATASET, kernel="banded")
        for query in ("Bern", "Bremen", "Ulm"):
            for k in (0, 1, 2):
                assert filtered.search(query, k) == plain.search(query, k)

    def test_prefilter_reduces_kernel_work(self):
        chain = FilterChain([LengthFilter()])
        searcher = SequentialScanSearcher(DATASET, kernel="banded",
                                          prefilter=chain)
        searcher.search("Ulm", 0)
        assert chain.stats.rejected > 0


class TestValidation:
    def test_empty_dataset_is_legal(self):
        searcher = SequentialScanSearcher([])
        assert searcher.search("anything", 3) == []

    def test_empty_string_in_dataset_rejected(self):
        with pytest.raises(ReproError):
            SequentialScanSearcher(["ok", ""])

    def test_name_reflects_configuration(self):
        searcher = SequentialScanSearcher(DATASET, kernel="banded",
                                          order="length")
        assert "banded" in searcher.name
        assert "sort" in searcher.name

    def test_dataset_property(self):
        assert SequentialScanSearcher(["a"]).dataset == ("a",)


class TestWorkloadExecution:
    def test_run_workload_rows_in_order(self, city_workload, city_names):
        searcher = SequentialScanSearcher(city_names)
        results = searcher.run_workload(city_workload)
        assert results.queries == city_workload.queries
        for index, query in enumerate(results.queries):
            expected = searcher.search(query, city_workload.k)
            assert list(results.matches_for(index)) == expected

    def test_run_workload_with_runner(self, city_workload, city_names):
        from repro.parallel.executor import ThreadPoolRunner

        searcher = SequentialScanSearcher(city_names)
        serial = searcher.run_workload(city_workload)
        threaded = searcher.run_workload(city_workload,
                                         ThreadPoolRunner(threads=4))
        assert serial == threaded


class TestPeqCache:
    """The bitparallel kernel builds each query's peq table once."""

    def test_repeated_queries_reuse_the_table(self, monkeypatch):
        import repro.core.sequential as sequential

        calls = []
        original = sequential.build_peq

        def counting_build_peq(pattern):
            calls.append(pattern)
            return original(pattern)

        monkeypatch.setattr(sequential, "build_peq", counting_build_peq)
        searcher = SequentialScanSearcher(DATASET, kernel="bitparallel")
        for _ in range(5):
            searcher.search("Bern", 2)
            searcher.search("Hamburg", 1)
        assert calls.count("Bern") == 1
        assert calls.count("Hamburg") == 1

    def test_cached_results_stay_identical(self):
        searcher = SequentialScanSearcher(DATASET, kernel="bitparallel")
        first = searcher.search("Bermen", 2)
        for _ in range(3):
            assert searcher.search("Bermen", 2) == first
        assert [m.string for m in first] == brute_force("Bermen", 2)

    def test_cache_is_bounded(self):
        from repro.core.sequential import PEQ_CACHE_SIZE

        searcher = SequentialScanSearcher(DATASET, kernel="bitparallel")
        for index in range(PEQ_CACHE_SIZE + 10):
            searcher.search(f"q{index}", 0)
        assert len(searcher._peq_cache) <= PEQ_CACHE_SIZE

    def test_cache_untouched_by_other_kernels(self):
        searcher = SequentialScanSearcher(DATASET, kernel="reference")
        searcher.search("Bern", 1)
        assert searcher._peq_cache == {}
