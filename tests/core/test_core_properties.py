"""Property-based tests: every searcher configuration is equivalent.

The paper's whole methodology hangs on one invariant — any approach,
sequential or indexed, any kernel, any filter, any runner, returns
exactly the brute-force result set. Hypothesis generates the datasets
and workloads; this file asserts the invariant across the configuration
matrix.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.indexed import IndexedSearcher
from repro.core.problem import SimilaritySearchProblem
from repro.core.sequential import KERNELS, SequentialScanSearcher
from repro.filters.base import FilterChain
from repro.filters.frequency import FrequencyVectorFilter
from repro.filters.length import LengthFilter
from repro.filters.qgram import QGramCountFilter

datasets = st.lists(
    st.text(alphabet="abce", min_size=1, max_size=8),
    min_size=1, max_size=10,
)
queries = st.text(alphabet="abcde", max_size=8)
thresholds = st.integers(min_value=0, max_value=3)


@settings(max_examples=50)
@given(datasets, queries, thresholds)
def test_all_sequential_kernels_equal_brute_force(dataset, query, k):
    problem = SimilaritySearchProblem(dataset)
    expected = problem.solve_brute_force(query, k)
    for kernel in KERNELS:
        searcher = SequentialScanSearcher(dataset, kernel=kernel)
        actual = [m.string for m in searcher.search(query, k)]
        assert actual == expected, kernel


@settings(max_examples=50)
@given(datasets, queries, thresholds)
def test_all_indexes_equal_brute_force(dataset, query, k):
    problem = SimilaritySearchProblem(dataset)
    expected = problem.solve_brute_force(query, k)
    for kind in ("trie", "compressed", "qgram"):
        searcher = IndexedSearcher(dataset, index=kind)
        actual = [m.string for m in searcher.search(query, k)]
        assert actual == expected, kind


@settings(max_examples=50)
@given(datasets, queries, thresholds)
def test_sorted_scan_equals_brute_force(dataset, query, k):
    problem = SimilaritySearchProblem(dataset)
    searcher = SequentialScanSearcher(dataset, kernel="bitparallel",
                                      order="length")
    actual = [m.string for m in searcher.search(query, k)]
    assert actual == problem.solve_brute_force(query, k)


@settings(max_examples=50)
@given(datasets, queries, thresholds)
def test_filtered_scan_equals_brute_force(dataset, query, k):
    problem = SimilaritySearchProblem(dataset)
    chain = FilterChain([
        LengthFilter(),
        FrequencyVectorFilter("ae"),
        QGramCountFilter(q=2),
    ])
    searcher = SequentialScanSearcher(dataset, kernel="banded",
                                      prefilter=chain)
    actual = [m.string for m in searcher.search(query, k)]
    assert actual == problem.solve_brute_force(query, k)


@settings(max_examples=40)
@given(datasets, queries, thresholds)
def test_frequency_pruned_index_equals_brute_force(dataset, query, k):
    problem = SimilaritySearchProblem(dataset)
    searcher = IndexedSearcher(dataset, index="compressed",
                               frequency_pruning=True,
                               tracked_symbols="abce")
    actual = [m.string for m in searcher.search(query, k)]
    assert actual == problem.solve_brute_force(query, k)
