"""Unit tests for top-k search."""

import pytest

from repro.core.indexed import IndexedSearcher
from repro.core.sequential import SequentialScanSearcher
from repro.core.topk import nearest, search_topk
from repro.distance.levenshtein import edit_distance
from repro.exceptions import ReproError

DATASET = ["Bern", "Berlin", "Bergen", "Bremen", "Ulm", "Hamburg"]


def brute_topk(query, count):
    ranked = sorted(
        set(DATASET), key=lambda s: (edit_distance(query, s), s)
    )
    return ranked[:count]


class TestSearchTopk:
    def test_matches_brute_force_ranking(self):
        searcher = SequentialScanSearcher(DATASET)
        for query in ("Berm", "Hamborg", "U", "zzzzz"):
            for count in (1, 2, 4, 6):
                actual = [m.string
                          for m in search_topk(searcher, query, count)]
                assert actual == brute_topk(query, count), (query, count)

    def test_works_on_indexed_backend(self):
        indexed = IndexedSearcher(DATASET, index="compressed")
        sequential = SequentialScanSearcher(DATASET)
        for query in ("Berm", "Ulms"):
            assert search_topk(indexed, query, 3) == \
                search_topk(sequential, query, 3)

    def test_distances_are_exact_and_sorted(self):
        searcher = SequentialScanSearcher(DATASET)
        matches = search_topk(searcher, "Bermen", 4)
        distances = [m.distance for m in matches]
        assert distances == sorted(distances)
        for match in matches:
            assert match.distance == edit_distance("Bermen", match.string)

    def test_count_larger_than_dataset(self):
        searcher = SequentialScanSearcher(["a", "b"])
        assert len(search_topk(searcher, "c", 10)) == 2

    def test_empty_dataset(self):
        searcher = SequentialScanSearcher([])
        assert search_topk(searcher, "x", 3) == []

    def test_invalid_count(self):
        searcher = SequentialScanSearcher(DATASET)
        with pytest.raises(ReproError):
            search_topk(searcher, "x", 0)

    def test_max_k_ceiling_respected(self):
        searcher = SequentialScanSearcher(["aaaaaaaaaa"])
        matches = search_topk(searcher, "z", 5, max_k=2)
        assert matches == []  # nothing within the ceiling

    def test_exact_match_found_at_k_zero(self):
        searcher = SequentialScanSearcher(DATASET)
        (top,) = search_topk(searcher, "Ulm", 1)
        assert top.string == "Ulm"
        assert top.distance == 0


class TestNearest:
    def test_nearest_string(self):
        searcher = SequentialScanSearcher(DATASET)
        assert nearest(searcher, "Berm").string == "Bern"

    def test_nearest_on_empty_dataset(self):
        assert nearest(SequentialScanSearcher([]), "x") is None
