"""Unit tests for the SearchEngine facade."""

import pytest

from repro.core.engine import SearchEngine
from repro.core.sequential import SequentialScanSearcher
from repro.data.workload import Workload
from repro.exceptions import ReproError


class TestBackendSelection:
    def test_default_plan_is_the_cheapest_feasible(self, city_names):
        plan = SearchEngine(city_names).default_plan
        feasible = [e for e in plan.estimates if e.feasible]
        assert plan.strategy == min(feasible,
                                    key=lambda e: e.cost).strategy

    def test_default_plan_tracks_the_regime(self, city_names,
                                            dna_reads):
        for corpus in (city_names, dna_reads):
            plan = SearchEngine(corpus).default_plan
            assert "regime" in plan.reason
            assert not plan.forced

    def test_choice_is_a_deprecated_view_of_the_plan(self, city_names):
        engine = SearchEngine(city_names)
        with pytest.warns(DeprecationWarning, match="default_plan"):
            choice = engine.choice
        assert choice.backend == engine.default_plan.strategy
        assert choice.reason == engine.default_plan.reason

    def test_choice_sees_the_compiled_backend(self, city_names):
        # Regression: EngineChoice used to be blind to the compiled
        # backend; as a plan view it reports every strategy.
        engine = SearchEngine(city_names, backend="compiled")
        with pytest.warns(DeprecationWarning):
            assert engine.choice.backend == "compiled"

    def test_forced_backends(self, city_names):
        forced = SearchEngine(city_names, backend="indexed")
        assert forced.default_plan.strategy == "indexed"
        assert forced.default_plan.reason == "forced by caller"
        assert forced.default_plan.forced

    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError):
            SearchEngine(["a"], backend="gpu")

    def test_empty_dataset_defaults_to_sequential(self):
        engine = SearchEngine([])
        assert engine.default_plan.strategy == "sequential"
        assert isinstance(engine.searcher, SequentialScanSearcher)


class TestSearch:
    def test_search_results_match_brute_force(self, city_names):
        from repro.distance.levenshtein import edit_distance

        engine = SearchEngine(city_names)
        query = city_names[0]
        expected = sorted(
            {s for s in city_names if edit_distance(query, s) <= 1}
        )
        assert [m.string for m in engine.search(query, 1)] == expected

    def test_both_backends_agree(self, city_names):
        sequential = SearchEngine(city_names, backend="sequential")
        indexed = SearchEngine(city_names, backend="indexed")
        for query in city_names[:5]:
            assert sequential.search(query, 2) == indexed.search(query, 2)

    def test_timed_workload(self, city_names):
        engine = SearchEngine(city_names)
        workload = Workload(tuple(city_names[:5]), 1, "engine-test")
        results, seconds = engine.timed_workload(workload)
        assert len(results) == 5
        assert seconds > 0

    def test_run_workload_through_runner(self, city_names):
        from repro.parallel.executor import ThreadPoolRunner

        workload = Workload(tuple(city_names[:6]), 1, "engine-test")
        plain = SearchEngine(city_names).run_workload(workload)
        threaded = SearchEngine(
            city_names, runner=ThreadPoolRunner(threads=3)
        ).run_workload(workload)
        assert plain == threaded


class TestBatchPath:
    def test_indexed_backend_is_served_by_the_flat_trie(self, dna_reads):
        engine = SearchEngine(dna_reads, backend="indexed")
        assert engine.searcher.kind == "flat"
        assert engine.searcher.flat_trie is not None

    def test_search_many_equals_per_query_loop(self, dna_reads):
        engine = SearchEngine(dna_reads)
        queries = [dna_reads[0], dna_reads[1], dna_reads[0], "ACGT"]
        results = engine.search_many(queries, 4)
        assert results.queries == tuple(queries)
        assert [list(row) for row in results.rows] == [
            engine.search(query, 4) for query in queries
        ]

    def test_search_many_indexed_reports_batch_stats(self, dna_reads):
        engine = SearchEngine(dna_reads)
        assert engine.last_report is None
        engine.search_many([dna_reads[0]] * 4 + [dna_reads[1]], 2)
        batch = engine.last_report.batch
        assert batch.queries_seen == 5
        assert batch.unique_queries == 2
        assert batch.deduplicated == 3

    def test_search_many_agrees_across_backends(self, dna_reads):
        queries = [dna_reads[0], "ACGTACGT", dna_reads[2]]
        indexed = SearchEngine(dna_reads, backend="indexed")
        compiled = SearchEngine(dna_reads, backend="compiled")
        sequential = SearchEngine(dna_reads, backend="sequential")
        expected = sequential.search_many(queries, 4)
        assert indexed.search_many(queries, 4) == expected
        assert compiled.search_many(queries, 4) == expected
