"""Contract tests for the Searcher base class / workload execution."""

from repro.core.result import Match
from repro.core.searcher import Searcher
from repro.data.workload import Workload
from repro.parallel.executor import ThreadPoolRunner


class RecordingSearcher(Searcher):
    """A deterministic stand-in that logs every search call."""

    name = "recording"

    def __init__(self):
        self.calls: list[tuple[str, int]] = []

    def search(self, query: str, k: int) -> list[Match]:
        self.calls.append((query, k))
        # Match the query's reverse at distance k — arbitrary but
        # deterministic, so ordering is observable.
        return [Match(query[::-1], k)]


class TestRunWorkloadContract:
    def test_rows_follow_workload_order(self):
        searcher = RecordingSearcher()
        workload = Workload(("q1", "q2", "q3"), 2, "order")
        results = searcher.run_workload(workload)
        assert results.queries == ("q1", "q2", "q3")
        assert results.strings_for(0) == ("1q",)
        assert results.strings_for(2) == ("3q",)

    def test_threshold_propagates_to_every_call(self):
        searcher = RecordingSearcher()
        workload = Workload(("a", "b"), 7, "k-prop")
        searcher.run_workload(workload)
        assert searcher.calls == [("a", 7), ("b", 7)]

    def test_runner_injection_preserves_rows(self):
        serial = RecordingSearcher()
        threaded = RecordingSearcher()
        workload = Workload(tuple(f"q{i}" for i in range(20)), 1, "run")
        expected = serial.run_workload(workload)
        actual = threaded.run_workload(workload,
                                       ThreadPoolRunner(threads=4))
        assert actual == expected

    def test_empty_workload(self):
        searcher = RecordingSearcher()
        results = searcher.run_workload(Workload((), 1, "empty"))
        assert len(results) == 0
        assert searcher.calls == []

    def test_duplicate_queries_each_get_a_row(self):
        searcher = RecordingSearcher()
        workload = Workload(("same", "same"), 0, "dups")
        results = searcher.run_workload(workload)
        assert len(results) == 2
        assert len(searcher.calls) == 2
