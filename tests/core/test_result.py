"""Unit tests for result values."""

import pytest

from repro.core.result import Match, ResultSet


class TestMatch:
    def test_ordering_by_string_then_distance(self):
        assert Match("a", 2) < Match("b", 0)
        assert Match("a", 1) < Match("a", 2)

    def test_equality(self):
        assert Match("x", 1) == Match("x", 1)
        assert Match("x", 1) != Match("x", 2)


class TestResultSet:
    def test_rows_are_sorted_on_construction(self):
        results = ResultSet(["q"], [[Match("b", 1), Match("a", 0)]])
        assert results.strings_for(0) == ("a", "b")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ResultSet(["q1", "q2"], [[]])

    def test_equality_same_content(self):
        a = ResultSet(["q"], [[Match("x", 1)]])
        b = ResultSet(["q"], [[Match("x", 1)]])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_different_distance(self):
        a = ResultSet(["q"], [[Match("x", 1)]])
        b = ResultSet(["q"], [[Match("x", 2)]])
        assert a != b

    def test_inequality_different_query_order(self):
        a = ResultSet(["q1", "q2"], [[], []])
        b = ResultSet(["q2", "q1"], [[], []])
        assert a != b

    def test_iteration(self):
        results = ResultSet(["q1", "q2"], [[Match("a", 0)], []])
        pairs = list(results)
        assert pairs[0] == ("q1", (Match("a", 0),))
        assert pairs[1] == ("q2", ())

    def test_total_matches(self):
        results = ResultSet(["q1", "q2"],
                            [[Match("a", 0), Match("b", 1)], []])
        assert results.total_matches == 2

    def test_as_mapping_deprecated_shape_still_works(self):
        results = ResultSet(["q1"], [[Match("a", 0)]])
        with pytest.warns(DeprecationWarning):
            assert results.as_mapping() == {"q1": ("a",)}

    def test_by_query_keeps_match_rows(self):
        results = ResultSet(["q1", "q2"], [[Match("a", 0)], []])
        assert results.by_query() == {
            "q1": (Match("a", 0),),
            "q2": (),
        }

    def test_by_query_last_row_wins_for_repeats(self):
        results = ResultSet(["q", "q"], [[Match("a", 0)], []])
        assert results.by_query() == {"q": ()}

    def test_flat_merges_and_dedups(self):
        results = ResultSet(
            ["q1", "q2"],
            [[Match("b", 1), Match("a", 0)], [Match("a", 0)]],
        )
        assert results.flat() == (Match("a", 0), Match("b", 1))

    def test_repeated_queries_keep_separate_rows(self):
        results = ResultSet(["q", "q"], [[Match("a", 0)], []])
        assert len(results) == 2
        assert results.strings_for(0) == ("a",)
        assert results.strings_for(1) == ()

    def test_repr(self):
        results = ResultSet(["q"], [[Match("a", 0)]])
        assert "queries=1" in repr(results)
