"""Unit tests for watermark shedding and the drain-rate estimator."""

import pytest

from repro.exceptions import ReproError
from repro.traffic.shedding import (
    SHED_COUNTERS,
    DrainRateEstimator,
    LoadShedder,
    ShedDecision,
    Watermarks,
)


class TestWatermarks:
    def test_defaults_ordered(self):
        marks = Watermarks()
        assert 0 < marks.shed_depth <= marks.reject_depth

    def test_validation(self):
        with pytest.raises(ReproError):
            Watermarks(shed_depth=0)
        with pytest.raises(ReproError):
            Watermarks(shed_depth=10, reject_depth=5)


class TestDrainRateEstimator:
    def test_default_before_observations(self):
        estimator = DrainRateEstimator(default_seconds=0.1)
        assert estimator.seconds_per_request() == 0.1
        assert estimator.observations == 0

    def test_first_observation_replaces_default(self):
        estimator = DrainRateEstimator()
        estimator.observe(0.02)
        assert estimator.seconds_per_request() == pytest.approx(0.02)

    def test_ewma_smooths_toward_new_observations(self):
        estimator = DrainRateEstimator(alpha=0.5)
        estimator.observe(0.1)
        estimator.observe(0.2)
        assert estimator.seconds_per_request() == pytest.approx(0.15)

    def test_retry_after_scales_with_depth(self):
        estimator = DrainRateEstimator()
        estimator.observe(0.01)
        assert estimator.retry_after_ms(10) \
            == pytest.approx(10 * 0.01 * 1000)

    def test_retry_after_floor_is_one_request(self):
        estimator = DrainRateEstimator()
        estimator.observe(0.01)
        assert estimator.retry_after_ms(0) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ReproError):
            DrainRateEstimator(alpha=0)
        with pytest.raises(ReproError):
            DrainRateEstimator(alpha=1.5)
        with pytest.raises(ReproError):
            DrainRateEstimator(default_seconds=0)
        with pytest.raises(ReproError):
            DrainRateEstimator().observe(-1)


class TestLoadShedder:
    def make(self):
        return LoadShedder(Watermarks(shed_depth=4, reject_depth=8))

    def test_admit_below_shed_watermark(self):
        shedder = self.make()
        for depth in range(4):
            assert shedder.decide(depth).action == "admit"

    def test_degrade_between_watermarks(self):
        shedder = self.make()
        for depth in range(4, 8):
            decision = shedder.decide(depth)
            assert decision.action == "degrade"
            assert decision.retry_after_ms is None

    def test_reject_at_and_above_reject_watermark(self):
        shedder = self.make()
        decision = shedder.decide(8)
        assert decision.action == "reject"
        assert decision.retry_after_ms is not None
        assert decision.retry_after_ms > 0

    def test_reject_hint_grows_with_excess_depth(self):
        shedder = self.make()
        shedder.observe_completion(0.01)
        shallow = shedder.decide(8).retry_after_ms
        deep = shedder.decide(20).retry_after_ms
        assert deep > shallow

    def test_decision_carries_evidence(self):
        decision = self.make().decide(5)
        assert decision.queue_depth == 5
        assert not decision.admitted

    def test_counters_track_decisions(self):
        shedder = self.make()
        for depth in (0, 1, 5, 6, 9):
            shedder.decide(depth)
        counters = shedder.counters_snapshot()
        assert set(counters) == set(SHED_COUNTERS)
        assert counters["service.shed.admitted"] == 2
        assert counters["service.shed.degraded"] == 2
        assert counters["service.shed.rejected"] == 1

    def test_completion_feeds_the_estimator(self):
        shedder = self.make()
        shedder.observe_completion(0.5)
        assert shedder.estimator.seconds_per_request() \
            == pytest.approx(0.5)

    def test_decision_is_a_plain_value(self):
        assert ShedDecision(action="admit", queue_depth=0).admitted
