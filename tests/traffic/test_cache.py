"""Unit tests for the hot-query result cache."""

import pytest

from repro.core.deadline import Deadline
from repro.core.request import SearchOptions, SearchRequest
from repro.exceptions import ReproError
from repro.service.service import ServiceResult
from repro.traffic.cache import CACHE_COUNTERS, ResultCache, cache_key


def make_result(query="Berlino", k=2, status="complete",
                matches=(), verified=True):
    return ServiceResult(query=query, k=k, status=status,
                         matches=tuple(matches), verified=verified,
                         plan="flat", attempts=1)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestKeyNormalization:
    def test_backend_hint_dropped(self):
        assert cache_key(SearchRequest("q", 1, backend="compiled")) \
            == cache_key(SearchRequest("q", 1))

    def test_deadline_dropped(self):
        assert cache_key(SearchRequest("q", 1, deadline=Deadline(5))) \
            == cache_key(SearchRequest("q", 1))

    def test_default_options_explicit_or_implicit(self):
        assert cache_key(SearchRequest("q", 1,
                                       options=SearchOptions())) \
            == cache_key(SearchRequest("q", 1))

    def test_query_and_k_distinguish(self):
        assert cache_key(SearchRequest("q", 1)) \
            != cache_key(SearchRequest("q", 2))
        assert cache_key(SearchRequest("q", 1)) \
            != cache_key(SearchRequest("p", 1))

    def test_hit_across_spellings(self):
        cache = ResultCache()
        result = make_result()
        assert cache.put(SearchRequest("Berlino", 2), result)
        hit = cache.get(SearchRequest("Berlino", 2, backend="compiled",
                                      deadline=Deadline(5)))
        assert hit is result


class TestLRUEviction:
    def test_bounded_at_maxsize(self):
        cache = ResultCache(maxsize=2)
        for i in range(5):
            cache.put(SearchRequest(f"q{i}", 1), make_result(f"q{i}", 1))
        assert len(cache) == 2
        assert cache.counters_snapshot()["service.cache.evictions"] == 3

    def test_least_recently_used_goes_first(self):
        cache = ResultCache(maxsize=2)
        cache.put(SearchRequest("a", 1), make_result("a", 1))
        cache.put(SearchRequest("b", 1), make_result("b", 1))
        assert cache.get(SearchRequest("a", 1)) is not None  # refresh a
        cache.put(SearchRequest("c", 1), make_result("c", 1))  # evicts b
        assert cache.get(SearchRequest("a", 1)) is not None
        assert cache.get(SearchRequest("b", 1)) is None

    def test_restore_overwrites_in_place(self):
        cache = ResultCache(maxsize=2)
        first = make_result()
        second = make_result()
        request = SearchRequest("Berlino", 2)
        cache.put(request, first)
        cache.put(request, second)
        assert len(cache) == 1
        assert cache.get(request) is second

    def test_bad_maxsize_rejected(self):
        with pytest.raises(ReproError):
            ResultCache(maxsize=0)


class TestTTLExpiry:
    def test_expires_after_ttl(self):
        clock = FakeClock()
        cache = ResultCache(ttl_seconds=10.0, clock=clock)
        request = SearchRequest("Berlino", 2)
        cache.put(request, make_result())
        clock.now = 9.9
        assert cache.get(request) is not None
        clock.now = 10.0
        assert cache.get(request) is None
        counters = cache.counters_snapshot()
        assert counters["service.cache.expirations"] == 1
        assert len(cache) == 0

    def test_hit_does_not_refresh_ttl(self):
        clock = FakeClock()
        cache = ResultCache(ttl_seconds=10.0, clock=clock)
        request = SearchRequest("Berlino", 2)
        cache.put(request, make_result())
        clock.now = 9.0
        assert cache.get(request) is not None
        clock.now = 10.5
        assert cache.get(request) is None

    def test_no_ttl_never_expires(self):
        clock = FakeClock()
        cache = ResultCache(clock=clock)
        request = SearchRequest("Berlino", 2)
        cache.put(request, make_result())
        clock.now = 1e9
        assert cache.get(request) is not None

    def test_bad_ttl_rejected(self):
        with pytest.raises(ReproError):
            ResultCache(ttl_seconds=0)


class TestHonestContents:
    @pytest.mark.parametrize("status", ["partial", "candidates"])
    def test_non_complete_results_refused(self, status):
        cache = ResultCache()
        request = SearchRequest("Berlino", 2)
        refused = make_result(status=status, verified=False)
        assert not cache.put(request, refused)
        assert len(cache) == 0
        assert cache.counters_snapshot()["service.cache.skips"] == 1

    def test_degraded_still_complete_hence_cached(self):
        cache = ResultCache()
        request = SearchRequest("Berlino", 2)
        assert cache.put(request, make_result(status="degraded"))


class TestCounterParity:
    def test_all_counters_present_from_birth(self):
        counters = ResultCache().counters_snapshot()
        assert set(counters) == set(CACHE_COUNTERS)
        assert all(value == 0 for value in counters.values())

    def test_hits_and_misses_add_up(self):
        cache = ResultCache()
        hits = misses = 0
        for i in range(20):
            request = SearchRequest(f"q{i % 3}", 1)
            if cache.get(request) is None:
                misses += 1
                cache.put(request, make_result(f"q{i % 3}", 1))
            else:
                hits += 1
        counters = cache.counters_snapshot()
        assert counters["service.cache.hits"] == hits
        assert counters["service.cache.misses"] == misses
        assert counters["service.cache.stores"] == misses
        assert hits + misses == 20


class TestInvalidation:
    def test_invalidate_everything(self):
        cache = ResultCache()
        for i in range(4):
            cache.put(SearchRequest(f"q{i}", 1), make_result(f"q{i}", 1))
        assert cache.invalidate() == 4
        assert len(cache) == 0
        assert cache.counters_snapshot()[
            "service.cache.invalidations"] == 4

    def test_invalidate_by_string_drops_only_matching_entries(self):
        from repro.core.result import Match

        cache = ResultCache()
        cache.put(SearchRequest("a", 1),
                  make_result("a", 1, matches=[Match("Berlin", 1)]))
        cache.put(SearchRequest("b", 1),
                  make_result("b", 1, matches=[Match("Bern", 0)]))
        assert cache.invalidate("Berlin") == 1
        assert cache.get(SearchRequest("a", 1)) is None
        assert cache.get(SearchRequest("b", 1)) is not None
