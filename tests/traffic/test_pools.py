"""Unit tests for the per-shard worker pools and the adaptive sizer."""

import time

import pytest

from repro.core.deadline import Deadline
from repro.core.request import SearchRequest
from repro.core.sequential import SequentialScanSearcher
from repro.exceptions import ReproError
from repro.parallel.adaptive import ManagerRules
from repro.service.sharding import ShardedCorpus
from repro.traffic.pools import (
    AdaptivePoolSizer,
    ShardLoad,
    ShardPools,
)

DATASET = ["Berlin", "Bern", "Bonn", "Ulm", "Hamburg", "Bremen",
           "Dresden", "Berlingen", "Bernburg", "Uelzen"] * 3

QUERIES = ["Berlino", "Bern", "Ulme", "Hamburq", "Dresden"]


def reference_row(query, k):
    return tuple(SequentialScanSearcher(DATASET).search(query, k))


class TestThreadPools:
    def test_results_match_reference_scan(self):
        with ShardPools(DATASET, shards=3) as pools:
            for query in QUERIES:
                result = pools.submit(SearchRequest(query, 2)) \
                    .result(timeout=30)
                assert result.status == "complete"
                assert result.verified
                assert result.matches == reference_row(query, 2)

    def test_batch_drain_amortizes_duplicates(self):
        # A pre-filled queue of duplicates must drain in few batches
        # and the shard executors must dedup the repeated query.
        pools = ShardPools(DATASET, shards=2, batch_limit=16)
        try:
            tickets = [pools.submit(SearchRequest("Berlino", 2))
                       for _ in range(16)]
            for ticket in tickets:
                assert ticket.result(timeout=30).status == "complete"
            counters = pools.counters_snapshot()
            assert counters["pool.served"] == 16
            assert counters["pool.batches"] < counters["pool.batched_tasks"]
        finally:
            pools.close()

    def test_mixed_k_batches_grouped_correctly(self):
        with ShardPools(DATASET, shards=2, batch_limit=8) as pools:
            tickets = [
                pools.submit(SearchRequest(query, k))
                for query in QUERIES for k in (1, 2)
            ]
            for ticket in tickets:
                result = ticket.result(timeout=30)
                assert result.matches \
                    == reference_row(result.query, result.k)

    def test_expired_deadline_yields_partial(self):
        pools = ShardPools(DATASET, shards=2, workers_per_shard=1)
        try:
            # A dead wall-clock deadline cannot wait for any shard.
            ticket = pools.submit(
                SearchRequest("Berlino", 2, deadline=Deadline(0.0)))
            result = ticket.result()
            assert result.status in ("partial", "complete")
            if result.status == "partial":
                assert result.verified
                reference = set(reference_row("Berlino", 2))
                assert set(result.matches) <= reference
        finally:
            pools.close()

    def test_queue_depth_counts_outstanding_requests(self):
        with ShardPools(DATASET, shards=2) as pools:
            assert pools.queue_depth() == 0
            ticket = pools.submit(SearchRequest("Berlino", 2))
            ticket.result(timeout=30)
            deadline = time.monotonic() + 5
            while pools.queue_depth() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert pools.queue_depth() == 0

    def test_empty_shards_resolve_to_empty_rows(self):
        with ShardPools(["Bern"], shards=4) as pools:
            result = pools.submit(SearchRequest("Bern", 0)) \
                .result(timeout=30)
            assert result.status == "complete"
            assert [m.string for m in result.matches] == ["Bern"]

    def test_submit_after_close_raises(self):
        pools = ShardPools(DATASET, shards=2)
        pools.close()
        with pytest.raises(ReproError):
            pools.submit(SearchRequest("Berlino", 2))

    def test_batch_requests_rejected(self):
        with ShardPools(DATASET, shards=2) as pools:
            with pytest.raises(ReproError):
                pools.submit(SearchRequest(("a", "b"), 1))

    def test_accepts_prebuilt_sharded_corpus(self):
        corpus = ShardedCorpus(DATASET, 2)
        with ShardPools(corpus) as pools:
            assert pools.corpus is corpus

    def test_validation(self):
        with pytest.raises(ReproError):
            ShardPools(DATASET, kind="fiber")
        with pytest.raises(ReproError):
            ShardPools(DATASET, workers_per_shard=0)
        with pytest.raises(ReproError):
            ShardPools(DATASET, batch_limit=0)
        with pytest.raises(ReproError):
            ShardPools(DATASET, kind="process")  # needs segment_dir


class TestProcessPools:
    def test_segment_ref_handoff_matches_reference(self, tmp_path):
        pools = ShardPools(DATASET, shards=2, kind="process",
                           segment_dir=str(tmp_path))
        try:
            result = pools.submit(SearchRequest("Berlino", 2)) \
                .result(timeout=60)
            assert result.status == "complete"
            assert result.matches == reference_row("Berlino", 2)
            assert result.plan == "pool[process]"
            # The zero-copy contract: one segment file per shard exists
            # for workers to mmap.
            segments = sorted(p.name for p in tmp_path.iterdir())
            assert segments == ["shard-0000.seg", "shard-0001.seg"]
        finally:
            pools.close()


class TestAdaptivePoolSizer:
    def test_opens_above_70_closes_below_30(self):
        sizer = AdaptivePoolSizer(ManagerRules(max_threads=4))
        sizes = sizer.resize([
            ShardLoad(0, 2, 0.9),   # hot: opens
            ShardLoad(1, 2, 0.5),   # in band: holds
            ShardLoad(2, 2, 0.1),   # cold: closes
        ])
        assert sizes == {0: 3, 1: 2, 2: 1}

    def test_respects_min_and_max(self):
        sizer = AdaptivePoolSizer(
            ManagerRules(min_threads=1, max_threads=2))
        sizes = sizer.resize([
            ShardLoad(0, 2, 1.0),   # hot but already at max
            ShardLoad(1, 1, 0.0),   # cold but already at min
        ])
        assert sizes == {0: 2, 1: 1}

    def test_total_budget_caps_opens_hottest_first(self):
        sizer = AdaptivePoolSizer(ManagerRules(max_threads=8),
                                  total_budget=5)
        sizes = sizer.resize([
            ShardLoad(0, 2, 0.8),
            ShardLoad(1, 2, 0.95),  # hotter: wins the single free slot
        ])
        assert sizes == {0: 2, 1: 3}

    def test_close_frees_budget_for_open(self):
        sizer = AdaptivePoolSizer(ManagerRules(max_threads=8),
                                  total_budget=4)
        sizes = sizer.resize([
            ShardLoad(0, 2, 0.9),
            ShardLoad(1, 2, 0.0),
        ])
        assert sizes == {0: 3, 1: 1}

    def test_one_step_per_fit_damping(self):
        sizer = AdaptivePoolSizer(ManagerRules(max_threads=16))
        sizes = sizer.resize([ShardLoad(0, 1, 1.0)])
        assert sizes == {0: 2}  # +1, never a jump to max

    def test_validation(self):
        with pytest.raises(ReproError):
            AdaptivePoolSizer(total_budget=0)


class TestRefit:
    def test_static_pools_never_resize(self):
        with ShardPools(DATASET, shards=2, workers_per_shard=2,
                        sizer=None) as pools:
            before = pools.workers()
            assert pools.refit() == before
            assert pools.workers() == before

    def test_refit_grows_the_loaded_shard(self):
        sizer = AdaptivePoolSizer(ManagerRules(max_threads=3))
        pools = ShardPools(DATASET, shards=2, workers_per_shard=1,
                           batch_limit=4, sizer=sizer)
        try:
            # Synthesize a skewed observation window instead of racing
            # real work: shard 0 saturated, shard 1 idle.
            pools.refit()  # reset the window
            with pools._lock:
                pools._fit_epoch -= 1.0
                pools._crews[0].busy_seconds += 1.0
            target = pools.refit()
            assert target[0] == 2
            assert target[1] == 1
            deadline = time.monotonic() + 5
            while pools.workers()[0] < 2 \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
            assert pools.workers()[0] == 2
            counters = pools.counters_snapshot()
            assert counters["pool.workers_opened"] == 1
        finally:
            pools.close()

    def test_refit_shrinks_idle_crews_to_minimum(self):
        sizer = AdaptivePoolSizer(ManagerRules(min_threads=1,
                                               max_threads=4))
        pools = ShardPools(DATASET, shards=2, workers_per_shard=3,
                           sizer=sizer)
        try:
            # The window since construction saw no work at all.
            target = pools.refit()
            assert target == {0: 2, 1: 2}  # one step down per fit
            assert pools.counters_snapshot()["pool.workers_closed"] == 2
        finally:
            pools.close()

    def test_loads_report_utilization_in_unit_range(self):
        with ShardPools(DATASET, shards=2) as pools:
            pools.submit(SearchRequest("Berlino", 2)).result(timeout=30)
            for load in pools.loads():
                assert 0.0 <= load.utilization <= 1.0
