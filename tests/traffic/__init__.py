"""Tests for repro.traffic — the open-loop serving layer."""
