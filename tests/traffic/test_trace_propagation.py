"""Trace propagation across the stack's concurrency boundaries.

Each serving layer crosses a boundary that drops thread-local state:
the gateway hops from the event loop into executor threads, process
pools ship work to other *processes*, and the live corpus compacts on
a background thread. These tests pin the contract that one submit (or
one ingest burst) still yields one coherent span tree, and that
tracing enabled-but-unsampled stays on the null fast path.
"""

import asyncio
import os
import time

from repro.core.request import SearchRequest
from repro.live.corpus import LiveCorpus
from repro.obs.events import EventLog
from repro.obs.tracing import Tracer, span_tree, trace_span, use_trace
from repro.service.service import Service
from repro.traffic.gateway import AsyncService
from repro.traffic.pools import ShardPools

DATASET = ["Berlin", "Bern", "Bonn", "Ulm", "Hamburg", "Bremen",
           "Dresden", "Berlingen", "Bernburg", "Uelzen"] * 3


class TestGatewayLadderTrace:
    """asyncio -> thread: one submit, one tree, events stamped."""

    def test_one_submit_yields_one_tree(self):
        tracer = Tracer()
        events = EventLog()
        service = Service(DATASET, shards=2)
        gateway = AsyncService(service, tracer=tracer, events=events)
        result = asyncio.run(gateway.submit("Berlino", 2))
        assert result.status == "complete"
        spans = tracer.spans()
        trace_ids = {span.trace_id for span in spans}
        assert len(trace_ids) == 1
        tree = span_tree(spans)
        assert [root.name for root in tree.roots] == ["gateway.submit"]
        depths = {span.name: depth for depth, span in tree.walk()}
        # The ladder ran in an executor thread, yet its spans sit
        # under the gateway root minted on the event loop.
        assert depths["service.submit"] == 1
        assert any(name.startswith("service.attempt[")
                   and depth == 2 for name, depth in depths.items())
        assert any(name.startswith("shard[") for name in depths)

    def test_event_lines_share_the_submit_trace_id(self):
        tracer = Tracer()
        events = EventLog()
        service = Service(DATASET, shards=2)
        gateway = AsyncService(service, tracer=tracer, events=events)
        asyncio.run(gateway.submit("Berlino", 2))
        trace_id = tracer.spans()[0].trace_id
        kinds = {event["kind"] for event in events.for_trace(trace_id)}
        assert "admission" in kinds
        assert "ladder_rung" in kinds

    def test_untraced_gateway_still_answers(self):
        service = Service(DATASET, shards=2)
        gateway = AsyncService(service)
        result = asyncio.run(gateway.submit("Berlino", 2))
        assert result.status == "complete"


class TestPoolProcessTrace:
    """thread -> process: worker spans rejoin the submitter's tree."""

    def test_worker_spans_parent_under_shard_spans(self, tmp_path):
        tracer = Tracer()
        pools = ShardPools(DATASET, shards=2, kind="process",
                           segment_dir=str(tmp_path))
        try:
            with tracer.root("client.submit"):
                ticket = pools.submit(SearchRequest("Berlino", 2))
            # Spans are recorded before the ticket resolves, so the
            # result is the synchronization point.
            result = ticket.result(timeout=60)
            assert result.status == "complete"
        finally:
            pools.close()
        spans = tracer.spans()
        tree = span_tree(spans)
        assert [root.name for root in tree.roots] == ["client.submit"]
        depths = {span.name: depth for depth, span in tree.walk()}
        shard_depths = [depth for name, depth in depths.items()
                        if name.startswith("pool.shard[")]
        assert shard_depths and all(d == 1 for d in shard_depths)
        assert depths["pool.worker.batch"] == 2
        # The worker span really crossed a process boundary.
        worker = [s for s in spans if s.name == "pool.worker.batch"][0]
        assert worker.pid != os.getpid()

    def test_thread_pools_record_shard_spans(self):
        tracer = Tracer()
        pools = ShardPools(DATASET, shards=2, kind="thread")
        try:
            with tracer.root("client.submit"):
                ticket = pools.submit(SearchRequest("Berlino", 2))
            ticket.result(timeout=60)
        finally:
            pools.close()
        names = {span.name for span in tracer.spans()}
        assert any(name.startswith("pool.shard[") for name in names)
        # In-process crews need no worker-side span: the shard span
        # already covers the scan.
        assert "pool.worker.batch" not in names

    def test_untraced_submit_ships_no_contexts(self, tmp_path):
        pools = ShardPools(DATASET, shards=2, kind="process",
                           segment_dir=str(tmp_path))
        try:
            result = pools.submit(SearchRequest("Berlino", 2)) \
                .result(timeout=60)
            assert result.status == "complete"
        finally:
            pools.close()


class TestBackgroundCompactionTrace:
    """Background compaction spans land in the triggering trace."""

    def test_compaction_span_joins_the_ingest_tree(self):
        tracer = Tracer()
        corpus = LiveCorpus(compaction="background",
                            flush_threshold=2, fanout=2)
        with tracer.root("client.ingest") as root:
            for word in ("Aachen", "Augsburg", "Ansbach", "Altena"):
                corpus.insert(word)
            corpus.drain_compaction()
        spans = tracer.spans()
        by_name = {span.name: span for span in spans}
        assert "live.compaction" in by_name
        compaction = by_name["live.compaction"]
        assert compaction.trace_id == root.trace_id
        tree = span_tree(spans)
        assert [r.name for r in tree.roots] == ["client.ingest"]
        depths = {span.name: depth for depth, span in tree.walk()}
        assert depths["live.compaction"] >= 1
        assert "live.flush" in depths

    def test_untraced_ingest_compacts_quietly(self):
        corpus = LiveCorpus(compaction="background",
                            flush_threshold=2, fanout=2)
        for word in ("Aachen", "Augsburg", "Ansbach", "Altena"):
            corpus.insert(word)
        corpus.drain_compaction()
        assert len(corpus.segment_sizes()) == 1


class TestUnsampledOverhead:
    """Enabled-but-unsampled tracing must stay on the null fast path.

    The strict <=5% p50 acceptance check lives in the benchmarks
    (``repro.obs.regress``); unit tests pin the *mechanism* that makes
    it hold — the shared null span, zero recorded spans — plus a
    deliberately generous wall-clock bound that only catches gross
    regressions (an allocation or lock on the unsampled path).
    """

    def test_unsampled_submit_records_nothing(self):
        tracer = Tracer(sample_rate=0.0)
        service = Service(DATASET, shards=2)
        with use_trace(tracer, tracer.mint()):
            result = service.submit(SearchRequest("Berlino", 2))
        assert result.status == "complete"
        assert tracer.spans() == ()

    def test_unsampled_trace_span_is_the_shared_null(self):
        tracer = Tracer(sample_rate=0.0)
        with use_trace(tracer, tracer.mint()):
            assert trace_span("scan.query") is trace_span("merge")

    def test_unsampled_overhead_is_bounded(self):
        service = Service(DATASET, shards=2)
        request = SearchRequest("Berlino", 2)
        service.submit(request)  # warm caches before timing

        def clocked(repeats=40):
            best = float("inf")
            for _ in range(3):
                started = time.perf_counter()
                for _ in range(repeats):
                    service.submit(request)
                best = min(best, time.perf_counter() - started)
            return best

        baseline = clocked()
        tracer = Tracer(sample_rate=0.0)
        with use_trace(tracer, tracer.mint()):
            traced = clocked()
        # Generous: CI noise dwarfs the real delta; this only trips if
        # the unsampled path grows real per-call work.
        assert traced <= baseline * 3 + 0.05
