"""Unit tests for the asyncio traffic gateway."""

import asyncio

import pytest

from repro.core.request import SearchRequest
from repro.core.sequential import SequentialScanSearcher
from repro.exceptions import ReproError, ServiceOverloaded
from repro.obs.registry import MetricsRegistry
from repro.obs.report import validate_report
from repro.service import Service
from repro.traffic import (
    AsyncService,
    LoadShedder,
    ResultCache,
    ShardPools,
    Watermarks,
)

DATASET = ["Berlin", "Bern", "Bonn", "Ulm", "Hamburg", "Bremen",
           "Dresden", "Berlingen"] * 3


def run(coro):
    return asyncio.run(coro)


def make_gateway(**kwargs):
    service = Service(DATASET, shards=2)
    return AsyncService(service, **kwargs)


class TestSubmit:
    def test_ladder_path_matches_reference(self):
        gateway = make_gateway()
        result = run(gateway.submit("Berlino", 2))
        assert result.status == "complete"
        assert result.matches \
            == tuple(SequentialScanSearcher(DATASET).search("Berlino", 2))

    def test_pool_path_matches_reference(self):
        service = Service(DATASET, shards=2)
        pools = ShardPools(service.corpus)
        try:
            gateway = AsyncService(service, pools=pools)
            result = run(gateway.submit("Berlino", 2))
            assert result.status == "complete"
            assert result.plan == "pool[thread]"
            assert result.matches == tuple(
                SequentialScanSearcher(DATASET).search("Berlino", 2))
        finally:
            pools.close()

    def test_batch_requests_rejected(self):
        gateway = make_gateway()
        with pytest.raises(ReproError):
            run(gateway.submit(SearchRequest(("a", "b"), 1)))


class TestCachePath:
    def test_second_submit_answers_from_cache(self):
        cache = ResultCache()
        gateway = make_gateway(cache=cache)

        async def twice():
            first = await gateway.submit("Berlino", 2)
            second = await gateway.submit("Berlino", 2)
            return first, second

        first, second = run(twice())
        assert second is first
        counters = gateway.counters_snapshot()
        assert counters["service.gateway.cache_answers"] == 1
        assert cache.counters_snapshot()["service.cache.hits"] == 1

    def test_hit_count_parity_with_cache_counters(self):
        cache = ResultCache()
        gateway = make_gateway(cache=cache)

        async def workload():
            for query in ["a", "b", "a", "a", "b", "c"]:
                await gateway.submit(query, 1)

        run(workload())
        gateway_hits = gateway.counters_snapshot()[
            "service.gateway.cache_answers"]
        cache_hits = cache.counters_snapshot()["service.cache.hits"]
        assert gateway_hits == cache_hits == 3

    def test_cache_hit_ignores_backend_and_deadline_spelling(self):
        from repro.core.deadline import Deadline

        cache = ResultCache()
        gateway = make_gateway(cache=cache)

        async def spellings():
            await gateway.submit("Berlino", 2)
            return await gateway.submit("Berlino", 2,
                                        backend="compiled",
                                        deadline=Deadline(5.0))

        run(spellings())
        assert cache.counters_snapshot()["service.cache.hits"] == 1


class TestSheddingPath:
    def make(self):
        return make_gateway(
            shedder=LoadShedder(Watermarks(shed_depth=1, reject_depth=3)))

    def test_degrade_to_floor_is_honestly_labeled(self):
        gateway = self.make()
        gateway._pending = 1  # simulated backlog at decision time
        result = run(gateway.submit("Berlino", 2))
        assert result.status == "candidates"
        assert not result.verified
        assert result.plan == "filter-only[shed]"
        assert gateway.counters_snapshot()[
            "service.gateway.floor_answers"] == 1

    def test_floor_candidates_are_a_superset(self):
        gateway = self.make()
        gateway._pending = 1
        result = run(gateway.submit("Berlino", 2))
        exact = {m.string for m in
                 SequentialScanSearcher(DATASET).search("Berlino", 2)}
        assert exact <= {m.string for m in result.matches}

    def test_reject_with_retry_after(self):
        gateway = self.make()
        gateway._pending = 3
        with pytest.raises(ServiceOverloaded) as caught:
            run(gateway.submit("Berlino", 2))
        assert caught.value.retry_after_ms is not None
        assert caught.value.retry_after_ms > 0
        assert gateway.counters_snapshot()[
            "service.gateway.rejections"] == 1

    def test_cache_hits_bypass_shedding(self):
        cache = ResultCache()
        gateway = make_gateway(
            cache=cache,
            shedder=LoadShedder(Watermarks(shed_depth=1, reject_depth=2)))
        run(gateway.submit("Berlino", 2))
        gateway._pending = 5  # deep backlog — but the answer is cached
        result = run(gateway.submit("Berlino", 2))
        assert result.status == "complete"

    def test_completions_feed_the_drain_estimator(self):
        shedder = LoadShedder(Watermarks())
        gateway = make_gateway(shedder=shedder)
        run(gateway.submit("Berlino", 2))
        assert shedder.estimator.observations == 1


class TestSubmitMany:
    def test_results_in_request_order(self):
        gateway = make_gateway()
        requests = [SearchRequest(q, 1) for q in ["Bern", "Ulm", "Bonn"]]
        results = run(gateway.submit_many(requests))
        assert [r.query for r in results] == ["Bern", "Ulm", "Bonn"]

    def test_open_loop_arrivals_schedule_launches(self):
        gateway = make_gateway()
        requests = [SearchRequest("Bern", 1) for _ in range(3)]
        results = run(gateway.submit_many(
            requests, arrivals=[0.0, 0.005, 0.01]))
        assert all(r.status == "complete" for r in results)

    def test_rejections_are_returned_not_raised(self):
        gateway = make_gateway(
            shedder=LoadShedder(Watermarks(shed_depth=1, reject_depth=1)))
        gateway._pending = 5
        results = run(gateway.submit_many(
            [SearchRequest("Bern", 1), SearchRequest("Ulm", 1)]))
        assert all(isinstance(r, ServiceOverloaded) for r in results)

    def test_misaligned_arrivals_rejected(self):
        gateway = make_gateway()
        with pytest.raises(ReproError):
            run(gateway.submit_many([SearchRequest("Bern", 1)],
                                    arrivals=[0.0, 1.0]))


class TestObservability:
    def test_gauges_exported_to_registry(self):
        registry = MetricsRegistry()
        cache = ResultCache()
        gateway = make_gateway(cache=cache, metrics=registry)
        run(gateway.submit("Berlino", 2))
        gauges = registry.gauges()
        assert gauges["service.queue_depth"] == 0
        assert gauges["service.cache.size"] == 1

    def test_report_is_schema_valid_and_carries_gauges(self):
        cache = ResultCache()
        shedder = LoadShedder(Watermarks())
        gateway = make_gateway(cache=cache, shedder=shedder)
        run(gateway.submit("Berlino", 2))
        report = gateway.report(queries=1, k=2, matches=1)
        assert validate_report(report.to_dict()) == []
        assert report.gauges["service.queue_depth"] == 0.0
        assert report.gauges["service.cache.size"] == 1.0
        assert "service.cache.hits" in report.counters
        assert "service.shed.admitted" in report.counters
        assert "gateway.submit_seconds" in report.histograms

    def test_report_with_pools_folds_pool_series(self):
        service = Service(DATASET, shards=2)
        pools = ShardPools(service.corpus)
        try:
            gateway = AsyncService(service, pools=pools)
            run(gateway.submit("Berlino", 2))
            report = gateway.report()
            assert "pool.submitted" in report.counters
            assert "pool.batch_seconds" in report.histograms
            assert report.gauges["pool.workers"] >= 1
        finally:
            pools.close()

    def test_refit_driven_by_completions(self):
        service = Service(DATASET, shards=2)
        pools = ShardPools(service.corpus)
        fits = []
        original = pools.refit
        pools.refit = lambda: fits.append(True) or original()
        try:
            gateway = AsyncService(service, pools=pools,
                                   refit_interval=2)

            async def four():
                for index in range(4):
                    await gateway.submit(f"q{index}", 1)

            run(four())
            assert len(fits) == 2
        finally:
            pools.close()

    def test_bad_refit_interval_rejected(self):
        with pytest.raises(ReproError):
            make_gateway(refit_interval=0)
