"""Unit tests for the zero-copy segment layer (:mod:`repro.speed`).

A segment must be a perfect stand-in for the artifact it serialized:
same strings, same matches, same counters — with its arrays living in
the page cache instead of the heap. The failure modes matter just as
much: a corrupted or version-skewed file must raise a clear
:class:`repro.exceptions.SegmentError`, never return wrong data.
"""

import os
import struct

import pytest

from repro.exceptions import SegmentError
from repro.index.batch import BatchIndexExecutor
from repro.index.flat import FlatTrie
from repro.scan.corpus import CompiledCorpus
from repro.scan.executor import BatchScanExecutor, _pool_payload
from repro.speed import (
    SEGMENT_MAGIC,
    SEGMENT_VERSION,
    SegmentCache,
    SegmentRef,
    load_or_build_corpus_segment,
    load_segment,
    save_segment,
)

DATASET = ["Berlin", "Bern", "Bonn", "Ulm", "Hamburg", "Hamm",
           "Bremen", "Berlingen", "Ber", "Uelzen"]
QUERIES = [("Berlino", 2), ("Bon", 1), ("Hamborg", 2), ("Ulm", 0)]


@pytest.fixture()
def corpus_segment(tmp_path):
    corpus = CompiledCorpus(DATASET, packed=True)
    path = str(tmp_path / "corpus.seg")
    save_segment(corpus, path)
    return corpus, path


class TestCorpusRoundTrip:
    def test_search_parity_and_counters(self, corpus_segment):
        corpus, path = corpus_segment
        loaded = load_segment(path)
        assert tuple(loaded.strings) == corpus.strings
        assert loaded.segment_path == os.path.abspath(path)
        fresh = BatchScanExecutor(corpus)
        mapped = BatchScanExecutor(loaded)
        for query, k in QUERIES:
            assert mapped.search(query, k) == fresh.search(query, k)
        assert mapped.counters_snapshot() == fresh.counters_snapshot()

    def test_unpacked_corpus_is_packed_on_save(self, tmp_path):
        path = str(tmp_path / "plain.seg")
        save_segment(CompiledCorpus(DATASET), path)
        loaded = load_segment(path)
        assert loaded.packed
        assert tuple(loaded.strings) == CompiledCorpus(DATASET).strings

    def test_load_or_build_builds_once_then_loads(self, tmp_path):
        path = str(tmp_path / "nested" / "corpus.seg")
        built = load_or_build_corpus_segment(DATASET, path)
        assert os.path.exists(path)
        stamp = os.stat(path).st_mtime_ns
        again = load_or_build_corpus_segment(DATASET, path)
        assert os.stat(path).st_mtime_ns == stamp
        assert again is built  # served by the process-global cache


class TestTrieRoundTrip:
    def test_probe_parity(self, tmp_path):
        trie = FlatTrie(DATASET)
        path = str(tmp_path / "trie.seg")
        save_segment(trie, path)
        loaded = load_segment(path)
        assert isinstance(loaded, FlatTrie)
        fresh = BatchIndexExecutor(trie)
        mapped = BatchIndexExecutor(loaded)
        for query, k in QUERIES:
            assert mapped.search(query, k) == fresh.search(query, k)


class TestCorruption:
    def test_truncated_file(self, corpus_segment):
        _, path = corpus_segment
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        with pytest.raises(SegmentError):
            load_segment(path)

    def test_bad_magic(self, corpus_segment):
        _, path = corpus_segment
        with open(path, "r+b") as handle:
            handle.write(b"NOPE")
        with pytest.raises(SegmentError):
            load_segment(path)

    def test_version_mismatch_names_the_version(self, corpus_segment):
        _, path = corpus_segment
        with open(path, "r+b") as handle:
            handle.seek(len(SEGMENT_MAGIC))
            handle.write(struct.pack("<I", SEGMENT_VERSION + 41))
        with pytest.raises(SegmentError, match="version 42"):
            load_segment(path)

    def test_garbage_header(self, corpus_segment):
        _, path = corpus_segment
        with open(path, "r+b") as handle:
            handle.seek(len(SEGMENT_MAGIC) + 12)
            handle.write(b"\xff" * 16)
        with pytest.raises(SegmentError):
            load_segment(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SegmentError):
            load_segment(str(tmp_path / "absent.seg"))


class TestCache:
    def test_same_stamp_returns_same_object(self, corpus_segment):
        _, path = corpus_segment
        cache = SegmentCache()
        assert cache.get(path) is cache.get(path)
        assert len(cache) == 1

    def test_mtime_change_invalidates(self, corpus_segment):
        corpus, path = corpus_segment
        cache = SegmentCache()
        first = cache.get(path)
        save_segment(corpus, path)  # rewrite: new mtime/size stamp
        stat = os.stat(path)
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 10**9))
        second = cache.get(path)
        assert second is not first
        assert tuple(second.strings) == tuple(first.strings)

    def test_invalidate(self, corpus_segment):
        _, path = corpus_segment
        cache = SegmentCache()
        first = cache.get(path)
        cache.invalidate(path)
        assert cache.get(path) is not first
        cache.invalidate()
        assert len(cache) == 0


class TestPoolHandoff:
    class _FakePool:
        processes = 2

    def test_segment_backed_corpus_ships_a_ref(self, corpus_segment,
                                               recwarn):
        _, path = corpus_segment
        payload = _pool_payload(load_segment(path), self._FakePool(),
                                "compiled corpus")
        assert isinstance(payload, SegmentRef)
        assert tuple(payload.resolve().strings) == \
            CompiledCorpus(DATASET).strings
        assert not recwarn.list

    def test_plain_corpus_warns_with_the_2_0_message(self):
        corpus = CompiledCorpus(DATASET)
        with pytest.warns(
            DeprecationWarning,
            match=r"deprecated and will be removed in 2\.0.*"
                  r"repro\.speed\.save_segment",
        ):
            payload = _pool_payload(corpus, self._FakePool(),
                                    "compiled corpus")
        assert payload is corpus

    def test_serial_runner_never_warns(self, recwarn):
        corpus = CompiledCorpus(DATASET)
        payload = _pool_payload(corpus, object(), "compiled corpus")
        assert payload is corpus
        assert not recwarn.list
