"""Shared fixtures: small deterministic datasets and workloads."""

from __future__ import annotations

import pytest

from repro.data.cities import generate_city_names
from repro.data.dna import DnaReadGenerator
from repro.data.workload import make_workload


@pytest.fixture(scope="session")
def city_names() -> tuple[str, ...]:
    """A small deterministic city-name dataset."""
    return tuple(generate_city_names(300, seed=101))


@pytest.fixture(scope="session")
def dna_reads() -> tuple[str, ...]:
    """A small deterministic DNA-read dataset."""
    generator = DnaReadGenerator(genome_length=4000, read_length=60,
                                 seed=202)
    return tuple(generator.generate(120))


@pytest.fixture(scope="session")
def city_workload(city_names):
    """Twelve city queries at k=2, mixing exact and perturbed hits."""
    return make_workload(city_names, 12, 2,
                         alphabet_symbols="abcdefghinorst",
                         seed=7, name="city-test")


@pytest.fixture(scope="session")
def dna_workload(dna_reads):
    """Eight DNA queries at k=6."""
    return make_workload(dna_reads, 8, 6, alphabet_symbols="ACGNT",
                         seed=8, name="dna-test")
