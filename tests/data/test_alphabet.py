"""Unit tests for alphabets and encoders."""

import pytest

from repro.data.alphabet import (
    DNA_ALPHABET,
    Alphabet,
    ascii_lowercase_alphabet,
    city_alphabet,
    dna_alphabet,
)
from repro.exceptions import AlphabetError


class TestAlphabet:
    def test_size_and_contains(self):
        assert DNA_ALPHABET.size == 5
        assert "A" in DNA_ALPHABET
        assert "X" not in DNA_ALPHABET

    def test_codes_follow_symbol_order(self):
        assert DNA_ALPHABET.code("A") == 0
        assert DNA_ALPHABET.code("T") == 4

    def test_code_of_foreign_symbol_raises(self):
        with pytest.raises(AlphabetError):
            DNA_ALPHABET.code("X")

    def test_encode_decode_roundtrip(self):
        text = "GATTNACA"
        assert DNA_ALPHABET.decode(DNA_ALPHABET.encode(text)) == text

    def test_encode_rejects_foreign_symbols_with_position(self):
        with pytest.raises(AlphabetError) as error:
            DNA_ALPHABET.encode("ACXG")
        assert "position 2" in str(error.value)

    def test_decode_rejects_out_of_range_codes(self):
        with pytest.raises(AlphabetError):
            DNA_ALPHABET.decode((0, 7))

    def test_validate_passes_clean_text(self):
        assert DNA_ALPHABET.validate("ACGT") == "ACGT"

    def test_validate_flags_position(self):
        with pytest.raises(AlphabetError) as error:
            DNA_ALPHABET.validate("AC!T")
        assert "position 2" in str(error.value)

    def test_empty_alphabet_rejected(self):
        with pytest.raises(AlphabetError):
            Alphabet("empty", "")

    def test_duplicate_symbols_rejected(self):
        with pytest.raises(AlphabetError):
            Alphabet("dup", "AAB")

    def test_bits_per_symbol(self):
        assert DNA_ALPHABET.bits_per_symbol == 3  # the paper's 3 bits
        assert Alphabet("bin", "01").bits_per_symbol == 1
        assert Alphabet("one", "x").bits_per_symbol == 1
        assert ascii_lowercase_alphabet().bits_per_symbol == 5

    def test_frequency_vector_full_alphabet(self):
        assert DNA_ALPHABET.frequency_vector("AACGT") == (2, 1, 1, 0, 1)

    def test_frequency_vector_tracked_subset(self):
        assert DNA_ALPHABET.frequency_vector("AACGT", "AT") == (2, 1)


class TestBuiltinAlphabets:
    def test_dna_alphabet_is_cached_singleton(self):
        assert dna_alphabet() is dna_alphabet()
        assert dna_alphabet() is DNA_ALPHABET

    def test_city_alphabet_is_large(self):
        # Table I: "ca. 255 symbols" — large multilingual inventory.
        assert city_alphabet().size > 200

    def test_city_alphabet_spans_scripts(self):
        alphabet = city_alphabet()
        for symbol in ("a", "Z", "ß", "é", "Ω", "ж", "北"):
            assert symbol in alphabet, symbol

    def test_city_alphabet_has_no_duplicates(self):
        symbols = city_alphabet().symbols
        assert len(symbols) == len(set(symbols))
