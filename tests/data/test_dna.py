"""Unit tests for the DNA read generator."""

import pytest

from repro.data.dna import DnaReadGenerator, generate_reads, synthesize_genome


class TestSynthesizeGenome:
    def test_exact_length(self):
        assert len(synthesize_genome(5000, seed=1)) == 5000

    def test_zero_length(self):
        assert synthesize_genome(0) == ""

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            synthesize_genome(-1)

    def test_bad_repeat_fraction_rejected(self):
        with pytest.raises(ValueError):
            synthesize_genome(100, repeat_fraction=1.5)

    def test_alphabet_is_acgt(self):
        genome = synthesize_genome(3000, seed=2)
        assert set(genome) <= set("ACGT")

    def test_deterministic(self):
        assert synthesize_genome(1000, seed=7) == \
            synthesize_genome(1000, seed=7)

    def test_repeats_create_self_similarity(self):
        genome = synthesize_genome(20000, seed=3, repeat_fraction=0.5)
        # Some 30-mer must occur more than once in a repeat-rich genome.
        kmers = {}
        for i in range(0, len(genome) - 30, 7):
            kmer = genome[i:i + 30]
            kmers[kmer] = kmers.get(kmer, 0) + 1
        assert any(count > 1 for count in kmers.values())


class TestDnaReadGenerator:
    def test_alphabet_is_five_symbols(self):
        generator = DnaReadGenerator(genome_length=4000, seed=4)
        reads = generator.generate(200)
        assert set("".join(reads)) <= set("ACGNT")

    def test_read_lengths_near_target(self):
        generator = DnaReadGenerator(genome_length=4000, read_length=100,
                                     length_jitter=4, seed=5)
        reads = generator.generate(200)
        # Indels can shift by a couple of symbols beyond the jitter.
        assert all(90 <= len(read) <= 110 for read in reads)

    def test_deterministic(self):
        a = DnaReadGenerator(genome_length=3000, seed=6).generate(50)
        b = DnaReadGenerator(genome_length=3000, seed=6).generate(50)
        assert a == b

    def test_reads_resemble_genome(self):
        generator = DnaReadGenerator(genome_length=3000, read_length=40,
                                     substitution_rate=0.0, indel_rate=0.0,
                                     n_rate=0.0, length_jitter=0, seed=7)
        genome = generator.genome
        for read in generator.generate(20):
            assert read in genome  # noise-free reads are exact windows

    def test_n_symbols_appear_at_configured_rate(self):
        generator = DnaReadGenerator(genome_length=5000, n_rate=0.05,
                                     seed=8)
        reads = generator.generate(100)
        text = "".join(reads)
        n_fraction = text.count("N") / len(text)
        assert 0.02 < n_fraction < 0.10

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            DnaReadGenerator(genome_length=50, read_length=100)
        with pytest.raises(ValueError):
            DnaReadGenerator(read_length=0)

    def test_negative_count_rejected(self):
        generator = DnaReadGenerator(genome_length=3000)
        with pytest.raises(ValueError):
            generator.generate(-1)


class TestGenerateReadsWrapper:
    def test_count_and_alphabet(self):
        reads = generate_reads(80, seed=10)
        assert len(reads) == 80
        assert set("".join(reads)) <= set("ACGNT")

    def test_custom_read_length(self):
        reads = generate_reads(30, seed=11, read_length=50)
        assert all(40 <= len(read) <= 60 for read in reads)
