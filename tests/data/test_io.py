"""Unit tests for competition file I/O."""

import pytest

from repro.data.io import (
    read_queries,
    read_result_file,
    read_strings,
    write_result_file,
    write_strings,
)
from repro.exceptions import DatasetFormatError


class TestReadStrings:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "data.txt"
        strings = ["Berlin", "Bern", "Ulm"]
        assert write_strings(path, strings) == 3
        assert read_strings(path) == strings

    def test_unicode_roundtrip(self, tmp_path):
        path = tmp_path / "unicode.txt"
        strings = ["Köln", "Владивосток", "北京市"]
        write_strings(path, strings)
        assert read_strings(path) == strings

    def test_max_count(self, tmp_path):
        path = tmp_path / "data.txt"
        write_strings(path, ["a", "b", "c", "d"])
        assert read_strings(path, max_count=2) == ["a", "b"]

    def test_blank_line_rejected_with_location(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("ok\n\nalso ok\n", encoding="utf-8")
        with pytest.raises(DatasetFormatError) as error:
            read_strings(path)
        assert "line 2" in str(error.value)

    def test_empty_file_rejected_by_default(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("", encoding="utf-8")
        with pytest.raises(DatasetFormatError):
            read_strings(path)

    def test_empty_file_allowed_when_asked(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("", encoding="utf-8")
        assert read_strings(path, allow_empty_file=True) == []

    def test_invalid_utf8_rejected(self, tmp_path):
        path = tmp_path / "binary.txt"
        path.write_bytes(b"\xff\xfe\x00bad")
        with pytest.raises(DatasetFormatError):
            read_strings(path)

    def test_crlf_line_endings_handled(self, tmp_path):
        path = tmp_path / "crlf.txt"
        path.write_bytes(b"Berlin\r\nBern\r\n")
        assert read_strings(path) == ["Berlin", "Bern"]

    def test_read_queries_same_format(self, tmp_path):
        path = tmp_path / "queries.txt"
        write_strings(path, ["q1", "q2"])
        assert read_queries(path) == ["q1", "q2"]


class TestWriteStrings:
    def test_rejects_empty_string(self, tmp_path):
        with pytest.raises(DatasetFormatError):
            write_strings(tmp_path / "x.txt", ["ok", ""])

    def test_rejects_embedded_newline(self, tmp_path):
        with pytest.raises(DatasetFormatError):
            write_strings(tmp_path / "x.txt", ["bad\nstring"])


class TestResultFiles:
    def test_roundtrip_with_mapping(self, tmp_path):
        path = tmp_path / "results.txt"
        queries = ["q1", "q2", "q3"]
        results = {"q1": ("a", "b"), "q2": (), "q3": ("c",)}
        write_result_file(path, queries, results)
        assert read_result_file(path) == [
            ("q1", ["a", "b"]), ("q2", []), ("q3", ["c"]),
        ]

    def test_roundtrip_with_parallel_rows(self, tmp_path):
        path = tmp_path / "results.txt"
        write_result_file(path, ["q1", "q2"], [["a"], []])
        assert read_result_file(path) == [("q1", ["a"]), ("q2", [])]

    def test_row_count_mismatch_rejected(self, tmp_path):
        with pytest.raises(DatasetFormatError):
            write_result_file(tmp_path / "x.txt", ["q1", "q2"], [["a"]])

    def test_query_missing_from_mapping_gets_empty_row(self, tmp_path):
        path = tmp_path / "results.txt"
        write_result_file(path, ["q1"], {})
        assert read_result_file(path) == [("q1", [])]

    def test_blank_result_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("q1\ta\n\n", encoding="utf-8")
        with pytest.raises(DatasetFormatError):
            read_result_file(path)
