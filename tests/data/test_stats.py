"""Unit tests for dataset statistics."""

from repro.data.stats import describe, length_histogram

import pytest


class TestDescribe:
    def test_basic_statistics(self):
        stats = describe(["ab", "abcd", "abcdef"])
        assert stats.count == 3
        assert stats.min_length == 2
        assert stats.max_length == 6
        assert stats.mean_length == 4.0
        assert stats.median_length == 4.0
        assert stats.total_symbols == 12

    def test_alphabet_size(self):
        stats = describe(["aab", "bcc"])
        assert stats.alphabet_size == 3

    def test_even_count_median(self):
        stats = describe(["a", "ab", "abc", "abcd"])
        assert stats.median_length == 2.5

    def test_most_common_symbols(self):
        stats = describe(["aaab", "aab"])
        assert stats.most_common_symbols[0] == ("a", 5)

    def test_empty_dataset(self):
        stats = describe([])
        assert stats.count == 0
        assert stats.alphabet_size == 0
        assert stats.mean_length == 0.0

    def test_table_row_format(self):
        stats = describe(["Berlin", "Bern"])
        row = stats.table_row("City names", (0, 1, 2, 3))
        assert "City names" in row
        assert "0, 1, 2, 3" in row


class TestLengthHistogram:
    def test_buckets(self):
        histogram = length_histogram(["a", "ab", "abcdefgh"],
                                     bucket_width=4)
        assert histogram[range(0, 4)] == 2
        assert histogram[range(8, 12)] == 1

    def test_counts_sum_to_dataset_size(self):
        strings = ["x" * n for n in (1, 3, 7, 9, 15, 16)]
        histogram = length_histogram(strings, bucket_width=8)
        assert sum(histogram.values()) == len(strings)

    def test_empty_dataset(self):
        assert length_histogram([]) == {}

    def test_invalid_bucket_width(self):
        with pytest.raises(ValueError):
            length_histogram(["a"], bucket_width=0)
