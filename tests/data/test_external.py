"""Unit tests for external-format loaders."""

import pytest

from repro.data.external import (
    read_delimited_column,
    read_fasta,
    write_fasta,
)
from repro.exceptions import DatasetFormatError


class TestReadDelimitedColumn:
    def test_geonames_style_extraction(self, tmp_path):
        path = tmp_path / "geonames.txt"
        path.write_text(
            "2950159\tBerlin\tBerlin\t52.52\n"
            "2867714\tMünchen\tMunich\t48.13\n",
            encoding="utf-8",
        )
        assert read_delimited_column(path, 1) == ["Berlin", "München"]

    def test_other_columns_and_delimiters(self, tmp_path):
        path = tmp_path / "csv.txt"
        path.write_text("a,b,c\nd,e,f\n", encoding="utf-8")
        assert read_delimited_column(path, 2, delimiter=",") == \
            ["c", "f"]

    def test_max_count(self, tmp_path):
        path = tmp_path / "many.txt"
        path.write_text("".join(f"{i}\tname{i}\n" for i in range(50)),
                        encoding="utf-8")
        assert len(read_delimited_column(path, 1, max_count=10)) == 10

    def test_blank_fields_skipped_by_default(self, tmp_path):
        path = tmp_path / "gaps.txt"
        path.write_text("1\tBerlin\n2\t\n3\tUlm\n", encoding="utf-8")
        assert read_delimited_column(path, 1) == ["Berlin", "Ulm"]

    def test_blank_fields_can_raise(self, tmp_path):
        path = tmp_path / "gaps.txt"
        path.write_text("1\t\n", encoding="utf-8")
        with pytest.raises(DatasetFormatError):
            read_delimited_column(path, 1, skip_blank_fields=False)

    def test_short_row_raises_with_location(self, tmp_path):
        path = tmp_path / "short.txt"
        path.write_text("only-one-field\n", encoding="utf-8")
        with pytest.raises(DatasetFormatError) as error:
            read_delimited_column(path, 1)
        assert "line 1" in str(error.value)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "blanks.txt"
        path.write_text("1\ta\n\n2\tb\n", encoding="utf-8")
        assert read_delimited_column(path, 1) == ["a", "b"]

    def test_invalid_utf8(self, tmp_path):
        path = tmp_path / "bin.txt"
        path.write_bytes(b"\xff\xfe\tbad\n")
        with pytest.raises(DatasetFormatError):
            read_delimited_column(path, 1)


class TestFasta:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "reads.fa"
        sequences = ["ACGT" * 30, "GATTACA", "NNNN"]
        assert write_fasta(path, sequences) == 3
        assert read_fasta(path) == sequences

    def test_wrapped_sequences_joined(self, tmp_path):
        path = tmp_path / "wrapped.fa"
        path.write_text(">r1\nACGT\nACGT\n>r2\nGG\n", encoding="utf-8")
        assert read_fasta(path) == ["ACGTACGT", "GG"]

    def test_case_folding(self, tmp_path):
        path = tmp_path / "soft.fa"
        path.write_text(">r1\nacgT\n", encoding="utf-8")
        assert read_fasta(path) == ["ACGT"]
        assert read_fasta(path, uppercase=False, alphabet=None) == \
            ["acgT"]

    def test_alphabet_enforced(self, tmp_path):
        path = tmp_path / "bad.fa"
        path.write_text(">r1\nACGTX\n", encoding="utf-8")
        with pytest.raises(DatasetFormatError) as error:
            read_fasta(path)
        assert "X" in str(error.value)

    def test_alphabet_can_be_disabled(self, tmp_path):
        path = tmp_path / "protein.fa"
        path.write_text(">p1\nMKVL\n", encoding="utf-8")
        assert read_fasta(path, alphabet=None) == ["MKVL"]

    def test_sequence_before_header_rejected(self, tmp_path):
        path = tmp_path / "headerless.fa"
        path.write_text("ACGT\n", encoding="utf-8")
        with pytest.raises(DatasetFormatError):
            read_fasta(path)

    def test_empty_record_rejected(self, tmp_path):
        path = tmp_path / "empty.fa"
        path.write_text(">r1\n>r2\nACGT\n", encoding="utf-8")
        with pytest.raises(DatasetFormatError):
            read_fasta(path)

    def test_max_count(self, tmp_path):
        path = tmp_path / "many.fa"
        write_fasta(path, ["ACGT"] * 20)
        assert len(read_fasta(path, max_count=5)) == 5

    def test_write_rejects_empty_sequence(self, tmp_path):
        with pytest.raises(DatasetFormatError):
            write_fasta(tmp_path / "x.fa", ["ACGT", ""])

    def test_generated_reads_roundtrip(self, tmp_path):
        from repro.data.dna import generate_reads

        reads = generate_reads(25, seed=5)
        path = tmp_path / "gen.fa"
        write_fasta(path, reads)
        assert read_fasta(path) == reads
