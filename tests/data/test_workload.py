"""Unit tests for query workloads."""

import pytest

from repro.data.workload import (
    CITY_THRESHOLDS,
    DNA_THRESHOLDS,
    PAPER_QUERY_COUNTS,
    Workload,
    make_workload,
    paper_workloads,
)
from repro.distance.levenshtein import edit_distance
from repro.exceptions import InvalidThresholdError, ReproError

DATASET = ["Berlin", "Bern", "Ulm", "Hamburg", "Bremen"]


class TestWorkload:
    def test_basic_properties(self):
        workload = Workload(("a", "b"), 2, name="demo")
        assert len(workload) == 2
        assert list(workload) == ["a", "b"]
        assert workload.k == 2

    def test_invalid_threshold(self):
        with pytest.raises(InvalidThresholdError):
            Workload(("a",), -1)

    def test_take_prefix(self):
        workload = Workload(("a", "b", "c"), 1, name="demo")
        taken = workload.take(2)
        assert taken.queries == ("a", "b")
        assert taken.k == 1
        assert "demo" in taken.name

    def test_take_more_than_available_clamps(self):
        workload = Workload(("a",), 0)
        assert len(workload.take(10)) == 1

    def test_take_oversized_labels_honestly(self):
        # The label must never claim more queries than the workload
        # holds: clamping keeps the original name, no "[:10]" suffix.
        workload = Workload(("a",), 0, name="demo")
        assert workload.take(10).name == "demo"
        assert workload.take(1).name == "demo"

    def test_take_truncation_is_labelled(self):
        workload = Workload(("a", "b", "c"), 0, name="demo")
        assert workload.take(2).name == "demo[:2]"

    def test_take_negative_rejected(self):
        with pytest.raises(ValueError):
            Workload(("a",), 0).take(-1)

    def test_take_negative_is_a_repro_error(self):
        # The library's own hierarchy, so one except-clause at an API
        # boundary catches it (previously a bare ValueError).
        from repro.exceptions import WorkloadError

        with pytest.raises(ReproError):
            Workload(("a",), 0).take(-2)
        with pytest.raises(WorkloadError):
            Workload(("a",), 0).take(-2)


class TestMakeWorkload:
    def test_count_and_threshold(self):
        workload = make_workload(DATASET, 20, 2,
                                 alphabet_symbols="abc", seed=1)
        assert len(workload) == 20
        assert workload.k == 2

    def test_deterministic(self):
        a = make_workload(DATASET, 10, 2, alphabet_symbols="abc", seed=3)
        b = make_workload(DATASET, 10, 2, alphabet_symbols="abc", seed=3)
        assert a.queries == b.queries

    def test_every_query_has_a_match_at_k(self):
        workload = make_workload(DATASET, 30, 2,
                                 alphabet_symbols="abc", seed=5)
        for query in workload:
            assert any(edit_distance(query, s) <= workload.k
                       for s in DATASET), query

    def test_unperturbed_queries_are_dataset_strings(self):
        workload = make_workload(DATASET, 15, 2, perturb=False,
                                 alphabet_symbols="abc", seed=7)
        assert all(query in DATASET for query in workload)

    def test_empty_dataset_rejected(self):
        with pytest.raises(ReproError):
            make_workload([], 5, 1, alphabet_symbols="abc")

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            make_workload(DATASET, -1, 1, alphabet_symbols="abc")

    def test_negative_count_is_a_repro_error(self):
        with pytest.raises(ReproError):
            make_workload(DATASET, -1, 1, alphabet_symbols="abc")

    def test_k_zero_yields_exact_queries(self):
        workload = make_workload(DATASET, 10, 0,
                                 alphabet_symbols="abc", seed=9)
        assert all(query in DATASET for query in workload)


class TestWorkloadPersistence:
    def test_roundtrip(self, tmp_path):
        from repro.data.workload import load_workload, save_workload

        workload = make_workload(DATASET, 8, 2,
                                 alphabet_symbols="abc", seed=13,
                                 name="persisted")
        path = tmp_path / "queries.txt"
        save_workload(workload, path)
        loaded = load_workload(path)
        assert loaded.queries == workload.queries
        assert loaded.k == workload.k
        assert loaded.name == "persisted"

    def test_query_file_stays_competition_compatible(self, tmp_path):
        from repro.data.io import read_queries
        from repro.data.workload import save_workload

        workload = Workload(("Bern", "Ulm"), 1, "compat")
        path = tmp_path / "queries.txt"
        save_workload(workload, path)
        assert read_queries(path) == ["Bern", "Ulm"]

    def test_missing_sidecar_raises(self, tmp_path):
        from repro.data.io import write_strings
        from repro.data.workload import load_workload

        path = tmp_path / "bare.txt"
        write_strings(path, ["q1"])
        with pytest.raises(ReproError):
            load_workload(path)

    def test_malformed_sidecar_raises(self, tmp_path):
        from repro.data.io import write_strings
        from repro.data.workload import load_workload

        path = tmp_path / "bad.txt"
        write_strings(path, ["q1"])
        (tmp_path / "bad.txt.meta.json").write_text("{not json",
                                                    encoding="utf-8")
        with pytest.raises(ReproError):
            load_workload(path)


class TestPaperWorkloads:
    def test_counts_match_paper(self):
        assert PAPER_QUERY_COUNTS == (100, 500, 1000)
        assert CITY_THRESHOLDS == (0, 1, 2, 3)
        assert DNA_THRESHOLDS == (0, 4, 8, 16)

    def test_nested_prefixes(self):
        series = paper_workloads(DATASET, 1, alphabet_symbols="abc",
                                 seed=11, counts=(5, 10, 20))
        assert set(series) == {5, 10, 20}
        assert series[5].queries == series[20].queries[:5]
        assert series[10].queries == series[20].queries[:10]
