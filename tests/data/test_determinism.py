"""Golden tests: generator determinism across refactors.

Every experiment in this repository is reproducible only because the
synthetic datasets are a pure function of their seed. These snapshots
pin the first few generated items so an accidental change to generator
internals (an extra RNG draw, a reordered branch) is caught instead of
silently invalidating every recorded measurement in EXPERIMENTS.md.

If a change to the generators is *intentional*, update the snapshots
and re-run the benchmark suite to refresh EXPERIMENTS.md.
"""

from repro.data.cities import generate_city_names
from repro.data.dna import DnaReadGenerator, synthesize_genome


class TestCityGolden:
    def test_first_names_for_default_seed(self):
        assert generate_city_names(5, seed=2013) == [
            "Miasona",
            "Вакбав",
            "Конпывск",
            "Mäckstadt",
            "Santa Gialfáldio",
        ]

    def test_known_alternate_seed(self):
        names = generate_city_names(3, seed=101)
        assert names == generate_city_names(3, seed=101)
        assert names != generate_city_names(3, seed=102)

    def test_prefix_stability(self):
        # Generating more names never changes the earlier ones.
        short = generate_city_names(10, seed=2013)
        long = generate_city_names(50, seed=2013)
        assert long[:10] == short


class TestDnaGolden:
    def test_genome_prefix_for_default_seed(self):
        genome = synthesize_genome(64, seed=2013)
        assert len(genome) == 64
        assert genome == synthesize_genome(64, seed=2013)
        assert set(genome) <= set("ACGT")

    def test_read_stream_deterministic(self):
        first = DnaReadGenerator(genome_length=3000, seed=2013).generate(5)
        second = DnaReadGenerator(genome_length=3000, seed=2013).generate(5)
        assert first == second

    def test_read_prefix_stability(self):
        generator_a = DnaReadGenerator(genome_length=3000, seed=7)
        generator_b = DnaReadGenerator(genome_length=3000, seed=7)
        assert generator_a.generate(3) == generator_b.generate(10)[:3]
