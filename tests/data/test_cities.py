"""Unit tests for the city-name generator."""

import pytest

from repro.data.alphabet import city_alphabet
from repro.data.cities import (
    MAX_CITY_NAME_LENGTH,
    CityNameGenerator,
    generate_city_names,
)


class TestCityNameGenerator:
    def test_deterministic_given_seed(self):
        assert generate_city_names(50, seed=1) == \
            generate_city_names(50, seed=1)

    def test_different_seeds_differ(self):
        assert generate_city_names(50, seed=1) != \
            generate_city_names(50, seed=2)

    def test_count(self):
        assert len(generate_city_names(123, seed=5)) == 123

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            generate_city_names(-1)

    def test_zero_count(self):
        assert generate_city_names(0) == []

    def test_lengths_respect_table_one(self):
        names = generate_city_names(2000, seed=9)
        assert all(1 <= len(name) <= MAX_CITY_NAME_LENGTH
                   for name in names)

    def test_all_symbols_in_city_alphabet(self):
        alphabet = city_alphabet()
        for name in generate_city_names(2000, seed=13):
            alphabet.validate(name)

    def test_natural_language_shape(self):
        names = generate_city_names(2000, seed=17)
        mean_length = sum(len(n) for n in names) / len(names)
        # Short-string regime of the paper's section 2.4.
        assert 5 <= mean_length <= 25
        # A healthy symbol inventory (large-alphabet regime).
        assert len(set("".join(names))) > 60

    def test_contains_near_duplicates(self):
        # Gazetteers repeat stems ("Neustadt", "Neustadt am ...");
        # the generator should too, via shared morphology.
        names = generate_city_names(5000, seed=23)
        prefixes = {}
        for name in names:
            prefixes.setdefault(name[:4], []).append(name)
        assert any(len(group) > 3 for group in prefixes.values())

    def test_unique_mode(self):
        names = CityNameGenerator(seed=3).generate(500, unique=True)
        assert len(set(names)) == 500

    def test_duplicates_allowed_by_default(self):
        names = generate_city_names(20000, seed=29)
        assert len(set(names)) < len(names)
