"""Unit tests for controlled corruption."""

import random

import pytest

from repro.data.corruptions import (
    EDIT_OPERATIONS,
    apply_one_edit,
    apply_random_edits,
    edit_script_names,
)
from repro.distance.levenshtein import edit_distance
from repro.exceptions import ReproError


class TestApplyOneEdit:
    def test_changes_by_at_most_one_edit(self):
        rng = random.Random(1)
        for _ in range(200):
            corrupted = apply_one_edit("Berlin", "abc", rng)
            assert edit_distance("Berlin", corrupted) <= 1

    def test_empty_string_gets_insert(self):
        rng = random.Random(2)
        corrupted = apply_one_edit("", "xyz", rng)
        assert len(corrupted) == 1

    def test_replace_avoids_noop_when_possible(self):
        rng = random.Random(3)
        # Alphabet of two symbols: a replace on "a" must produce "b".
        for _ in range(100):
            corrupted = apply_one_edit("a", "ab", rng)
            assert corrupted in ("b", "", "aa", "ba", "ab")

    def test_empty_symbol_pool_rejected(self):
        with pytest.raises(ReproError):
            apply_one_edit("abc", "", random.Random(4))


class TestApplyRandomEdits:
    def test_distance_bounded_by_edit_count(self):
        for seed in range(30):
            corrupted = apply_random_edits("Hamburg", 3, "abcdefg",
                                           seed=seed)
            assert edit_distance("Hamburg", corrupted) <= 3

    def test_zero_edits_is_identity(self):
        assert apply_random_edits("Bern", 0, "abc", seed=5) == "Bern"

    def test_negative_edits_rejected(self):
        with pytest.raises(ValueError):
            apply_random_edits("Bern", -1, "abc")

    def test_deterministic_for_seed(self):
        assert apply_random_edits("Berlin", 2, "abc", seed=9) == \
            apply_random_edits("Berlin", 2, "abc", seed=9)

    def test_accepts_shared_rng(self):
        rng = random.Random(11)
        first = apply_random_edits("Berlin", 2, "abc", seed=rng)
        second = apply_random_edits("Berlin", 2, "abc", seed=rng)
        # Drawing from one stream, the two results generally differ.
        assert isinstance(first, str) and isinstance(second, str)


class TestOperationNames:
    def test_paper_operations(self):
        assert set(edit_script_names()) == {"insert", "delete", "replace"}
        assert edit_script_names() == EDIT_OPERATIONS
