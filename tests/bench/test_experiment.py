"""Unit tests for experiment scaling and measurement primitives."""

import pytest

from repro.bench.experiment import (
    ExperimentScale,
    estimate_workload_seconds,
    load_city_dataset,
    load_city_workload,
    load_dna_dataset,
    load_dna_workload,
    measure_per_query_costs,
    measure_workload,
)
from repro.core.sequential import SequentialScanSearcher
from repro.exceptions import ExperimentError


class TestExperimentScale:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        scale = ExperimentScale.from_env()
        assert scale.factor == 1.0
        assert scale.city_count > 0
        assert len(scale.query_counts) == 3

    def test_scale_grows_sizes(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2")
        scale = ExperimentScale.from_env()
        base = ExperimentScale()
        assert scale.city_count == 2 * base.city_count
        assert scale.dna_count == 2 * base.dna_count

    def test_fractional_scale_shrinks(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        scale = ExperimentScale.from_env()
        assert scale.city_count < ExperimentScale().city_count

    def test_invalid_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "banana")
        with pytest.raises(ExperimentError):
            ExperimentScale.from_env()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ExperimentError):
            ExperimentScale.from_env()

    def test_query_label_mentions_paper_count(self):
        scale = ExperimentScale()
        label = scale.query_label(0)
        assert "100 queries" in label


class TestDatasetCaches:
    def test_city_dataset_memoized(self):
        assert load_city_dataset(50) is load_city_dataset(50)

    def test_dna_dataset_memoized(self):
        assert load_dna_dataset(20) is load_dna_dataset(20)

    def test_workloads_have_requested_shape(self):
        workload = load_city_workload(50, 5, 2)
        assert len(workload) == 5
        assert workload.k == 2
        dna = load_dna_workload(20, 4, 8)
        assert len(dna) == 4
        assert dna.k == 8


class TestMeasurement:
    def test_measure_workload_returns_results_and_seconds(self):
        dataset = load_city_dataset(50)
        workload = load_city_workload(50, 3, 1)
        searcher = SequentialScanSearcher(dataset)
        results, seconds = measure_workload(searcher, workload)
        assert len(results) == 3
        assert seconds > 0

    def test_per_query_costs_align_with_workload(self):
        dataset = load_city_dataset(50)
        workload = load_city_workload(50, 4, 1)
        searcher = SequentialScanSearcher(dataset)
        costs = measure_per_query_costs(searcher, workload)
        assert len(costs) == 4
        assert all(cost > 0 for cost in costs)

    def test_estimate_scales_linearly(self):
        dataset = load_city_dataset(50)
        workload = load_city_workload(50, 8, 1)
        searcher = SequentialScanSearcher(dataset, kernel="reference")
        estimate = estimate_workload_seconds(searcher, workload,
                                             sample_queries=2)
        _, measured = measure_workload(searcher, workload)
        # An extrapolation from 2 of 8 queries lands within 5x of truth.
        assert measured / 5 < estimate < measured * 5

    def test_estimate_rejects_zero_sample(self):
        dataset = load_city_dataset(50)
        workload = load_city_workload(50, 2, 1)
        with pytest.raises(ExperimentError):
            estimate_workload_seconds(
                SequentialScanSearcher(dataset), workload,
                sample_queries=0,
            )
