"""Unit tests for the table renderers."""

import pytest

from repro.bench.tables import Cell, TableReport, format_seconds


class TestFormatSeconds:
    def test_seconds(self):
        assert format_seconds(83.73) == "83.73 sec"

    def test_minutes(self):
        assert format_seconds(900) == "15.0 min"

    def test_hours(self):
        assert format_seconds(2 * 3600) == "2.0 h"

    def test_half_day_like_the_paper(self):
        assert format_seconds(12 * 3600) == "~ half day"

    def test_one_day(self):
        assert format_seconds(24 * 3600) == "~ 1 day"

    def test_two_days(self):
        assert format_seconds(48 * 3600) == "~ 2 days"

    def test_estimate_flag(self):
        assert format_seconds(5.0, estimated=True) == "5.00 sec (est.)"


class TestTableReport:
    def _report(self) -> TableReport:
        report = TableReport(title="demo", columns=["100", "500"])
        report.add_row("stage 1", [10.0, 50.0])
        report.add_row("stage 2", [Cell(2.0), Cell(9.0, estimated=True)])
        return report

    def test_add_row_validates_width(self):
        report = TableReport(title="demo", columns=["a", "b"])
        with pytest.raises(ValueError):
            report.add_row("bad", [1.0])

    def test_cell_lookup(self):
        report = self._report()
        assert report.cell("stage 1", 0).seconds == 10.0
        assert report.cell("stage 2", 1).estimated

    def test_row_lookup(self):
        report = self._report()
        assert [c.seconds for c in report.row("stage 2")] == [2.0, 9.0]

    def test_best_row(self):
        report = self._report()
        assert report.best_row() == "stage 2"
        assert report.best_row(0) == "stage 2"

    def test_render_contains_everything(self):
        report = self._report()
        report.add_footnote("a footnote")
        rendered = report.render()
        assert "demo" in rendered
        assert "stage 1" in rendered
        assert "(est.)" in rendered
        assert "note: a footnote" in rendered

    def test_render_alignment(self):
        rendered = self._report().render()
        lines = [l for l in rendered.splitlines() if "stage" in l]
        # Both data lines are equally wide (aligned columns).
        assert len(lines[0]) == len(lines[1])
