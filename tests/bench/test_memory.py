"""Unit tests for deep memory measurement."""

import sys

import pytest

from repro.bench.memory import deep_sizeof, format_bytes, \
    measure_footprints, render_footprints


class TestDeepSizeof:
    def test_atomic_values(self):
        assert deep_sizeof(42) == sys.getsizeof(42)
        assert deep_sizeof("hello") == sys.getsizeof("hello")

    def test_container_includes_contents(self):
        empty = deep_sizeof([])
        loaded = deep_sizeof(["some string", "another string"])
        assert loaded > empty

    def test_shared_objects_counted_once(self):
        shared = "x" * 1000
        once = deep_sizeof([shared])
        twice = deep_sizeof([shared, shared])
        # The second reference adds only a pointer slot, not the string.
        assert twice - once < sys.getsizeof(shared)

    def test_cycles_terminate(self):
        a: list = []
        a.append(a)
        assert deep_sizeof(a) > 0

    def test_slots_objects_traversed(self):
        from repro.index.node import TrieNode

        node = TrieNode("x")
        node.children["y"] = TrieNode("y")
        assert deep_sizeof(node) > deep_sizeof(TrieNode("x"))

    def test_dict_keys_and_values_counted(self):
        small = deep_sizeof({})
        big = deep_sizeof({"key" * 50: "value" * 50})
        assert big > small + 200


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kib(self):
        assert format_bytes(2048) == "2.0 KiB"

    def test_mib(self):
        assert format_bytes(3 * 1024 * 1024) == "3.0 MiB"

    def test_gib(self):
        assert format_bytes(5 * 1024 ** 3) == "5.0 GiB"


class TestFootprints:
    DATA = ["Hamburg", "Magdeburg", "Marburg", "Bern", "Berlin"] * 4

    def test_all_structures_measured(self):
        sizes = measure_footprints(self.DATA)
        assert set(sizes) == {
            "raw strings (list)", "prefix trie", "compressed trie",
            "compressed trie + freq vectors", "DAWG",
            "inverted q-gram index", "BK-tree",
        }
        assert all(size > 0 for size in sizes.values())

    def test_compression_shrinks_the_trie(self):
        sizes = measure_footprints(self.DATA)
        assert sizes["compressed trie"] < sizes["prefix trie"]

    def test_frequency_vectors_cost_memory(self):
        sizes = measure_footprints(self.DATA)
        assert sizes["compressed trie + freq vectors"] > \
            sizes["compressed trie"]

    def test_render_contains_ratios(self):
        report = render_footprints(self.DATA, "test")
        assert "x raw" in report
        assert "DAWG" in report
