"""Unit tests for workload cost profiling."""

import pytest

from repro.bench.profile import (
    CostProfile,
    imbalance_report,
    partition_imbalance,
    profile_costs,
)
from repro.exceptions import ExperimentError


class TestProfileCosts:
    def test_uniform_distribution(self):
        profile = profile_costs([2.0] * 10)
        assert profile.mean == 2.0
        assert profile.p50 == 2.0
        assert profile.maximum == 2.0
        assert profile.coefficient_of_variation == 0.0
        assert profile.skew_ratio == 1.0

    def test_skewed_distribution(self):
        profile = profile_costs([1.0] * 9 + [11.0])
        assert profile.mean == 2.0
        assert profile.maximum == 11.0
        assert profile.skew_ratio == 5.5
        assert profile.coefficient_of_variation > 1.0

    def test_percentiles_ordered(self):
        profile = profile_costs(list(range(1, 101)))
        assert profile.p50 <= profile.p90 <= profile.p99 <= \
            profile.maximum

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            profile_costs([])

    def test_negative_rejected(self):
        with pytest.raises(ExperimentError):
            profile_costs([1.0, -0.1])

    def test_summary_format(self):
        text = profile_costs([0.001, 0.002]).summary()
        assert "n=2" in text
        assert "ms" in text


class TestPartitionImbalance:
    def test_perfect_split(self):
        assert partition_imbalance([1.0] * 8, 4) == 1.0

    def test_single_thread_is_ideal_by_definition(self):
        assert partition_imbalance([3.0, 1.0, 2.0], 1) == 1.0

    def test_straggler_inflates(self):
        # One 10s query among 1s queries: 2 threads are badly skewed.
        factor = partition_imbalance([10.0] + [1.0] * 9, 2)
        assert factor > 1.4

    def test_more_threads_never_perfect_with_straggler(self):
        costs = [10.0] + [0.1] * 31
        # The straggler bounds the makespan regardless of threads.
        assert partition_imbalance(costs, 16) > 5.0

    def test_zero_costs(self):
        assert partition_imbalance([0.0, 0.0], 2) == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ExperimentError):
            partition_imbalance([], 2)
        with pytest.raises(ExperimentError):
            partition_imbalance([1.0], 0)


class TestImbalanceReport:
    def test_covers_thread_sweep(self):
        report = imbalance_report([0.01] * 50)
        for threads in (4, 8, 16, 32):
            assert f"{threads:>3} threads" in report
        assert "cost profile" in report
