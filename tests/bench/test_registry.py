"""Integration tests for the experiment registry (tiny scale).

Each registered experiment runs end to end on a miniature scale; the
assertions check the *structure* of the reports (rows, columns, notes)
— absolute timings are the benchmarks' business.
"""

import pytest

from repro.bench.experiment import ExperimentScale
from repro.bench.registry import (
    EXPERIMENTS,
    run_experiment,
)
from repro.exceptions import ExperimentError

#: Small enough that the whole file runs in well under a minute.
TINY = ExperimentScale(
    factor=0.1, city_count=150, dna_count=40,
    query_counts=(3, 4, 5), city_k=2, dna_k=4,
)


class TestRegistry:
    def test_every_paper_artifact_is_registered(self):
        expected = {
            "table01", "table02", "table03", "table04", "table05",
            "table06", "table07", "table08", "table09",
            "fig06", "fig07", "ablation", "shootout", "sweep",
            "memory", "scaling", "joins",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment("table99")

    def test_experiments_carry_paper_references(self):
        refs = {e.paper_ref for e in EXPERIMENTS.values()}
        assert "Table I" in refs
        assert "Figure 7" in refs


class TestTable01:
    def test_report_structure(self):
        report = run_experiment("table01", TINY)
        assert "City names" in report
        assert "DNA" in report
        assert "0, 1, 2, 3" in report
        assert "0, 4, 8, 16" in report


class TestStageTables:
    def test_table03_has_all_six_stages(self):
        report = run_experiment("table03", TINY)
        for stage in range(1, 7):
            assert f"{stage})" in report
        assert "100 queries" in report
        assert "1000 queries" in report

    def test_table07_estimates_base(self):
        report = run_experiment("table07", TINY)
        assert "(est.)" in report
        assert "1) base implementation" in report

    def test_table05_reports_compression(self):
        report = run_experiment("table05", TINY)
        assert "compression" in report.lower()
        assert "trie nodes" in report

    def test_table09_structure(self):
        report = run_experiment("table09", TINY)
        assert "prefix tree" in report
        assert "management of parallelism" in report


class TestThreadSweeps:
    @pytest.mark.parametrize("experiment_id",
                             ["table02", "table04", "table06", "table08"])
    def test_sweep_has_four_thread_rows(self, experiment_id):
        report = run_experiment(experiment_id, TINY)
        for threads in (4, 8, 16, 32):
            assert f"{threads} threads" in report
        assert "model optimum" in report


class TestFigures:
    def test_fig06_sequential_wins_cities(self):
        report = run_experiment("fig06", TINY)
        assert "best sequential" in report
        assert "best index-based" in report
        assert "wins" in report

    def test_fig07_structure(self):
        report = run_experiment("fig07", TINY)
        assert "best sequential" in report
        assert "best index-based" in report


class TestAblation:
    def test_ablation_covers_future_work_items(self):
        report = run_experiment("ablation", TINY)
        assert "presorted" in report
        assert "frequency vectors" in report
        assert "q-gram" in report
        assert "dictionary compression" in report
        assert "storage saved: 62%" in report


class TestExtras:
    def test_shootout_lists_every_structure(self):
        report = run_experiment("shootout", TINY)
        for name in ("sequential scan", "prefix trie", "compressed trie",
                     "freq vectors", "automaton", "q-gram", "BK-tree"):
            assert name in report, name

    def test_sweep_covers_table_one_thresholds(self):
        report = run_experiment("sweep", TINY)
        for row in ("city k=0 / DNA k=0", "city k=3 / DNA k=16"):
            assert row in report

    def test_joins_compares_all_strategies(self):
        report = run_experiment("joins", TINY)
        for strategy in ("length-banded scan", "prefix-filtered",
                         "trie probing"):
            assert strategy in report
        assert "verified identical" in report

    def test_memory_reports_both_datasets(self):
        report = run_experiment("memory", TINY)
        assert "city-name strings" in report
        assert "DNA-read strings" in report
        assert "compressed trie" in report

    def test_scaling_has_four_sizes(self):
        report = run_experiment("scaling", TINY)
        assert report.count("reads") >= 4
        assert "sub-linearly" in report
