"""Unit tests for the figure renderer."""

import pytest

from repro.bench.figures import ComparisonSeries, render_comparison_figure


class TestRenderComparisonFigure:
    def test_contains_series_and_winner(self):
        figure = render_comparison_figure(
            "Figure X", ["100 queries"],
            [ComparisonSeries("sequential", (1.0,)),
             ComparisonSeries("indexed", (2.0,))],
        )
        assert "sequential" in figure
        assert "indexed" in figure
        assert "wins" in figure
        assert "50%" in figure

    def test_bars_scale_with_values(self):
        figure = render_comparison_figure(
            "demo", ["c"],
            [ComparisonSeries("short", (1.0,)),
             ComparisonSeries("long", (4.0,))],
        )
        lines = {line.strip().split()[0]: line
                 for line in figure.splitlines() if "#" in line}
        assert lines["long"].count("#") > lines["short"].count("#")

    def test_multiple_columns(self):
        figure = render_comparison_figure(
            "demo", ["100", "500"],
            [ComparisonSeries("a", (1.0, 2.0)),
             ComparisonSeries("b", (2.0, 1.0))],
        )
        assert "100:" in figure and "500:" in figure
        # Winner flips between columns.
        assert "100: a wins" in figure
        assert "500: b wins" in figure

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            render_comparison_figure("demo", ["c"], [])

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_comparison_figure(
                "demo", ["c1", "c2"],
                [ComparisonSeries("a", (1.0,))],
            )

    def test_all_zero_values_render(self):
        figure = render_comparison_figure(
            "demo", ["c"],
            [ComparisonSeries("a", (0.0,)),
             ComparisonSeries("b", (0.0,))],
        )
        assert "a" in figure
