"""Regression tests for the scheduler-model calibration.

The thread-sweep tables rest on one calibration choice: thread
create+join overhead ≈ 6× the mean query cost (derived from the
paper's own Table II). These tests drive the calibrated model with
synthetic cost distributions — no measurement, fully deterministic —
and assert that the paper's qualitative orderings fall out. If a
simulator or calibration change breaks these, every thread-sweep table
changes meaning.
"""

from repro.bench.registry import (
    THREAD_SWEEP,
    _calibrated_machine,
    _extend_costs,
)
from repro.parallel.simulator import (
    simulate_fixed_pool,
    simulate_thread_per_query,
)

#: A city-like uniform workload: 22 ms per query (the paper's stage-4
#: per-query cost), in paper-sized batches.
UNIFORM = [0.022] * 60


def sweep(costs, batch):
    machine = _calibrated_machine(costs)
    extended = _extend_costs(costs, batch)
    return {
        threads: simulate_fixed_pool(extended, threads, machine).wall_time
        for threads in THREAD_SWEEP
    }


class TestPaperOrderings:
    def test_table_ii_small_batch_ordering(self):
        # Paper, 100 queries: 4 < 8 < 16 < 32.
        times = sweep(UNIFORM, 100)
        assert times[4] < times[8] < times[16] < times[32]

    def test_table_ii_large_batch_ordering(self):
        # Paper, 1000 queries: 8 best; 4 and 32 clearly worse.
        times = sweep(UNIFORM, 1000)
        assert times[8] < times[4]
        assert times[8] < times[32]

    def test_stage5_regression_factor(self):
        # Paper Table III: thread-per-query is ~6x worse than serial
        # stage 4 at 1000 queries (129.35 vs 21.64 s).
        machine = _calibrated_machine(UNIFORM)
        extended = _extend_costs(UNIFORM, 1000)
        serial = sum(extended)
        per_query = simulate_thread_per_query(extended, machine).wall_time
        assert 3.0 < per_query / serial < 9.0

    def test_managed_speedup_factor(self):
        # Paper Table III: 8 threads deliver ~3.6x over serial at 1000
        # queries (5.93 vs 21.64 s).
        machine = _calibrated_machine(UNIFORM)
        extended = _extend_costs(UNIFORM, 1000)
        serial = sum(extended)
        pooled = simulate_fixed_pool(extended, 8, machine).wall_time
        assert 2.5 < serial / pooled < 8.0

    def test_skewed_costs_narrow_the_8_vs_16_gap(self):
        # Tables IV/VI/VIII: with skewed per-query costs the 8/16/32
        # plateau flattens (the paper's optima there differ by < 4%).
        skewed = ([0.005] * 50 + [0.1] * 10)
        times = sweep(skewed, 1000)
        gap_uniform = sweep(UNIFORM, 1000)[16] / sweep(UNIFORM, 1000)[8]
        gap_skewed = times[16] / times[8]
        assert gap_skewed < gap_uniform

    def test_calibration_scales_with_cost_magnitude(self):
        # The overhead:work ratio — not absolute seconds — drives the
        # shape, so scaling every cost by 100x scales every wall time
        # by ~100x and preserves orderings.
        slow = [cost * 100 for cost in UNIFORM]
        fast_times = sweep(UNIFORM, 500)
        slow_times = sweep(slow, 500)
        for threads in THREAD_SWEEP:
            assert slow_times[threads] / fast_times[threads] == \
                __import__("pytest").approx(100.0, rel=1e-6)

    def test_empty_cost_guard(self):
        machine = _calibrated_machine([])
        assert machine.thread_create_cost > 0
