"""Unit tests for filter chains and statistics."""

from repro.filters.base import FilterChain, FilterStats
from repro.filters.frequency import FrequencyVectorFilter
from repro.filters.length import LengthFilter
from repro.filters.qgram import QGramCountFilter


def _chain() -> FilterChain:
    return FilterChain([
        LengthFilter(),
        FrequencyVectorFilter("AEIOU"),
        QGramCountFilter(q=2),
    ])


class TestFilterChain:
    def test_admits_when_all_members_admit(self):
        assert _chain().admits("Berlin", "Bern", 2)

    def test_rejects_when_any_member_rejects(self):
        chain = _chain()
        assert not chain.admits("Berlin", "B", 2)        # length
        assert not chain.admits("Berlin", "Brln", 1)     # frequency

    def test_empty_chain_admits_everything(self):
        chain = FilterChain([])
        assert chain.admits("a", "zzzzzz", 0)

    def test_survivors_preserve_order(self):
        chain = _chain()
        candidates = ["Berlin", "Bern", "B", "Berlin"]
        survivors = chain.survivors("Berlin", candidates, 2)
        assert survivors == ["Berlin", "Bern", "Berlin"]

    def test_stats_count_examined_and_rejected(self):
        chain = _chain()
        chain.admits("Berlin", "Bern", 2)
        chain.admits("Berlin", "B", 2)
        assert chain.stats.examined == 2
        assert chain.stats.rejected == 1
        assert chain.stats.admitted == 1

    def test_reset_stats(self):
        chain = _chain()
        chain.admits("Berlin", "B", 2)
        chain.reset_stats()
        assert chain.stats.examined == 0
        assert chain.stats.rejected == 0

    def test_prepare_query_reaches_all_members(self):
        chain = _chain()
        chain.prepare_query("Berlin")
        # Cached paths must agree with uncached behaviour.
        assert not chain.admits("Berlin", "Brln", 1)


class TestFilterStats:
    def test_rejection_rate(self):
        stats = FilterStats(examined=4, rejected=1)
        assert stats.rejection_rate == 0.25

    def test_rejection_rate_idle(self):
        assert FilterStats().rejection_rate == 0.0

    def test_merge(self):
        merged = FilterStats(4, 1).merge(FilterStats(6, 2))
        assert merged.examined == 10
        assert merged.rejected == 3
