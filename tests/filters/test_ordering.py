"""Unit tests for filter-chain ordering."""

import pytest

from repro.exceptions import ReproError
from repro.filters.base import CandidateFilter, FilterChain
from repro.filters.frequency import FrequencyVectorFilter
from repro.filters.length import LengthFilter
from repro.filters.ordering import (
    FilterMeasurement,
    explain_ordering,
    measure_filters,
    optimize_chain,
)
from repro.filters.qgram import QGramCountFilter

QUERIES = ["Bern", "Hamburg"]
CANDIDATES = ["Berlin", "B", "Hamm", "Hamburg", "Ulm", "Bremen"]


class TestFilterMeasurement:
    def test_rank_prefers_cheap_selective(self):
        cheap = FilterMeasurement("cheap", 1e-7, 0.5)
        pricey = FilterMeasurement("pricey", 1e-5, 0.5)
        assert cheap.rank < pricey.rank

    def test_useless_filter_ranks_last(self):
        useless = FilterMeasurement("useless", 1e-9, 0.0)
        assert useless.rank == float("inf")


class TestMeasureFilters:
    def test_measures_every_filter(self):
        filters = [LengthFilter(), FrequencyVectorFilter("AEIOU")]
        measurements = measure_filters(filters, QUERIES, CANDIDATES, 1)
        assert [m.name for m in measurements] == \
            ["length", "frequency-vector"]
        assert all(m.seconds_per_call > 0 for m in measurements)
        assert all(0.0 <= m.rejection_rate <= 1.0 for m in measurements)

    def test_length_filter_rejects_on_this_sample(self):
        (measurement,) = measure_filters([LengthFilter()], QUERIES,
                                         CANDIDATES, 1)
        assert measurement.rejection_rate > 0

    def test_empty_sample_rejected(self):
        with pytest.raises(ReproError):
            measure_filters([LengthFilter()], [], CANDIDATES, 1)
        with pytest.raises(ReproError):
            measure_filters([LengthFilter()], QUERIES, [], 1)


class TestOptimizeChain:
    def test_results_unchanged_by_reordering(self):
        chain = FilterChain([QGramCountFilter(2), LengthFilter(),
                             FrequencyVectorFilter("AEIOU")])
        tuned = optimize_chain(chain, QUERIES, CANDIDATES, 1)
        assert {f.name for f in tuned.filters} == \
            {f.name for f in chain.filters}
        for query in QUERIES:
            for candidate in CANDIDATES:
                chain.prepare_query(query)
                tuned.prepare_query(query)
                assert chain.admits(query, candidate, 1) == \
                    tuned.admits(query, candidate, 1)

    def test_length_filter_migrates_to_front(self):
        # The length filter is far cheaper than the q-gram filter and
        # rejects plenty here, so it must end up first.
        chain = FilterChain([QGramCountFilter(2),
                             FrequencyVectorFilter("AEIOU"),
                             LengthFilter()])
        tuned = optimize_chain(chain, QUERIES, CANDIDATES, 1)
        assert tuned.filters[0].name == "length"

    def test_input_chain_unmodified(self):
        chain = FilterChain([QGramCountFilter(2), LengthFilter()])
        original = [f.name for f in chain.filters]
        optimize_chain(chain, QUERIES, CANDIDATES, 1)
        assert [f.name for f in chain.filters] == original

    def test_never_rejecting_filter_sinks(self):
        class AdmitAll(CandidateFilter):
            name = "admit-all"

            def admits(self, query, candidate, k):
                return True

        chain = FilterChain([AdmitAll(), LengthFilter()])
        tuned = optimize_chain(chain, QUERIES, CANDIDATES, 1)
        assert tuned.filters[-1].name == "admit-all"


class TestExplainOrdering:
    def test_report_contains_rank_columns(self):
        chain = FilterChain([LengthFilter(),
                             FrequencyVectorFilter("AEIOU")])
        report = explain_ordering(chain, QUERIES, CANDIDATES, 1)
        assert "us/call" in report
        assert "length" in report
        assert "frequency-vector" in report
