"""Unit tests for prefix filtering."""

from collections import Counter

from repro.filters.prefix import (
    gram_frequencies,
    prefix_filter_admits,
    prefix_grams,
)
from repro.filters.qgram import qgrams


class TestGramFrequencies:
    def test_document_frequency_not_multiplicity(self):
        # "aaa" contains "aa" twice but counts once per document.
        frequencies = gram_frequencies(["aaa", "aab"], 2)
        assert frequencies["aa"] == 2
        assert frequencies["ab"] == 1

    def test_empty_dataset(self):
        assert gram_frequencies([], 2) == Counter()


class TestPrefixGrams:
    FREQ = gram_frequencies(
        ["common common", "common again", "rareXgram"], 2
    )

    def test_short_string_returns_all_grams(self):
        # 3 positional grams <= k*q+1 = 3: no pruning power, all grams.
        assert prefix_grams("abcd", 1, 2, self.FREQ) == \
            sorted(set(qgrams("abcd", 2)))

    def test_prefers_rare_grams(self):
        text = "Xcommon"          # "Xc" is rare, "co"/"om" etc common
        chosen = prefix_grams(text, 1, 2, self.FREQ)
        assert "Xc" in chosen

    def test_covers_required_occurrences(self):
        # The chosen distinct grams must cover >= k*q+1 positional
        # occurrences.
        text = "ababababab"
        chosen = prefix_grams(text, 2, 2, self.FREQ)
        occurrences = Counter(qgrams(text, 2))
        covered = sum(occurrences[gram] for gram in chosen)
        assert covered >= 2 * 2 + 1

    def test_deterministic(self):
        assert prefix_grams("deterministic", 1, 2, self.FREQ) == \
            prefix_grams("deterministic", 1, 2, self.FREQ)


class TestPrefixFilterAdmits:
    def test_admits_on_shared_gram(self):
        assert prefix_filter_admits(["ab", "cd"], {"xy", "cd"})

    def test_rejects_on_disjoint_sets(self):
        assert not prefix_filter_admits(["ab", "cd"], {"xy", "zz"})

    def test_soundness_on_true_matches(self):
        # Any pair within k must survive the filter when the prefix
        # has full power.
        from repro.distance.levenshtein import edit_distance

        dataset = ["similarity", "similarly", "dissimilar", "simulate"]
        frequencies = gram_frequencies(dataset, 2)
        k = 2
        for r in dataset:
            prefix = prefix_grams(r, k, 2, frequencies)
            if len(qgrams(r, 2)) <= k * 2 + 1:
                continue  # wildcard case, filter not applicable
            for s in dataset:
                if edit_distance(r, s) <= k:
                    assert prefix_filter_admits(
                        prefix, set(qgrams(s, 2))
                    ), (r, s)
