"""Property-based tests: filters never produce false negatives.

The soundness contract of :mod:`repro.filters` — a rejected pair is
provably beyond the threshold — is exactly what keeps every optimized
searcher's results identical to the reference. Hypothesis hunts for
counterexamples.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.levenshtein import edit_distance
from repro.filters.base import FilterChain
from repro.filters.frequency import FrequencyVectorFilter
from repro.filters.length import LengthFilter
from repro.filters.qgram import QGramCountFilter

# Alphabet with vowels so the frequency filter has tracked symbols.
text = st.text(alphabet="aeioubcd", max_size=12)
thresholds = st.integers(min_value=0, max_value=6)


class TestNoFalseNegatives:
    @given(text, text, thresholds)
    def test_length_filter_sound(self, x, y, k):
        if edit_distance(x, y) <= k:
            assert LengthFilter().admits(x, y, k)

    @given(text, text, thresholds)
    def test_frequency_filter_sound(self, x, y, k):
        filter_ = FrequencyVectorFilter("AEIOU")
        if edit_distance(x, y) <= k:
            assert filter_.admits(x, y, k)

    @given(text, text, thresholds, st.integers(min_value=1, max_value=3))
    def test_qgram_filter_sound(self, x, y, k, q):
        filter_ = QGramCountFilter(q=q)
        if edit_distance(x, y) <= k:
            assert filter_.admits(x, y, k)

    @settings(max_examples=60)
    @given(text, text, thresholds)
    def test_chain_sound(self, x, y, k):
        chain = FilterChain([
            LengthFilter(),
            FrequencyVectorFilter("AEIOU"),
            QGramCountFilter(q=2),
        ])
        if edit_distance(x, y) <= k:
            assert chain.admits(x, y, k)

    @settings(max_examples=60)
    @given(text, text, thresholds)
    def test_prepared_equals_unprepared(self, x, y, k):
        prepared = FrequencyVectorFilter("AEIOU")
        prepared.prepare_query(x)
        fresh = FrequencyVectorFilter("AEIOU")
        assert prepared.admits(x, y, k) == fresh.admits(x, y, k)


class TestRejectionsAreCorrect:
    @given(text, text, thresholds)
    def test_length_filter_rejections_justified(self, x, y, k):
        if not LengthFilter().admits(x, y, k):
            assert edit_distance(x, y) > k

    @given(text, text, thresholds)
    def test_frequency_rejections_justified(self, x, y, k):
        if not FrequencyVectorFilter("AEIOU").admits(x, y, k):
            assert edit_distance(x, y) > k

    @given(text, text, thresholds)
    def test_qgram_rejections_justified(self, x, y, k):
        if not QGramCountFilter(q=2).admits(x, y, k):
            assert edit_distance(x, y) > k
