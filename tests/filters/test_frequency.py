"""Unit tests for the frequency-vector filter."""

import pytest

from repro.filters.frequency import (
    FrequencyVectorFilter,
    frequency_lower_bound,
    frequency_vector,
)


class TestFrequencyVector:
    def test_counts_tracked_symbols(self):
        assert frequency_vector("banana", "abn",
                                case_insensitive=False) == (3, 1, 2)

    def test_case_insensitive_by_default(self):
        assert frequency_vector("Banana", "B") == (1,)

    def test_case_sensitive_mode(self):
        assert frequency_vector("Banana", "B",
                                case_insensitive=False) == (1,)
        assert frequency_vector("banana", "B",
                                case_insensitive=False) == (0,)

    def test_untracked_symbols_ignored(self):
        assert frequency_vector("xyzzy", "AEIOU") == (0, 0, 0, 0, 0)


class TestFrequencyLowerBound:
    def test_identical_vectors(self):
        assert frequency_lower_bound((1, 2, 3), (1, 2, 3)) == 0

    def test_pure_surplus(self):
        assert frequency_lower_bound((3, 0), (1, 0)) == 2

    def test_pure_deficit(self):
        assert frequency_lower_bound((0, 1), (2, 1)) == 2

    def test_mixed_takes_max_side(self):
        # Surplus 2 in slot 0, deficit 1 in slot 1 -> bound is 2: two
        # replaces can fix both sides simultaneously.
        assert frequency_lower_bound((3, 0), (1, 1)) == 2

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            frequency_lower_bound((1,), (1, 2))

    def test_is_a_true_lower_bound(self):
        from repro.distance.levenshtein import edit_distance

        pairs = [("Berlin", "Brln"), ("aeiou", "xyzzy"),
                 ("banana", "bandana"), ("", "aeiou")]
        for x, y in pairs:
            bound = frequency_lower_bound(
                frequency_vector(x, "AEIOU"), frequency_vector(y, "AEIOU")
            )
            assert bound <= edit_distance(x, y), (x, y)


class TestFrequencyVectorFilter:
    def test_rejects_on_vowel_deficit(self):
        filter_ = FrequencyVectorFilter("AEIOU")
        assert not filter_.admits("Berlin", "Brln", 1)

    def test_admits_at_boundary(self):
        filter_ = FrequencyVectorFilter("AEIOU")
        assert filter_.admits("Berlin", "Brln", 2)

    def test_prepare_query_caches_vector(self):
        filter_ = FrequencyVectorFilter("AEIOU")
        filter_.prepare_query("Berlin")
        # Same result with and without preparation.
        assert filter_.admits("Berlin", "Brln", 2)
        assert not filter_.admits("Berlin", "Brln", 1)

    def test_uncached_query_still_works(self):
        filter_ = FrequencyVectorFilter("AEIOU")
        filter_.prepare_query("something else")
        assert not filter_.admits("Berlin", "Brln", 1)

    def test_dna_tracked_symbols(self):
        filter_ = FrequencyVectorFilter("ACGNT", case_insensitive=False)
        assert not filter_.admits("AAAA", "TTTT", 3)
        assert filter_.admits("AAAA", "TTTT", 4)

    def test_rejects_empty_tracked_set(self):
        with pytest.raises(ValueError):
            FrequencyVectorFilter("")

    def test_vector_accessor(self):
        filter_ = FrequencyVectorFilter("AEIOU")
        assert filter_.vector("Europe") == (0, 2, 0, 1, 1)
        assert filter_.tracked == "AEIOU"
