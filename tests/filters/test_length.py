"""Unit tests for the length filter."""

from repro.filters.length import LengthFilter


class TestLengthFilter:
    def test_admits_equal_lengths(self):
        assert LengthFilter().admits("abcd", "wxyz", 0)

    def test_rejects_when_gap_exceeds_k(self):
        assert not LengthFilter().admits("Hamburg", "Hamm", 2)

    def test_admits_at_exact_boundary(self):
        assert LengthFilter().admits("Hamburg", "Hamm", 3)

    def test_symmetric(self):
        filter_ = LengthFilter()
        assert filter_.admits("ab", "abcd", 2) == \
            filter_.admits("abcd", "ab", 2)

    def test_never_false_negative_on_true_matches(self):
        from repro.distance.levenshtein import edit_distance

        filter_ = LengthFilter()
        pairs = [("Bern", "Berlin"), ("a", "ab"), ("same", "same")]
        for x, y in pairs:
            k = edit_distance(x, y)
            assert filter_.admits(x, y, k)

    def test_name(self):
        assert LengthFilter().name == "length"

    def test_prepare_query_is_a_noop(self):
        filter_ = LengthFilter()
        filter_.prepare_query("anything")  # must not raise
        assert filter_.admits("anything", "anythin", 1)
