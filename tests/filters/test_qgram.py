"""Unit tests for the q-gram count filter."""

import pytest

from repro.filters.qgram import (
    QGramCountFilter,
    qgram_overlap,
    qgram_profile,
    qgrams,
    required_overlap,
)


class TestQGrams:
    def test_basic_bigrams(self):
        assert qgrams("ACGT", 2) == ["AC", "CG", "GT"]

    def test_string_shorter_than_q(self):
        assert qgrams("A", 2) == []

    def test_string_equal_to_q(self):
        assert qgrams("AB", 2) == ["AB"]

    def test_q_one_is_symbols(self):
        assert qgrams("abc", 1) == ["a", "b", "c"]

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            qgrams("abc", 0)

    def test_profile_counts_multiplicity(self):
        profile = qgram_profile("AAAA", 2)
        assert profile["AA"] == 3


class TestOverlap:
    def test_identical_profiles(self):
        p = qgram_profile("ACGT", 2)
        assert qgram_overlap(p, p) == 3

    def test_disjoint_profiles(self):
        assert qgram_overlap(qgram_profile("AAAA", 2),
                             qgram_profile("TTTT", 2)) == 0

    def test_multiset_semantics(self):
        # "AAA" has AA x2; "AAAA" has AA x3; overlap is min = 2.
        assert qgram_overlap(qgram_profile("AAA", 2),
                             qgram_profile("AAAA", 2)) == 2

    def test_symmetry(self):
        a = qgram_profile("banana", 2)
        b = qgram_profile("bandana", 2)
        assert qgram_overlap(a, b) == qgram_overlap(b, a)


class TestRequiredOverlap:
    def test_exact_match_requirement(self):
        # k=0: all max(len)-q+1 grams must be shared.
        assert required_overlap(6, 6, 2, 0) == 5

    def test_each_error_destroys_q_grams(self):
        assert required_overlap(6, 6, 2, 1) == 3
        assert required_overlap(6, 6, 2, 2) == 1

    def test_bound_can_go_non_positive(self):
        assert required_overlap(4, 4, 2, 2) <= 0


class TestQGramCountFilter:
    def test_rejects_clearly_distant_pair(self):
        assert not QGramCountFilter(q=2).admits(
            "ACGTACGT", "TTTTTTTT", 1
        )

    def test_admits_near_pair(self):
        assert QGramCountFilter(q=2).admits("ACGTACGT", "ACGTACGA", 1)

    def test_powerless_bound_admits_everything(self):
        # Short strings: the bound is non-positive, nothing is rejected.
        filter_ = QGramCountFilter(q=3)
        assert filter_.admits("ab", "xy", 2)

    def test_no_false_negatives_on_sample(self):
        from repro.distance.levenshtein import edit_distance

        filter_ = QGramCountFilter(q=2)
        pairs = [("banana", "bandana"), ("Berlin", "Bern"),
                 ("GATTACA", "GATTACA"), ("abcdef", "abcdeg")]
        for x, y in pairs:
            k = edit_distance(x, y)
            filter_.prepare_query(x)
            assert filter_.admits(x, y, k), (x, y, k)

    def test_prepare_query_caching(self):
        filter_ = QGramCountFilter(q=2)
        filter_.prepare_query("ACGTACGT")
        assert not filter_.admits("ACGTACGT", "TTTTTTTT", 1)
        # A different query than the cached one must still be handled.
        assert not filter_.admits("GGGGGGGG", "TTTTTTTT", 1)

    def test_invalid_q_rejected(self):
        with pytest.raises(ValueError):
            QGramCountFilter(q=0)

    def test_q_property(self):
        assert QGramCountFilter(q=3).q == 3
