"""Unit tests for the CompiledScanSearcher adapter and engine wiring."""

import pytest

from repro.core.engine import SearchEngine
from repro.core.sequential import SequentialScanSearcher
from repro.core.verification import verify_against_reference
from repro.data.workload import Workload
from repro.parallel.executor import ThreadPoolRunner
from repro.scan.corpus import CompiledCorpus
from repro.scan.searcher import CompiledScanSearcher

DATASET = ["Berlin", "Bern", "Ulm", "Hamburg", "Bremen", "Bonn"]


class TestSearcherContract:
    def test_search_equals_reference(self):
        searcher = CompiledScanSearcher(DATASET)
        reference = SequentialScanSearcher(DATASET, kernel="reference")
        for query in ("Bern", "Hamburk", "zzz", ""):
            assert searcher.search(query, 2) == reference.search(query, 2)

    def test_accepts_prebuilt_corpus(self):
        corpus = CompiledCorpus(DATASET)
        a = CompiledScanSearcher(corpus)
        b = CompiledScanSearcher(corpus)
        assert a.corpus is b.corpus          # compilation shared
        assert a.search("Bern", 1) == b.search("Bern", 1)

    def test_name_and_dataset(self):
        searcher = CompiledScanSearcher(DATASET + ["Bern"])
        assert searcher.name == "compiled-scan"
        assert searcher.dataset == tuple(DATASET)   # dedup, order kept

    def test_run_workload_dedupes_but_keeps_rows(self):
        searcher = CompiledScanSearcher(DATASET)
        workload = Workload(("Bern", "Ulm", "Bern"), 1, "dup")
        results = searcher.run_workload(workload)
        assert len(results) == 3
        assert results.rows[0] == results.rows[2]
        assert searcher.executor.stats.deduplicated == 1

    def test_run_workload_with_runner(self):
        searcher = CompiledScanSearcher(DATASET)
        workload = Workload(tuple(DATASET), 2, "threaded")
        serial = searcher.run_workload(workload)
        threaded = CompiledScanSearcher(DATASET).run_workload(
            workload, ThreadPoolRunner(threads=3)
        )
        assert serial == threaded

    def test_verifies_against_reference_helper(self, city_names,
                                               city_workload):
        verify_against_reference(
            CompiledScanSearcher(city_names), city_names, city_workload
        )

    def test_verifies_on_dna(self, dna_reads, dna_workload):
        verify_against_reference(
            CompiledScanSearcher(dna_reads), dna_reads, dna_workload
        )


class TestEngineWiring:
    def test_compiled_backend_forced(self):
        engine = SearchEngine(DATASET, backend="compiled")
        assert engine.default_plan.strategy == "compiled"
        assert isinstance(engine.searcher, CompiledScanSearcher)
        reference = SequentialScanSearcher(DATASET, kernel="reference")
        assert engine.search("Hamburk", 1) == reference.search("Hamburk", 1)

    def test_auto_rule_scores_the_compiled_strategy(self, city_names,
                                                    dna_reads):
        # The planner's auto decision always scores the compiled scan
        # alongside the other strategies and picks the cheapest
        # feasible one.
        for corpus in (city_names, dna_reads):
            plan = SearchEngine(corpus).default_plan
            scored = {e.strategy for e in plan.estimates}
            assert "compiled" in scored
            feasible = [e for e in plan.estimates if e.feasible]
            assert plan.cost_for(plan.strategy) \
                == min(e.cost for e in feasible)

    def test_search_many_routes_through_batch_engine(self, city_names):
        engine = SearchEngine(city_names)        # sequential regime
        queries = [city_names[0], city_names[1], city_names[0]]
        results = engine.search_many(queries, 1)
        assert len(results) == 3
        assert engine.last_report.batch is not None
        assert engine.last_report.batch.deduplicated == 1
        reference = SequentialScanSearcher(city_names, kernel="reference")
        assert list(results.rows) == [
            tuple(reference.search(query, 1)) for query in queries
        ]

    def test_search_many_indexed_backend_uses_index_batch(self,
                                                          city_names):
        # Since the flat trie landed, the indexed backend has its own
        # batch engine instead of falling back to a per-query loop.
        engine = SearchEngine(city_names, backend="indexed")
        queries = [city_names[0], city_names[0]]
        results = engine.search_many(queries, 1)
        assert len(results) == 2
        assert engine.last_report.batch is not None
        assert engine.last_report.batch.unique_queries == 1
        reference = SequentialScanSearcher(city_names, kernel="reference")
        assert list(results.rows) == [
            tuple(reference.search(query, 1)) for query in queries
        ]

    def test_search_many_equals_search_loop(self, city_names):
        engine = SearchEngine(city_names, backend="compiled")
        queries = list(city_names[:5])
        batch = engine.search_many(queries, 2)
        assert list(batch.rows) == [
            tuple(engine.search(query, 2)) for query in queries
        ]
