"""Packed storage and kernel-selection parity at the scan layer.

Whatever storage mode the corpus compiled under and whatever kernel the
executor picked, a scan must return bit-identical match sets *and*
bit-identical ``scan.*`` work counters — the counters are an interface
(dashboards, the regression gate), not a debugging nicety.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deadline import Budget
from repro.data.alphabet import DNA_ALPHABET
from repro.exceptions import DeadlineExceeded, ReproError
from repro.scan.corpus import CompiledCorpus
from repro.scan.executor import (
    SCAN_KERNELS,
    BatchScanExecutor,
    scan_query,
)

READS = [
    "ACGTACGTACGTACGTACGT",
    "ACGTACGTACGTACGTACGA",
    "TTTTTTTTTTTTTTTTTTTT",
    "ACGTACGTACGTACGTAC",
    "GGGGCCCCGGGGCCCCGGGG",
    "ACGTACGTACGTACGAACGT",
    "NNNNACGTACGTACGTACGT",
] * 4  # duplicates collapse; repeats keep bucket sizes honest

CITIES = ["Berlin", "Bern", "Bonn", "Bremen", "Berlingen",
          "Hamburg", "Hamm", "Ulm", "Uelzen", "Erlangen"]


def _kernel_runs(dataset, query, k, *, packed):
    corpus = CompiledCorpus(dataset, packed=packed)
    runs = {}
    for kernel in SCAN_KERNELS:
        executor = BatchScanExecutor(corpus, cache_size=0,
                                     kernel=kernel)
        matches = executor.search(query, k)
        runs[kernel] = (matches, executor.counters_snapshot())
    return runs


class TestPackedCorpusParity:
    def test_packed_mode_preserves_strings_and_buckets(self):
        plain = CompiledCorpus(READS, alphabet=DNA_ALPHABET)
        packed = CompiledCorpus(READS, alphabet=DNA_ALPHABET,
                                packed=True)
        assert packed.packed and not plain.packed
        assert packed.strings == plain.strings
        assert packed.lengths == plain.lengths
        for a, b in zip(plain.buckets, packed.buckets):
            assert tuple(a.strings) == tuple(b.strings)
            assert b.packed is not None
            assert [list(row) for row in b.code_rows()] == \
                [list(row) for row in a.code_rows()]

    def test_storage_profile_reports_the_reduction(self):
        profile = CompiledCorpus(READS, alphabet=DNA_ALPHABET,
                                 packed=True).storage_profile()
        assert profile["mode"] == "packed"
        assert profile["packed_reduction"] > 1.5  # 3-bit DNA: ~2.6x

    @settings(max_examples=50, deadline=None)
    @given(st.text(alphabet="ACGNT", min_size=1, max_size=30),
           st.integers(min_value=0, max_value=6))
    def test_search_parity_packed_vs_encoded(self, query, k):
        plain = scan_query(CompiledCorpus(READS), query, k)
        packed = scan_query(CompiledCorpus(READS, packed=True),
                            query, k)
        assert packed == plain


class TestKernelParity:
    @pytest.mark.parametrize("dataset,query,k", [
        (READS, "ACGTACGTACGTACGTACGT", 3),
        (READS, "ACGTACGTACGTACGTACGT", 0),
        (READS, "TTTTTTTTTTTTTTTTTTAA", 6),
        (CITIES, "Berlino", 2),
        (CITIES, "Hamborg", 2),
    ])
    def test_matches_and_counters_identical(self, dataset, query, k):
        for packed in (False, True):
            runs = _kernel_runs(dataset, query, k, packed=packed)
            scalar_matches, scalar_counters = runs["scalar"]
            for kernel in ("auto", "vectorized"):
                matches, counters = runs[kernel]
                assert matches == scalar_matches, (kernel, packed)
                assert counters == scalar_counters, (kernel, packed)

    @settings(max_examples=50, deadline=None)
    @given(st.text(alphabet="ACGNTX", min_size=1, max_size=40),
           st.integers(min_value=0, max_value=8))
    def test_forced_vectorized_agrees_with_scalar(self, query, k):
        corpus = CompiledCorpus(READS, packed=True)
        scalar = scan_query(corpus, query, k, kernel="scalar")
        vector = scan_query(corpus, query, k, kernel="vectorized")
        assert vector == scalar

    def test_vectorized_budget_expiry_matches_scalar_partial_shape(self):
        corpus = CompiledCorpus(READS, packed=True)
        query = "ACGTACGTACGTACGTACGT"
        with pytest.raises(DeadlineExceeded) as caught:
            scan_query(corpus, query, 3, kernel="vectorized",
                       deadline=Budget(2, check_interval=1))
        assert caught.value.scope == "candidates"

    def test_unknown_kernel_rejected(self):
        corpus = CompiledCorpus(CITIES)
        with pytest.raises(ReproError, match="kernel"):
            scan_query(corpus, "Berlin", 1, kernel="simd")
        with pytest.raises(ReproError, match="kernel"):
            BatchScanExecutor(corpus, kernel="simd")

    def test_executor_exposes_its_kernel(self):
        corpus = CompiledCorpus(CITIES)
        assert BatchScanExecutor(corpus).kernel == "auto"
        assert BatchScanExecutor(corpus,
                                 kernel="scalar").kernel == "scalar"
