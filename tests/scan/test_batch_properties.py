"""Property tests: batch results equal the reference scan, always.

The acceptance criterion of the whole amortization layer is the paper's
own (section 3.1): whatever the compiled corpus precomputes and the
batch executor dedupes, memoizes or fans out, the result rows must be
byte-identical to ``SequentialScanSearcher(kernel="reference")`` — on
both alphabet regimes, for random strings and random thresholds.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sequential import SequentialScanSearcher
from repro.core.verification import verify_against_reference
from repro.data.alphabet import DNA_ALPHABET, city_alphabet
from repro.data.workload import Workload
from repro.scan.corpus import CompiledCorpus
from repro.scan.executor import BatchScanExecutor
from repro.scan.searcher import CompiledScanSearcher

# Non-empty strings: the searchers reject empty dataset members.
dna_strings = st.lists(
    st.text(alphabet="ACGNT", min_size=1, max_size=16),
    min_size=1, max_size=24,
)
# A slice of the city alphabet, diacritics included, to exercise the
# large-alphabet regime without blowing up example generation.
city_strings = st.lists(
    st.text(alphabet="abcdeßüé -", min_size=1, max_size=12),
    min_size=1, max_size=24,
)
queries_dna = st.lists(st.text(alphabet="ACGNT", max_size=16),
                       min_size=1, max_size=8)
queries_city = st.lists(st.text(alphabet="abcdeßüé -", max_size=12),
                        min_size=1, max_size=8)
thresholds = st.integers(min_value=0, max_value=5)


def assert_batch_equals_reference(dataset, queries, k):
    reference = SequentialScanSearcher(dataset, kernel="reference")
    expected = [tuple(reference.search(query, k)) for query in queries]
    executor = BatchScanExecutor(CompiledCorpus(dataset))
    results = executor.search_many(queries, k)
    assert list(results.rows) == expected


class TestBothAlphabets:
    @settings(max_examples=60, deadline=None)
    @given(dna_strings, queries_dna, thresholds)
    def test_dna_regime(self, dataset, queries, k):
        assert_batch_equals_reference(dataset, queries, k)

    @settings(max_examples=60, deadline=None)
    @given(city_strings, queries_city, thresholds)
    def test_city_regime(self, dataset, queries, k):
        assert_batch_equals_reference(dataset, queries, k)

    @settings(max_examples=30, deadline=None)
    @given(dna_strings, queries_dna, thresholds)
    def test_explicit_alphabet_matches_inferred(self, dataset, queries, k):
        inferred = BatchScanExecutor(CompiledCorpus(dataset))
        explicit = BatchScanExecutor(
            CompiledCorpus(dataset, alphabet=DNA_ALPHABET)
        )
        assert inferred.search_many(queries, k) == \
            explicit.search_many(queries, k)

    @settings(max_examples=30, deadline=None)
    @given(city_strings, queries_city, thresholds)
    def test_searcher_verifies_against_reference(self, dataset, queries, k):
        workload = Workload(tuple(queries), k, "property")
        verify_against_reference(
            CompiledScanSearcher(dataset), dataset, workload
        )


class TestEdgeCases:
    def test_empty_corpus(self):
        executor = BatchScanExecutor(CompiledCorpus([]))
        results = executor.search_many(["anything", ""], 3)
        assert all(row == () for row in results.rows)

    def test_empty_query(self):
        dataset = ["a", "ab", "abc", "abcd"]
        assert_batch_equals_reference(dataset, [""], 2)

    def test_empty_query_k_zero(self):
        assert_batch_equals_reference(["a", "bb"], [""], 0)

    def test_duplicate_queries_identical_rows(self):
        dataset = ["Bern", "Bonn", "Ulm"]
        executor = BatchScanExecutor(CompiledCorpus(dataset))
        results = executor.search_many(["Bern", "Bern", "Bern"], 2)
        assert results.rows[0] == results.rows[1] == results.rows[2]
        assert executor.stats.scans_executed == 1

    def test_k_zero_is_exact_membership(self):
        dataset = ["Bern", "Bonn"]
        assert_batch_equals_reference(dataset, ["Bern", "Berna"], 0)

    def test_unknown_query_symbols(self):
        dataset = ["ACGT", "ACGA"]
        assert_batch_equals_reference(dataset, ["ACGZ", "ZZZZ"], 1)

    def test_city_alphabet_sample_end_to_end(self, city_names):
        queries = list(city_names[:6]) + list(city_names[:3])
        assert_batch_equals_reference(list(city_names), queries, 2)

    def test_dna_sample_end_to_end(self, dna_reads):
        queries = list(dna_reads[:4])
        assert_batch_equals_reference(list(dna_reads), queries, 4)

    def test_city_alphabet_object_accepted(self, city_names):
        corpus = CompiledCorpus(city_names, alphabet=city_alphabet())
        executor = BatchScanExecutor(corpus)
        reference = SequentialScanSearcher(city_names, kernel="reference")
        query = city_names[0]
        assert executor.search(query, 1) == reference.search(query, 1)
