"""Unit tests for the compiled corpus."""

import pickle

import pytest

from repro.data.alphabet import DNA_ALPHABET, Alphabet
from repro.exceptions import AlphabetError, ReproError
from repro.scan.corpus import CompiledCorpus


class TestCompilation:
    def test_duplicates_collapsed_first_occurrence_order(self):
        corpus = CompiledCorpus(["b", "a", "b", "c", "a"])
        assert corpus.strings == ("b", "a", "c")
        assert corpus.size == 3
        assert corpus.total_strings == 5

    def test_empty_strings_rejected(self):
        with pytest.raises(ReproError):
            CompiledCorpus(["ok", ""])

    def test_empty_corpus_is_legal(self):
        corpus = CompiledCorpus([])
        assert corpus.size == 0
        assert corpus.alphabet is None
        assert corpus.buckets == ()
        assert corpus.window(5, 2) == (0, 0)
        assert corpus.encode_query("abc") == (-1, -1, -1)

    def test_alphabet_inferred_from_data(self):
        corpus = CompiledCorpus(["ba", "ab"])
        assert corpus.alphabet is not None
        assert corpus.alphabet.symbols == "ab"

    def test_explicit_alphabet_validates(self):
        with pytest.raises(AlphabetError):
            CompiledCorpus(["ACGT", "HELLO"], alphabet=DNA_ALPHABET)

    def test_encoding_round_trips(self):
        corpus = CompiledCorpus(["GATT", "ACA"], alphabet=DNA_ALPHABET)
        for bucket in corpus.buckets:
            for string, codes in zip(bucket.strings, bucket.encoded):
                assert DNA_ALPHABET.decode(codes) == string


class TestBuckets:
    def test_buckets_sorted_by_length(self):
        corpus = CompiledCorpus(["aaaa", "a", "aa", "bb", "ccc"])
        assert corpus.lengths == (1, 2, 3, 4)
        assert [len(b) for b in corpus.buckets] == [1, 2, 1, 1]
        assert corpus.min_length == 1
        assert corpus.max_length == 4

    def test_window_is_equation_five(self):
        corpus = CompiledCorpus(["a", "bb", "ccc", "dddd", "eeeee"])
        window = corpus.buckets_in_window(3, 1)
        assert [b.length for b in window] == [2, 3, 4]
        assert corpus.candidates_in_window(3, 1) == 3

    def test_window_outside_lengths_is_empty(self):
        corpus = CompiledCorpus(["aa", "bb"])
        assert corpus.buckets_in_window(10, 2) == ()

    def test_window_k_zero_is_exact_length(self):
        corpus = CompiledCorpus(["a", "bb", "ccc"])
        assert [b.length for b in corpus.buckets_in_window(2, 0)] == [2]


class TestFrequencyVectors:
    def test_tiny_alphabet_tracks_everything(self):
        corpus = CompiledCorpus(["ACCA"], alphabet=DNA_ALPHABET)
        assert corpus.tracked == "ACGNT"
        assert corpus.buckets[0].frequencies[0] == (2, 2, 0, 0, 0)

    def test_large_alphabet_tracks_vowels(self):
        alphabet = Alphabet("wide", "abcdefghij")
        corpus = CompiledCorpus(["beach"], alphabet=alphabet)
        assert "a" in corpus.tracked and "e" in corpus.tracked

    def test_query_vector_pairs_with_bucket_vectors(self):
        corpus = CompiledCorpus(["ACCA"], alphabet=DNA_ALPHABET)
        assert corpus.query_frequencies("CAT") == (1, 1, 0, 0, 1)

    def test_tracked_override(self):
        corpus = CompiledCorpus(["abc"], tracked="a")
        assert corpus.tracked == "a"
        assert corpus.buckets[0].frequencies[0] == (1,)


class TestQueryEncoding:
    def test_unknown_symbols_map_to_sentinel(self):
        corpus = CompiledCorpus(["ACGT"], alphabet=DNA_ALPHABET)
        assert corpus.encode_query("AXG") == (0, -1, 2)

    def test_picklable_for_process_pools(self):
        corpus = CompiledCorpus(["Bern", "Ulm"])
        clone = pickle.loads(pickle.dumps(corpus))
        assert clone.strings == corpus.strings
        assert clone.lengths == corpus.lengths
        assert clone.encode_query("Bern") == corpus.encode_query("Bern")

    def test_describe_reports_compile_facts(self):
        corpus = CompiledCorpus(["aa", "aa", "b"])
        facts = corpus.describe()
        assert facts["strings"] == 2
        assert facts["duplicates_collapsed"] == 1
        assert facts["buckets"] == 2
