"""Unit tests for the batch scan executor and its LRU memo."""

import pytest

from repro.core.result import Match
from repro.core.sequential import SequentialScanSearcher
from repro.data.workload import Workload
from repro.exceptions import InvalidThresholdError, ReproError
from repro.parallel.executor import SerialRunner, ThreadPoolRunner
from repro.scan.cache import LRUCache
from repro.scan.corpus import CompiledCorpus
from repro.scan.executor import BatchScanExecutor, scan_query

DATASET = ["Berlin", "Bern", "Ulm", "Hamburg", "Bremen", "Bonn"]


def reference_rows(queries, k):
    searcher = SequentialScanSearcher(DATASET, kernel="reference")
    return [tuple(searcher.search(query, k)) for query in queries]


class TestScanQuery:
    def test_matches_reference_kernel(self):
        corpus = CompiledCorpus(DATASET)
        for query in ("Bern", "Hamburk", "zzz", ""):
            for k in (0, 1, 2):
                assert tuple(scan_query(corpus, query, k)) == \
                    reference_rows([query], k)[0]

    def test_bucket_slice_restriction(self):
        corpus = CompiledCorpus(DATASET)
        full = scan_query(corpus, "Bern", 2)
        lo, hi = corpus.window(4, 2)
        parts = []
        for index in range(lo, hi):
            parts.extend(scan_query(corpus, "Bern", 2,
                                    lo=index, hi=index + 1))
        assert sorted(parts) == full

    def test_invalid_threshold_rejected(self):
        with pytest.raises(InvalidThresholdError):
            scan_query(CompiledCorpus(DATASET), "Bern", -1)

    def test_frequency_filter_does_not_change_results(self):
        corpus = CompiledCorpus(DATASET)
        for query in ("Bern", "Brln", "Hamburk"):
            with_filter = scan_query(corpus, query, 2, use_frequency=True)
            without = scan_query(corpus, query, 2, use_frequency=False)
            assert with_filter == without


class TestSearchMany:
    def test_rows_in_input_order_with_duplicates(self):
        executor = BatchScanExecutor(CompiledCorpus(DATASET))
        queries = ["Bern", "Ulm", "Bern", "zzz", "Bern"]
        results = executor.search_many(queries, 1)
        assert results.queries == tuple(queries)
        assert list(results.rows) == reference_rows(queries, 1)

    def test_deduplication_counted(self):
        executor = BatchScanExecutor(CompiledCorpus(DATASET))
        executor.search_many(["Bern"] * 10 + ["Ulm"], 1)
        assert executor.stats.queries_seen == 11
        assert executor.stats.unique_queries == 2
        assert executor.stats.deduplicated == 9
        assert executor.stats.scans_executed == 2

    def test_memo_spans_batches(self):
        executor = BatchScanExecutor(CompiledCorpus(DATASET))
        executor.search_many(["Bern", "Ulm"], 1)
        executor.search_many(["Bern", "Ulm"], 1)
        assert executor.stats.cache_hits == 2
        assert executor.stats.scans_executed == 2

    def test_memo_keyed_by_threshold_too(self):
        executor = BatchScanExecutor(CompiledCorpus(DATASET))
        executor.search_many(["Bern"], 1)
        executor.search_many(["Bern"], 2)
        assert executor.stats.scans_executed == 2

    def test_cache_disabled(self):
        executor = BatchScanExecutor(CompiledCorpus(DATASET),
                                     cache_size=0)
        assert executor.cache is None
        executor.search_many(["Bern"], 1)
        executor.search_many(["Bern"], 1)
        assert executor.stats.scans_executed == 2

    def test_negative_cache_size_rejected(self):
        with pytest.raises(ReproError):
            BatchScanExecutor(CompiledCorpus(DATASET), cache_size=-1)

    def test_runner_fanout_identical(self):
        serial = BatchScanExecutor(CompiledCorpus(DATASET), cache_size=0)
        threaded = BatchScanExecutor(CompiledCorpus(DATASET), cache_size=0,
                                     runner=ThreadPoolRunner(threads=3))
        queries = ["Bern", "Hamburk", "Bremen", "Ulm", "Bern"]
        assert serial.search_many(queries, 2) == \
            threaded.search_many(queries, 2)

    def test_single_query_bucket_fanout(self):
        executor = BatchScanExecutor(CompiledCorpus(DATASET), cache_size=0)
        chunked = executor.search_many(
            ["Bern"], 2, runner=ThreadPoolRunner(threads=4)
        )
        assert list(chunked.rows) == reference_rows(["Bern"], 2)

    def test_single_query_fanout_serial_runner(self):
        executor = BatchScanExecutor(CompiledCorpus(DATASET), cache_size=0)
        result = executor.search_many(["Bern"], 2, runner=SerialRunner())
        assert list(result.rows) == reference_rows(["Bern"], 2)

    def test_run_workload_adapter(self):
        executor = BatchScanExecutor(CompiledCorpus(DATASET))
        workload = Workload(("Bern", "Ulm", "Bern"), 1, "adapter")
        results = executor.run_workload(workload)
        assert list(results.rows) == reference_rows(workload.queries, 1)

    def test_empty_batch(self):
        executor = BatchScanExecutor(CompiledCorpus(DATASET))
        assert len(executor.search_many([], 1)) == 0


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1       # refresh "a"
        cache.put("c", 3)                # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_counters(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        assert cache.hits == 1
        assert cache.misses == 1

    def test_refresh_on_put(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)               # refresh, no eviction
        cache.put("c", 3)                # evicts "b"
        assert sorted(cache.keys()) == ["a", "c"]
        assert cache.get("a") == 10

    def test_zero_capacity_rejected(self):
        with pytest.raises(ReproError):
            LRUCache(maxsize=0)

    def test_clear(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0

    def test_pickles_to_cold_cache(self):
        import pickle

        cache = LRUCache(maxsize=2)
        cache.put("a", Match("x", 1))
        clone = pickle.loads(pickle.dumps(cache))
        assert len(clone) == 0
        clone.put("b", 2)                # lock restored and usable
        assert clone.get("b") == 2
