"""Unit tests for the report-artifact validator (the CI schema gate)."""

import json

from repro.obs.report import BatchCounters, build_report
from repro.obs.validate import iter_reports, main, validate_file


def make_report_dict(**overrides):
    report = build_report(
        backend="compiled", engine="compiled-scan", mode="batch",
        queries=3, k=1, matches=2, seconds=0.002,
        counters={"scan.candidates": 12},
        batch=BatchCounters(3, 2, 0, 2),
    ).to_dict()
    report.update(overrides)
    return report


class TestIterReports:
    def test_finds_reports_nested_in_benchmark_records(self):
        document = {
            "results": [
                {"label": "city", "report": make_report_dict()},
                {"label": "dna",
                 "reports": {"trie": make_report_dict()}},
            ],
        }
        found = dict(iter_reports(document))
        assert set(found) == {
            "$.results[0].report",
            "$.results[1].reports.trie",
        }

    def test_does_not_descend_into_a_report(self):
        # the choice sub-dict must not be mistaken for a report
        found = list(iter_reports({"report": make_report_dict()}))
        assert len(found) == 1


class TestValidateFile:
    def test_valid_single_document(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"report": make_report_dict()}))
        assert validate_file(path) == []

    def test_valid_json_lines(self, tmp_path):
        path = tmp_path / "reports.jsonl"
        path.write_text("\n".join(
            json.dumps(make_report_dict()) for _ in range(3)
        ))
        assert validate_file(path) == []

    def test_schema_problem_is_located(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(
            {"nested": {"report": make_report_dict(mode="bogus")}}
        ))
        problems = validate_file(path)
        assert problems
        assert "$.nested.report" in problems[0]

    def test_no_reports_is_a_failure(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"results": []}))
        assert any("no embedded SearchReport" in p
                   for p in validate_file(path))

    def test_unreadable_file_is_a_failure(self, tmp_path):
        assert validate_file(tmp_path / "missing.json") != []


class TestMain:
    def test_exit_zero_on_valid(self, tmp_path, capsys):
        path = tmp_path / "ok.json"
        path.write_text(json.dumps(make_report_dict()))
        assert main([str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_exit_one_on_invalid(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(make_report_dict(queries="three")))
        assert main([str(path)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_usage_without_arguments(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().err
