"""Tests for the Chrome/Perfetto trace-event export."""

import json

from repro.obs.registry import MetricsRegistry, Span
from repro.obs.traceexport import (
    span_to_event,
    trace_document,
    trace_events,
    write_trace,
)


def _span(name="scan.search", path=None, depth=0, started=0.001,
          seconds=0.002):
    return Span(name=name, path=path or name, depth=depth,
                started=started, seconds=seconds)


class TestSpanToEvent:
    def test_complete_event_in_microseconds(self):
        event = span_to_event(_span(started=0.5, seconds=0.25))
        assert event["ph"] == "X"
        assert event["ts"] == 500000.0
        assert event["dur"] == 250000.0
        assert event["cat"] == "repro"

    def test_nesting_rides_in_args(self):
        event = span_to_event(_span(name="scan.kernel",
                                    path="batch/scan.kernel", depth=1))
        assert event["args"] == {"path": "batch/scan.kernel",
                                 "depth": 1}


class TestTraceDocument:
    def test_metadata_precedes_spans(self):
        events = trace_events([_span()], process_name="unit")
        assert events[0]["ph"] == "M"
        assert events[0]["args"]["name"] == "unit"
        assert events[1]["ph"] == "X"

    def test_accepts_a_registry(self):
        registry = MetricsRegistry()
        with registry.trace("outer"):
            with registry.trace("inner"):
                pass
        document = trace_document(registry)
        names = [e["name"] for e in document["traceEvents"]]
        assert "outer" in names and "inner" in names
        assert document["displayTimeUnit"] == "ms"

    def test_nested_span_paths_survive(self):
        registry = MetricsRegistry()
        with registry.trace("outer"):
            with registry.trace("inner"):
                pass
        by_name = {e["name"]: e for e in
                   trace_document(registry)["traceEvents"]
                   if e["ph"] == "X"}
        assert by_name["inner"]["args"]["path"] == "outer/inner"
        assert by_name["inner"]["args"]["depth"] == 1


class TestWriteTrace:
    def test_file_is_valid_trace_event_json(self, tmp_path):
        registry = MetricsRegistry()
        with registry.trace("engine.search"):
            pass
        path = write_trace(tmp_path / "trace.json", registry)
        document = json.loads(path.read_text(encoding="utf-8"))
        assert isinstance(document["traceEvents"], list)
        spans = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 1
        event = spans[0]
        # every field a viewer needs, with sane units
        assert event["name"] == "engine.search"
        assert set(event) >= {"ph", "ts", "dur", "pid", "tid", "cat"}
        assert event["ts"] >= 0 and event["dur"] >= 0

    def test_plain_span_iterable_works_too(self, tmp_path):
        path = write_trace(tmp_path / "t.json",
                           [_span(), _span(name="other")])
        document = json.loads(path.read_text(encoding="utf-8"))
        assert len(document["traceEvents"]) == 3  # metadata + 2 spans

    def test_engine_search_produces_spans(self, tmp_path, city_names):
        from repro.core.engine import SearchEngine

        registry = MetricsRegistry()
        engine = SearchEngine(city_names, backend="sequential",
                              metrics=registry)
        engine.search(city_names[0], 1)
        path = write_trace(tmp_path / "engine.json", registry)
        document = json.loads(path.read_text(encoding="utf-8"))
        names = {e["name"] for e in document["traceEvents"]
                 if e["ph"] == "X"}
        assert "engine.search" in names
