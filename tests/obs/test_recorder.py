"""Tests for the bounded slow-query flight recorder."""

import threading

import pytest

from repro.exceptions import ReproError
from repro.obs.recorder import FlightRecorder, QueryExemplar


def _exemplar(query="q", seconds=0.01, **kwargs):
    return QueryExemplar(query=query, k=2, backend="test",
                         seconds=seconds, **kwargs)


class TestBounds:
    def test_ring_evicts_oldest(self):
        recorder = FlightRecorder(capacity=3, top_n=0)
        for index in range(5):
            recorder.record(_exemplar(query=f"q{index}"))
        assert [e.query for e in recorder.records()] \
            == ["q2", "q3", "q4"]
        assert len(recorder) == 3

    def test_top_n_keeps_the_slowest_ever(self):
        recorder = FlightRecorder(capacity=2, top_n=2)
        recorder.record(_exemplar(query="slowest", seconds=9.0))
        for index in range(10):
            recorder.record(_exemplar(query=f"fast{index}",
                                      seconds=0.001))
        # the ring has wrapped past it, but the heap remembers
        assert recorder.slowest(1)[0].query == "slowest"

    def test_invalid_configuration_raises(self):
        with pytest.raises(ReproError):
            FlightRecorder(capacity=0)
        with pytest.raises(ReproError):
            FlightRecorder(top_n=-1)
        with pytest.raises(ReproError):
            FlightRecorder(threshold=-0.1)


class TestThreshold:
    def test_below_threshold_skips_the_ring(self):
        recorder = FlightRecorder(threshold=0.1, top_n=0)
        assert not recorder.record(_exemplar(seconds=0.05))
        assert recorder.record(_exemplar(seconds=0.15))
        assert len(recorder) == 1
        assert recorder.seen == 2 and recorder.recorded == 1

    def test_force_bypasses_the_threshold(self):
        recorder = FlightRecorder(threshold=10.0, top_n=0)
        event = _exemplar(seconds=0.001, kind="degraded")
        assert recorder.record(event, force=True)
        assert recorder.records() == (event,)

    def test_interested_is_consistent_with_record(self):
        recorder = FlightRecorder(threshold=0.1, top_n=1)
        assert recorder.interested(0.2)       # clears the threshold
        assert recorder.interested(0.05)      # top-N has a free slot
        recorder.record(_exemplar(seconds=0.5))
        assert not recorder.interested(0.05)  # slower root, under bar


class TestSlowest:
    def test_ranked_and_deduplicated(self):
        recorder = FlightRecorder(capacity=8, top_n=4)
        for seconds in (0.03, 0.01, 0.04, 0.02):
            recorder.record(_exemplar(query=f"{seconds}",
                                      seconds=seconds))
        ranked = [e.seconds for e in recorder.slowest()]
        assert ranked == sorted(ranked, reverse=True)
        assert len(ranked) == 4  # each exemplar appears once

    def test_clear(self):
        recorder = FlightRecorder()
        recorder.record(_exemplar())
        recorder.clear()
        assert recorder.slowest() == ()
        assert recorder.seen == 1  # counters survive a clear


class TestRender:
    def test_empty(self):
        assert "no queries" in FlightRecorder().render()

    def test_render_carries_stages_counters_and_note(self):
        recorder = FlightRecorder()
        recorder.record(_exemplar(
            query="Berlin", seconds=0.25, matches=3, kind="degraded",
            stages={"scan.search": 0.2},
            counters={"scan.candidates": 41},
            note="plan=flat"))
        text = recorder.render(5)
        assert "'Berlin'" in text
        assert "matches=3" in text
        assert "kind=degraded" in text
        assert "stage scan.search: 200.000ms" in text
        assert "scan.candidates = 41" in text
        assert "(plan=flat)" in text


class TestConcurrency:
    def test_parallel_records_stay_bounded_and_counted(self):
        recorder = FlightRecorder(capacity=16, top_n=4)
        per_thread = 200

        def hammer(tag):
            for index in range(per_thread):
                recorder.record(_exemplar(query=f"{tag}-{index}",
                                          seconds=index * 1e-4))

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert recorder.seen == 4 * per_thread
        assert len(recorder) == 16
        slowest = recorder.slowest()
        assert all(e.seconds == pytest.approx((per_thread - 1) * 1e-4)
                   for e in slowest[:4])
