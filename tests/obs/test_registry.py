"""Unit tests for the metrics registry."""

import pytest

from repro.obs.registry import (
    NULL,
    MetricsRegistry,
    NullRegistry,
    counter_delta,
    current_registry,
    trace,
    use_registry,
)


class TestCounters:
    def test_inc_creates_at_zero(self):
        registry = MetricsRegistry()
        registry.inc("scan.candidates")
        assert registry.counters() == {"scan.candidates": 1}

    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        registry.inc("scan.candidates", 40)
        registry.inc("scan.candidates", 2)
        assert registry.counters()["scan.candidates"] == 42

    def test_merge_counts_folds_a_worker_chunk_in(self):
        registry = MetricsRegistry()
        registry.inc("scan.kernel_calls", 10)
        registry.merge_counts({"scan.kernel_calls": 5, "scan.matches": 1})
        assert registry.counters() == {
            "scan.kernel_calls": 15,
            "scan.matches": 1,
        }

    def test_counters_returns_a_copy(self):
        registry = MetricsRegistry()
        registry.inc("a")
        snapshot = registry.counters()
        snapshot["a"] = 99
        assert registry.counters()["a"] == 1


class TestGauges:
    def test_gauge_is_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("corpus.buckets", 7)
        registry.gauge("corpus.buckets", 3)
        assert registry.gauges() == {"corpus.buckets": 3}


class TestTimers:
    def test_observe_accumulates_seconds_and_calls(self):
        registry = MetricsRegistry()
        registry.observe("scan.query", 0.5)
        registry.observe("scan.query", 0.25, count=2)
        cell = registry.timers()["scan.query"]
        assert cell["seconds"] == pytest.approx(0.75)
        assert cell["calls"] == 3

    def test_timer_context_manager_records_elapsed(self):
        registry = MetricsRegistry()
        with registry.timer("block"):
            pass
        cell = registry.timers()["block"]
        assert cell["calls"] == 1
        assert cell["seconds"] >= 0

    def test_timers_flat_subtracts_cleanly(self):
        registry = MetricsRegistry()
        registry.observe("scan.query", 1.0)
        before = registry.timers_flat()
        registry.observe("scan.query", 0.5)
        delta = counter_delta(before, registry.timers_flat())
        assert delta == {"scan.query.seconds": 0.5, "scan.query.calls": 1}


class TestSpans:
    def test_trace_records_a_span_and_feeds_the_timer(self):
        registry = MetricsRegistry()
        with registry.trace("scan.kernel"):
            pass
        assert [span.name for span in registry.spans] == ["scan.kernel"]
        assert registry.timers()["scan.kernel"]["calls"] == 1

    def test_nested_spans_record_depth_and_path(self):
        registry = MetricsRegistry()
        with registry.trace("batch"):
            with registry.trace("scan.kernel"):
                pass
        inner, outer = sorted(registry.spans, key=lambda s: s.depth,
                              reverse=True)
        assert outer.name == "batch" and outer.depth == 0
        assert inner.path == "batch/scan.kernel" and inner.depth == 1
        # the outer span closes last, so it covers the inner one
        assert outer.seconds >= inner.seconds

    def test_span_cap_drops_and_counts(self):
        registry = MetricsRegistry(max_spans=2)
        for _ in range(5):
            with registry.trace("s"):
                pass
        assert len(registry.spans) == 2
        assert registry.counters()["obs.spans_dropped"] == 3


class TestSnapshotAndReset:
    def test_snapshot_is_one_plain_structure(self):
        registry = MetricsRegistry()
        registry.inc("a", 2)
        registry.gauge("g", 1.5)
        with registry.trace("t"):
            pass
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"a": 2}
        assert snapshot["gauges"] == {"g": 1.5}
        assert snapshot["timers"]["t"]["calls"] == 1
        assert snapshot["spans"][0]["name"] == "t"

    def test_reset_zeroes_every_series(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.gauge("g", 1)
        with registry.trace("t"):
            pass
        registry.reset()
        assert registry.counters() == {}
        assert registry.gauges() == {}
        assert registry.timers() == {}
        assert registry.spans == []


class TestNullRegistry:
    def test_discards_everything(self):
        null = NullRegistry()
        null.inc("a", 5)
        null.merge_counts({"b": 1})
        null.gauge("g", 1)
        null.observe("t", 1.0)
        with null.timer("t"):
            pass
        with null.trace("s"):
            pass
        assert null.counters() == {}
        assert null.timers() == {}
        assert null.spans == []

    def test_enabled_flag_distinguishes_it(self):
        assert MetricsRegistry().enabled is True
        assert NULL.enabled is False


class TestAmbientRegistry:
    def test_default_is_null(self):
        assert current_registry() is NULL

    def test_use_registry_scopes_the_ambient_one(self):
        registry = MetricsRegistry()
        with use_registry(registry) as active:
            assert active is registry
            assert current_registry() is registry
            with trace("scan.kernel"):
                pass
        assert current_registry() is NULL
        assert registry.timers()["scan.kernel"]["calls"] == 1

    def test_module_trace_accepts_explicit_registry(self):
        registry = MetricsRegistry()
        with trace("x", registry):
            pass
        assert [span.name for span in registry.spans] == ["x"]

    def test_module_trace_without_registry_is_a_noop(self):
        with trace("nowhere"):
            pass  # goes to NULL: nothing recorded, nothing raised


class TestCounterDelta:
    def test_keeps_only_keys_that_moved(self):
        assert counter_delta({"a": 1, "c": 4}, {"a": 3, "b": 2, "c": 4}) \
            == {"a": 2, "b": 2}

    def test_empty_before(self):
        assert counter_delta({}, {"a": 1}) == {"a": 1}
