"""Tests for the structured event log and its CI validator."""

import io
import json

import pytest

from repro.exceptions import ReproError
from repro.obs.events import (
    EVENT_KINDS,
    NO_EVENTS,
    EventLog,
    validate_event,
    validate_event_lines,
)
from repro.obs.tracing import Tracer, use_trace


class TestEmit:
    def test_envelope_carries_ts_and_kind(self):
        log = EventLog(clock=lambda: 42.0)
        log.emit("flush", segments=3)
        event = log.events()[0]
        assert event == {"ts": 42.0, "kind": "flush", "segments": 3}

    def test_trace_id_defaults_to_ambient(self):
        log = EventLog()
        tracer = Tracer()
        context = tracer.mint()
        with use_trace(tracer, context):
            log.emit("shed", action="degrade")
        assert log.events()[0]["trace_id"] == context.trace_id

    def test_explicit_trace_id_wins_over_ambient(self):
        log = EventLog()
        tracer = Tracer()
        with use_trace(tracer, tracer.mint()):
            log.emit("shed", trace_id="explicit")
        assert log.events()[0]["trace_id"] == "explicit"

    def test_outside_a_trace_the_field_is_omitted(self):
        log = EventLog()
        log.emit("epoch", epoch=7)
        assert "trace_id" not in log.events()[0]

    def test_non_scalar_fields_are_stringified(self):
        log = EventLog()
        log.emit("shed", decision=["a", "b"])
        assert log.events()[0]["decision"] == "['a', 'b']"

    def test_ring_is_bounded_but_emitted_counts_all(self):
        log = EventLog(capacity=2)
        for index in range(5):
            log.emit("epoch", epoch=index)
        assert len(log) == 2
        assert log.emitted == 5
        assert [event["epoch"] for event in log.events()] == [3, 4]

    def test_bad_capacity_raises(self):
        with pytest.raises(ReproError):
            EventLog(capacity=0)


class TestSinkAndSnapshots:
    def test_sink_sees_every_line_as_json(self):
        sink = io.StringIO()
        log = EventLog(sink=sink, clock=lambda: 1.0)
        log.emit("flush", segments=1)
        log.emit("epoch", epoch=2)
        lines = sink.getvalue().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["kind"] == "flush"

    def test_broken_sink_is_disabled_not_raised(self):
        class Broken(io.TextIOBase):
            def write(self, text):
                raise OSError("disk full")

        log = EventLog(sink=Broken())
        log.emit("flush")
        log.emit("flush")  # second write skipped, still no raise
        assert len(log) == 2

    def test_tail_returns_the_newest_events(self):
        log = EventLog()
        for index in range(5):
            log.emit("epoch", epoch=index)
        assert [e["epoch"] for e in log.tail(2)] == [3, 4]

    def test_for_trace_filters(self):
        log = EventLog()
        log.emit("shed", trace_id="t1")
        log.emit("flush")
        log.emit("ladder_rung", trace_id="t1")
        kinds = [event["kind"] for event in log.for_trace("t1")]
        assert kinds == ["shed", "ladder_rung"]

    def test_jsonl_round_trips_through_validator(self):
        log = EventLog()
        for kind in EVENT_KINDS:
            log.emit(kind)
        seen, problems = validate_event_lines(
            log.to_jsonl().splitlines())
        assert seen == len(EVENT_KINDS)
        assert problems == []

    def test_write_reports_line_count(self, tmp_path):
        log = EventLog()
        log.emit("flush")
        log.emit("epoch")
        path = tmp_path / "events.jsonl"
        assert log.write(str(path)) == 2
        assert len(path.read_text().splitlines()) == 2

    def test_null_log_discards(self):
        NO_EVENTS.emit("flush")
        assert len(NO_EVENTS) == 0


class TestValidation:
    def test_valid_event_passes(self):
        assert validate_event(
            {"ts": 1.0, "kind": "shed", "trace_id": "abc",
             "queue_depth": 9}) == []

    def test_unknown_kind_is_still_valid(self):
        assert validate_event({"ts": 1.0, "kind": "brand_new"}) == []

    def test_missing_ts_and_kind_both_reported(self):
        problems = validate_event({})
        assert len(problems) == 2

    def test_empty_trace_id_rejected(self):
        problems = validate_event(
            {"ts": 1.0, "kind": "shed", "trace_id": ""})
        assert any("trace_id" in problem for problem in problems)

    def test_nested_field_rejected(self):
        problems = validate_event(
            {"ts": 1.0, "kind": "shed", "extra": {"nested": 1}})
        assert any("extra" in problem for problem in problems)

    def test_lines_report_broken_json_without_crashing(self):
        seen, problems = validate_event_lines(
            ['{"ts": 1.0, "kind": "shed"}', "not json", ""])
        assert seen == 1
        assert len(problems) == 1
