"""Tests for request-scoped tracing: contexts, the tracer, propagation.

Covers the invariants the serving stack leans on: ids survive the
serialize/rebuild round trip, sampling is deterministic, spans record
even when blocks raise, the ambient helpers are no-ops outside a
trace, and the worker-boundary trio (ship_context / worker_span /
adopt_spans) rebuilds one coherent tree.
"""

import threading

import pytest

from repro.exceptions import ReproError
from repro.obs.tracing import (
    NULL_TRACER,
    TraceContext,
    Tracer,
    TraceSpan,
    adopt_spans,
    bound,
    current_context,
    current_trace,
    current_trace_id,
    emit_span,
    ship_context,
    span_tree,
    trace_span,
    use_trace,
    worker_span,
)


class TestTraceContext:
    def test_child_keeps_trace_id_and_links_parent(self):
        root = Tracer().mint()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_round_trip_preserves_identity_and_baggage(self):
        context = Tracer().mint(baggage={"shed": "admit"})
        rebuilt = TraceContext.from_dict(context.to_dict())
        assert rebuilt == context

    def test_with_baggage_keeps_span_ids(self):
        context = Tracer().mint()
        stamped = context.with_baggage(shed="degrade")
        assert stamped.span_id == context.span_id
        assert stamped.baggage_value("shed") == "degrade"

    def test_baggage_value_default(self):
        context = Tracer().mint()
        assert context.baggage_value("missing", "fallback") == "fallback"


class TestSampling:
    def test_rate_one_samples_every_mint(self):
        tracer = Tracer(sample_rate=1.0)
        assert all(tracer.mint().sampled for _ in range(5))

    def test_rate_zero_mints_ids_but_never_samples(self):
        tracer = Tracer(sample_rate=0.0)
        contexts = [tracer.mint() for _ in range(5)]
        assert all(not context.sampled for context in contexts)
        assert all(context.trace_id for context in contexts)

    def test_fractional_rate_is_deterministic_every_nth(self):
        tracer = Tracer(sample_rate=0.25)
        flags = [tracer.mint().sampled for _ in range(8)]
        assert flags == [False, False, False, True] * 2

    def test_bad_rate_raises(self):
        with pytest.raises(ReproError):
            Tracer(sample_rate=1.5)


class TestTracerCollection:
    def test_root_block_records_its_span(self):
        tracer = Tracer()
        with tracer.root("gateway.submit"):
            pass
        assert [span.name for span in tracer.spans()] \
            == ["gateway.submit"]

    def test_span_records_even_when_block_raises(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.root("gateway.submit"):
                raise ValueError("boom")
        assert len(tracer.spans()) == 1

    def test_bounded_collection_counts_drops(self):
        tracer = Tracer(max_spans=2)
        for _ in range(4):
            with tracer.root("s"):
                pass
        assert len(tracer.spans()) == 2
        assert tracer.dropped == 2

    def test_unsampled_context_records_nothing(self):
        tracer = Tracer(sample_rate=0.0)
        context = tracer.mint()
        tracer.record_span("s", context, 0.0, 0.001)
        assert tracer.spans() == ()

    def test_null_tracer_discards(self):
        with NULL_TRACER.root("s"):
            pass
        assert len(NULL_TRACER.spans()) == 0


class TestAmbientHelpers:
    def test_outside_a_trace_everything_is_inert(self):
        assert current_trace() == (None, None)
        assert current_context() is None
        assert current_trace_id() == ""
        handle = trace_span("scan.query")
        with handle:
            pass
        emit_span("scan.query", 0.001)  # must not raise

    def test_trace_span_nests_under_ambient(self):
        tracer = Tracer()
        with tracer.root("outer") as root:
            with trace_span("inner"):
                pass
        spans = {span.name: span for span in tracer.spans()}
        assert spans["inner"].parent_id == root.span_id
        assert spans["inner"].trace_id == root.trace_id

    def test_trace_span_returns_shared_null_outside(self):
        assert trace_span("a") is trace_span("b")

    def test_unsampled_trace_span_is_the_shared_null(self):
        tracer = Tracer(sample_rate=0.0)
        with use_trace(tracer, tracer.mint()):
            assert trace_span("a") is trace_span("b")

    def test_emit_span_is_a_leaf_under_ambient(self):
        tracer = Tracer()
        with tracer.root("outer") as root:
            emit_span("leaf", 0.002, {"query": "q"})
        leaf = [s for s in tracer.spans() if s.name == "leaf"][0]
        assert leaf.parent_id == root.span_id
        assert leaf.seconds == 0.002
        assert ("query", "q") in leaf.tags

    def test_use_trace_restores_previous_pair(self):
        tracer = Tracer()
        context = tracer.mint()
        with use_trace(tracer, context):
            assert current_context() is context
        assert current_context() is None


class TestWorkerBoundary:
    def test_ship_context_is_none_outside_or_unsampled(self):
        assert ship_context() is None
        tracer = Tracer(sample_rate=0.0)
        with use_trace(tracer, tracer.mint()):
            assert ship_context() is None

    def test_worker_span_of_none_is_empty(self):
        assert worker_span("w", None, 0.0, 0.001) == ()

    def test_round_trip_parents_worker_under_shipping_site(self):
        tracer = Tracer()
        with tracer.root("parent") as root:
            shipped = ship_context()
            spans = worker_span("worker", shipped, 0.0, 0.003,
                                tags={"k": "2"})
            adopt_spans(spans)
        names = {span.name for span in tracer.spans()}
        assert names == {"parent", "worker"}
        tree = span_tree(tracer.spans_for(root.trace_id))
        depths = {span.name: depth for depth, span in tree.walk()}
        assert depths == {"parent": 0, "worker": 1}

    def test_adopt_spans_without_tracer_is_inert(self):
        adopt_spans(({"name": "w"},))  # no ambient tracer: no raise

    def test_bound_installs_the_pair_in_another_thread(self):
        tracer = Tracer()
        context = tracer.mint()
        seen = {}

        def probe():
            seen["context"] = current_context()

        thread = threading.Thread(
            target=bound(tracer, context, probe))
        thread.start()
        thread.join()
        assert seen["context"] is context


class TestSpanTree:
    def _span(self, name, trace_id="t1", span_id="s1", parent_id=None):
        return TraceSpan(name=name, trace_id=trace_id, span_id=span_id,
                         parent_id=parent_id, started=0.0,
                         seconds=0.001, pid=0, tid=0)

    def test_orphan_spans_become_extra_roots(self):
        tree = span_tree([
            self._span("root", span_id="a"),
            self._span("orphan", span_id="b", parent_id="missing"),
        ])
        assert {span.name for span in tree.roots} == {"root", "orphan"}

    def test_mixed_traces_raise_without_selector(self):
        with pytest.raises(ReproError):
            span_tree([
                self._span("a", trace_id="t1"),
                self._span("b", trace_id="t2", span_id="s2"),
            ])

    def test_selector_filters_to_one_trace(self):
        tree = span_tree([
            self._span("a", trace_id="t1"),
            self._span("b", trace_id="t2", span_id="s2"),
        ], trace_id="t2")
        assert [span.name for span in tree.spans] == ["b"]
