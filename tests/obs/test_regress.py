"""Tests for the noise-aware bench regression gate.

The gate's contract, exercised against the real committed artifacts:
self-diffing any ``BENCH_*.json`` exits 0, an artificially slowed copy
exits 1, and garbage (broken schema, missing files, nothing to
compare) exits 2 rather than pretending to pass.
"""

import copy
import json
from pathlib import Path

import pytest

from repro.obs.regress import (
    EXIT_ERROR,
    EXIT_OK,
    EXIT_REGRESSION,
    compare_documents,
    iter_measurements,
    main,
)
from repro.obs.validate import iter_reports

REPO_ROOT = Path(__file__).resolve().parents[2]

BENCH_FILES = sorted(REPO_ROOT.glob("BENCH_*.json"))


def _inflate(document, factor=10.0):
    """A copy of the document with every latency multiplied."""
    inflated = copy.deepcopy(document)
    for _, report in iter_reports(inflated):
        report["seconds"] = report["seconds"] * factor
        for name, cell in report.get("histograms", {}).items():
            if name.endswith("_seconds"):
                for key in ("mean", "p50", "p90", "p99", "p999", "max"):
                    cell[key] = cell[key] * factor
    for _, record in iter_measurements(inflated):
        record["measurements"] = {
            label: seconds * factor
            for label, seconds in record["measurements"].items()
        }
    return inflated


class TestCommittedBaselines:
    def test_baselines_exist(self):
        names = {path.name for path in BENCH_FILES}
        assert {"BENCH_batch.json", "BENCH_headtohead.json",
                "BENCH_service.json"} <= names

    @pytest.mark.parametrize(
        "path", BENCH_FILES, ids=lambda p: p.name)
    def test_self_diff_exits_zero(self, path):
        document = json.loads(path.read_text(encoding="utf-8"))
        code, lines = compare_documents(document, document)
        assert code == EXIT_OK, lines
        assert not any(line.startswith("REGRESSION") for line in lines)

    @pytest.mark.parametrize(
        "path", BENCH_FILES, ids=lambda p: p.name)
    def test_inflated_copy_exits_one(self, path):
        document = json.loads(path.read_text(encoding="utf-8"))
        code, lines = compare_documents(document, _inflate(document))
        assert code == EXIT_REGRESSION, lines
        assert any(line.startswith("REGRESSION") for line in lines)

    def test_deflated_copy_is_not_a_regression(self):
        # getting faster must never fail the gate
        document = json.loads(
            (REPO_ROOT / "BENCH_batch.json").read_text(encoding="utf-8"))
        code, lines = compare_documents(_inflate(document), document)
        assert code == EXIT_OK, lines


class TestNoiseAwareness:
    def _doc(self, seconds, matches=5, p50=None, p99=None):
        hist = {}
        if p50 is not None:
            hist["scan.query_seconds"] = {
                "count": 10, "mean": p50, "p50": p50, "p90": p50,
                "p99": p99 if p99 is not None else p50,
                "p999": p99 if p99 is not None else p50, "max": p50,
            }
        return {"report": {
            "schema_version": 2, "backend": "compiled",
            "engine": "compiled-scan", "mode": "batch",
            "queries": 10, "k": 2, "matches": matches,
            "seconds": seconds, "counters": {}, "timers": {},
            "histograms": hist,
            "choice": {"backend": "compiled", "reason": "test"},
            "batch": None,
        }}

    def test_sub_noise_floor_growth_is_excused(self):
        code, _ = compare_documents(
            self._doc(0.0010), self._doc(0.0012), noise_floor=0.01)
        assert code == EXIT_OK

    def test_growth_above_both_bars_regresses(self):
        code, lines = compare_documents(
            self._doc(1.0), self._doc(2.0))
        assert code == EXIT_REGRESSION
        assert any("seconds/query" in line for line in lines)

    def test_histogram_p50_wins_over_wall_clock(self):
        # per-query p50 identical, wall clock doubled (e.g. twice the
        # queries in the current run): not a regression
        base = self._doc(1.0, p50=0.01)
        curr = self._doc(2.0, p50=0.01)
        code, lines = compare_documents(base, curr)
        assert code == EXIT_OK, lines

    def test_p99_has_its_own_looser_bar(self):
        base = self._doc(1.0, p50=0.01, p99=0.02)
        tail = self._doc(1.0, p50=0.01, p99=0.2)
        code, lines = compare_documents(base, tail)
        assert code == EXIT_REGRESSION
        assert any("p99" in line and line.startswith("REGRESSION")
                   for line in lines)

    def test_matches_drift_is_never_excused(self):
        code, lines = compare_documents(
            self._doc(1.0, matches=5), self._doc(1.0, matches=6),
            median_pct=1e9)
        assert code == EXIT_REGRESSION
        assert any("result drift" in line for line in lines)


class TestErrorPaths:
    def test_invalid_report_exits_two(self):
        broken = {"report": {"schema_version": 2, "backend": "x"}}
        code, lines = compare_documents(broken, broken)
        assert code == EXIT_ERROR
        assert any(line.startswith("INVALID") for line in lines)

    def test_nothing_comparable_exits_two(self):
        code, lines = compare_documents({"a": 1}, {"b": 2})
        assert code == EXIT_ERROR
        assert any("nothing comparable" in line for line in lines)

    def test_missing_file_exits_two(self, capsys):
        assert main(["/nonexistent/base.json",
                     "/nonexistent/curr.json"]) == EXIT_ERROR
        assert "cannot read" in capsys.readouterr().err


class TestCli:
    def test_main_self_diff(self, capsys):
        path = str(REPO_ROOT / "BENCH_service.json")
        assert main([path, path]) == EXIT_OK
        out = capsys.readouterr().out
        assert "0 regressions" in out

    def test_main_regression_prints_to_stderr(self, tmp_path, capsys):
        baseline = REPO_ROOT / "BENCH_service.json"
        document = json.loads(baseline.read_text(encoding="utf-8"))
        slowed = tmp_path / "slow.json"
        slowed.write_text(json.dumps(_inflate(document)),
                          encoding="utf-8")
        assert main([str(baseline), str(slowed)]) == EXIT_REGRESSION
        err = capsys.readouterr().err
        assert "REGRESSION" in err

    def test_thresholds_are_configurable(self, tmp_path):
        document = json.loads(
            (REPO_ROOT / "BENCH_batch.json").read_text(encoding="utf-8"))
        slowed = tmp_path / "slow.json"
        slowed.write_text(json.dumps(_inflate(document, factor=1.5)),
                          encoding="utf-8")
        generous = main([str(REPO_ROOT / "BENCH_batch.json"),
                         str(slowed), "--median-pct", "1000",
                         "--p99-pct", "1000"])
        assert generous == EXIT_OK
