"""Tests for the fixed-boundary log-bucket histograms.

The edge cases that matter operationally: empty histograms must answer
quantiles without dividing by zero, single samples must round-trip,
merges of disjoint ranges must be exact, out-of-range values must land
in the saturating edge buckets, and the quantile ordering invariant
(p50 <= p90 <= p99) must hold for arbitrary inputs.
"""

import json
import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.hist import (
    GROWTH,
    MAX_BUCKET,
    OVERFLOW_BUCKET,
    SMALLEST,
    Histogram,
    bucket_index,
    bucket_upper_bound,
    hists_delta,
    summarize,
)


class TestEmptyHistogram:
    def test_quantiles_are_zero(self):
        hist = Histogram()
        assert hist.quantile(0.5) == 0.0
        assert hist.quantile(0.99) == 0.0
        assert hist.max_value() == 0.0
        assert hist.mean() == 0.0

    def test_summary_shape(self):
        summary = Histogram().summary()
        assert summary == {"count": 0, "mean": 0.0, "p50": 0.0,
                           "p90": 0.0, "p99": 0.0, "p999": 0.0,
                           "max": 0.0, "buckets": []}

    def test_merge_of_empties_stays_empty(self):
        hist = Histogram()
        hist.merge(Histogram())
        assert hist.count == 0


class TestSingleSample:
    def test_every_quantile_reports_the_sample_bucket(self):
        hist = Histogram()
        hist.record(0.004)
        edge = bucket_upper_bound(bucket_index(0.004))
        for fraction in (0.01, 0.5, 0.9, 0.99, 0.999, 1.0):
            assert hist.quantile(fraction) == edge

    def test_bucket_edge_brackets_the_value(self):
        # The reported quantile never understates: value <= edge and
        # the edge is within one bucket's growth of the value.
        value = 0.0371
        edge = bucket_upper_bound(bucket_index(value))
        assert value <= edge <= value * GROWTH * (1 + 1e-9)


class TestEdgeBuckets:
    def test_underflow(self):
        for value in (0.0, -1.0, SMALLEST, SMALLEST / 2):
            assert bucket_index(value) == 0
        assert bucket_upper_bound(0) == SMALLEST

    def test_overflow(self):
        top_edge = SMALLEST * GROWTH ** MAX_BUCKET
        assert bucket_index(top_edge * 2) == OVERFLOW_BUCKET
        assert bucket_index(float("inf")) == OVERFLOW_BUCKET
        assert bucket_index(float("nan")) == OVERFLOW_BUCKET

    def test_overflow_saturates_instead_of_reporting_infinity(self):
        hist = Histogram()
        hist.record(1e30)
        assert math.isfinite(hist.quantile(0.5))
        assert hist.quantile(0.5) == bucket_upper_bound(MAX_BUCKET)
        assert json.dumps(hist.summary())  # JSON-safe

    def test_buckets_are_monotone(self):
        edges = [bucket_upper_bound(i) for i in range(OVERFLOW_BUCKET)]
        assert edges == sorted(edges)


class TestMerge:
    def test_disjoint_ranges_merge_exactly(self):
        low, high = Histogram(), Histogram()
        low.record_many([1e-6, 2e-6, 4e-6])
        high.record_many([1.0, 2.0, 4.0])
        merged = low.copy()
        merged.merge(high)
        direct = Histogram()
        direct.record_many([1e-6, 2e-6, 4e-6, 1.0, 2.0, 4.0])
        assert merged.to_dict() == direct.to_dict()
        assert merged.summary() == direct.summary()

    def test_merge_equals_single_recorder_any_split(self):
        values = [0.001 * (i + 1) for i in range(20)]
        whole = Histogram()
        whole.record_many(values)
        parts = [Histogram() for _ in range(3)]
        for index, value in enumerate(values):
            parts[index % 3].record(value)
        merged = Histogram()
        for part in parts:
            merged.merge(part)
        assert merged.to_dict() == whole.to_dict()

    def test_merge_accepts_the_dict_form(self):
        hist = Histogram()
        hist.record_many([0.01, 0.02])
        rebuilt = Histogram()
        rebuilt.merge(hist.to_dict())
        assert rebuilt.summary() == hist.summary()


class TestDelta:
    def test_delta_isolates_the_window(self):
        hist = Histogram()
        hist.record_many([0.001, 0.002])
        before = hist.copy()
        hist.record_many([0.5, 0.6, 0.7])
        window = hist.delta(before)
        assert window.count == 3
        direct = Histogram()
        direct.record_many([0.5, 0.6, 0.7])
        assert window.to_dict()["counts"] == direct.to_dict()["counts"]

    def test_hists_delta_drops_unmoved_series(self):
        moved, still = Histogram(), Histogram()
        moved.record(0.1)
        after = {"moved": moved, "still": still}
        before = {"moved": Histogram(), "still": still.copy()}
        after["moved"] = moved
        delta = hists_delta(before, after)
        assert set(delta) == {"moved"}
        assert delta["moved"].count == 1

    def test_roundtrip_serialization(self):
        hist = Histogram()
        hist.record_many([0.003, 0.004, 7.0, 0.0])
        rebuilt = Histogram.from_dict(
            json.loads(json.dumps(hist.to_dict())))
        assert rebuilt.to_dict() == hist.to_dict()


class TestSummarize:
    def test_accepts_histograms_dicts_and_summaries(self):
        hist = Histogram()
        hist.record(0.25)
        out = summarize({
            "live": hist,
            "serialized": hist.to_dict(),
            "already": hist.summary(),
        })
        assert out["live"] == out["serialized"] == out["already"]


class TestQuantileInvariants:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200))
    def test_quantiles_are_ordered(self, values):
        hist = Histogram()
        hist.record_many(values)
        p50, p90, p99 = (hist.quantile(f) for f in (0.50, 0.90, 0.99))
        assert p50 <= p90 <= p99 <= hist.max_value()

    @given(st.lists(st.floats(min_value=1e-7, max_value=1e3,
                              allow_nan=False), min_size=1, max_size=100),
           st.integers(min_value=2, max_value=5))
    def test_split_and_merge_preserves_quantiles(self, values, shards):
        whole = Histogram()
        whole.record_many(values)
        parts = [Histogram() for _ in range(shards)]
        for index, value in enumerate(values):
            parts[index % shards].record(value)
        merged = Histogram()
        for part in parts:
            merged.merge(part)
        assert merged.summary() == whole.summary()

    @pytest.mark.parametrize("value", [1e-7, 1e-3, 1.0, 1e6])
    def test_quantile_never_understates(self, value):
        hist = Histogram()
        hist.record(value)
        assert hist.quantile(1.0) >= value
