"""Unit tests for the exporters."""

import json

from repro.obs.export import (
    metric_name,
    to_dict,
    to_json,
    to_json_lines,
    to_prometheus,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.report import BatchCounters, build_report


def make_registry():
    registry = MetricsRegistry()
    registry.inc("scan.early_aborts", 4)
    registry.gauge("corpus.buckets", 7)
    registry.observe("scan.query", 0.5, count=2)
    return registry


def make_report():
    return build_report(
        backend="compiled", engine="compiled-scan", mode="batch",
        queries=5, k=2, matches=9, seconds=0.01,
        counters={"scan.kernel_calls": 30},
        timers={"scan.query": {"seconds": 0.01, "calls": 2}},
        batch=BatchCounters(5, 2, 1, 2),
    )


class TestMetricName:
    def test_dots_become_underscores(self):
        assert metric_name("scan.early_aborts") \
            == "repro_scan_early_aborts"

    def test_custom_and_empty_prefix(self):
        assert metric_name("a.b", prefix="x") == "x_a_b"
        assert metric_name("a-b c", prefix="") == "a_b_c"


class TestDictAndJson:
    def test_to_dict_accepts_registry_report_and_mapping(self):
        assert to_dict(make_registry())["counters"] \
            == {"scan.early_aborts": 4}
        assert to_dict(make_report())["backend"] == "compiled"
        assert to_dict({"a": 1}) == {"a": 1}

    def test_to_json_is_valid_json(self):
        document = json.loads(to_json(make_registry()))
        assert document["gauges"] == {"corpus.buckets": 7}

    def test_to_json_lines_one_document_per_line(self):
        lines = to_json_lines([make_report(), make_report()]).splitlines()
        assert len(lines) == 2
        for line in lines:
            assert json.loads(line)["mode"] == "batch"


class TestPrometheus:
    def test_registry_exposition(self):
        text = to_prometheus(make_registry())
        assert "# TYPE repro_scan_early_aborts_total counter" in text
        assert "repro_scan_early_aborts_total 4" in text
        assert "# TYPE repro_corpus_buckets gauge" in text
        assert "repro_scan_query_seconds_total 0.5" in text
        assert "repro_scan_query_calls_total 2" in text
        assert text.endswith("\n")

    def test_empty_registry_exports_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""

    def test_report_exposition_labels_the_backend(self):
        text = make_report().to_prometheus()
        label = '{backend="compiled",mode="batch"}'
        assert f"repro_report_matches{label} 9" in text
        assert f"repro_scan_kernel_calls_total{label} 30" in text
        assert f"repro_batch_deduplicated_total{label} 3" in text
        assert f"repro_scan_query_seconds_total{label} 0.01" in text

    def test_report_gauges_export_as_gauges(self):
        report = build_report(
            backend="traffic", engine="traffic[gateway]", mode="service",
            queries=5, k=2, matches=9, seconds=0.01,
            gauges={"service.queue_depth": 3,
                    "service.cache.size": 17},
        )
        text = report.to_prometheus()
        label = '{backend="traffic",mode="service"}'
        assert "# TYPE repro_service_queue_depth gauge" in text
        assert f"repro_service_queue_depth{label} 3" in text
        assert f"repro_service_cache_size{label} 17" in text

    def test_report_without_gauges_exports_none(self):
        text = make_report().to_prometheus()
        assert "service_queue_depth" not in text
