"""Unit tests for the SearchReport schema and builders."""

import pytest

from repro.exceptions import ReproError
from repro.obs.report import (
    BATCH_SCHEMA_KEYS,
    SCHEMA_VERSION,
    BatchCounters,
    SearchReport,
    build_report,
    report_from_dict,
    require_valid_report,
    validate_report,
)


def make_report(**overrides):
    kwargs = dict(
        backend="sequential",
        engine="sequential[bitparallel]",
        mode="search",
        queries=1,
        k=2,
        matches=3,
        seconds=0.004,
        counters={"scan.candidates": 40, "scan.matches": 3},
        timers={"scan.search": {"seconds": 0.004, "calls": 1}},
    )
    kwargs.update(overrides)
    return build_report(**kwargs)


class TestBuildReport:
    def test_report_is_frozen(self):
        report = make_report()
        with pytest.raises(AttributeError):
            report.matches = 99
        with pytest.raises(TypeError):
            report.counters["scan.candidates"] = 0

    def test_defensive_copy_of_counters(self):
        counters = {"scan.candidates": 1}
        report = make_report(counters=counters)
        counters["scan.candidates"] = 999
        assert report.counters["scan.candidates"] == 1

    def test_rejects_unknown_mode(self):
        with pytest.raises(ReproError):
            make_report(mode="streaming")

    def test_batch_accepts_duck_typed_stats(self):
        class Stats:
            queries_seen = 5
            unique_queries = 2
            cache_hits = 1
            scans_executed = 2

        report = make_report(mode="batch", batch=Stats())
        assert isinstance(report.batch, BatchCounters)
        assert report.batch.deduplicated == 3

    def test_to_dict_conforms_to_schema(self):
        report = make_report(mode="batch",
                             batch=BatchCounters(5, 2, 1, 2))
        assert validate_report(report.to_dict()) == []

    def test_choice_defaults_to_serving_backend(self):
        report = make_report()
        assert report.to_dict()["choice"]["backend"] == "sequential"
        forced = make_report(choice_backend="auto-pick")
        assert forced.to_dict()["choice"]["backend"] == "auto-pick"


class TestBatchCounters:
    def test_deduplicated_is_derived(self):
        assert BatchCounters(queries_seen=7, unique_queries=4) \
            .deduplicated == 3

    def test_to_dict_has_every_schema_key(self):
        assert set(BatchCounters().to_dict()) == set(BATCH_SCHEMA_KEYS)


class TestRoundTrip:
    def test_report_from_dict_inverts_to_dict(self):
        report = make_report(mode="batch",
                             batch=BatchCounters(5, 2, 1, 2),
                             choice_backend="sequential",
                             choice_reason="test")
        rebuilt = report_from_dict(report.to_dict())
        assert isinstance(rebuilt, SearchReport)
        assert rebuilt.to_dict() == report.to_dict()

    def test_round_trip_without_batch(self):
        report = make_report()
        assert report_from_dict(report.to_dict()).batch is None

    def test_json_round_trips_through_validate(self):
        import json

        document = json.loads(make_report().to_json())
        assert validate_report(document) == []
        assert document["schema_version"] == SCHEMA_VERSION


class TestValidateReport:
    def test_missing_keys_reported(self):
        problems = validate_report({"backend": "sequential"})
        assert any("schema_version" in p for p in problems)

    def test_not_a_mapping(self):
        assert validate_report([1, 2]) != []

    def test_wrong_types_reported(self):
        document = make_report().to_dict()
        document["queries"] = "one"
        assert any("queries" in p for p in validate_report(document))

    def test_bool_is_not_a_count(self):
        document = make_report().to_dict()
        document["matches"] = True
        assert validate_report(document) != []

    def test_wrong_schema_version(self):
        document = make_report().to_dict()
        document["schema_version"] = SCHEMA_VERSION + 1
        assert any("schema_version" in p
                   for p in validate_report(document))

    def test_non_numeric_counter(self):
        document = make_report().to_dict()
        document["counters"]["scan.candidates"] = "lots"
        assert any("counter" in p for p in validate_report(document))

    def test_incomplete_batch_section(self):
        document = make_report(mode="batch",
                               batch=BatchCounters()).to_dict()
        del document["batch"]["cache_hits"]
        assert any("cache_hits" in p for p in validate_report(document))

    def test_require_valid_report_raises(self):
        with pytest.raises(ReproError):
            require_valid_report({"backend": "x"})
        require_valid_report(make_report().to_dict())  # no raise


class TestRender:
    def test_render_mentions_the_essentials(self):
        text = make_report(mode="batch",
                           batch=BatchCounters(5, 2, 1, 2)).render()
        assert "backend=sequential" in text
        assert "scan.candidates = 40" in text
        assert "3 deduplicated" in text
        assert "scan.search" in text


class TestGaugesSection:
    """The optional additive `gauges` section (schema v2, optional)."""

    def test_absent_by_default(self):
        assert "gauges" not in make_report().to_dict()
        assert make_report().gauges == {}

    def test_round_trip(self):
        report = make_report(gauges={"service.queue_depth": 4.0,
                                     "service.cache.size": 12.0})
        document = report.to_dict()
        assert document["gauges"] == {"service.queue_depth": 4.0,
                                      "service.cache.size": 12.0}
        back = report_from_dict(document)
        assert dict(back.gauges) == dict(report.gauges)

    def test_valid_with_and_without_gauges(self):
        assert validate_report(make_report().to_dict()) == []
        assert validate_report(
            make_report(gauges={"service.queue_depth": 1}).to_dict()) == []

    def test_non_numeric_gauge_rejected(self):
        document = make_report(
            gauges={"service.queue_depth": 1}).to_dict()
        document["gauges"]["service.queue_depth"] = "deep"
        assert any("gauge" in p for p in validate_report(document))

    def test_wrong_gauges_type_rejected(self):
        document = make_report().to_dict()
        document["gauges"] = ["service.queue_depth"]
        assert any("gauges" in p for p in validate_report(document))

    def test_render_shows_gauges(self):
        text = make_report(
            gauges={"service.queue_depth": 4}).render()
        assert "service.queue_depth = 4 (gauge)" in text

    def test_gauges_are_frozen(self):
        report = make_report(gauges={"service.queue_depth": 4})
        with pytest.raises(TypeError):
            report.gauges["service.queue_depth"] = 5
