"""Tests for the telemetry sampler and its dump/render pipeline."""

import json

import pytest

from repro.exceptions import ReproError
from repro.obs.export import telemetry_to_prometheus
from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import TelemetrySampler, series_from_document


def _sampler(**kwargs):
    ticks = iter(float(value) for value in range(1000))
    return TelemetrySampler(clock=lambda: next(ticks), **kwargs)


class TestSampling:
    def test_sources_sampled_with_timestamps(self):
        sampler = _sampler()
        depth = [3]
        sampler.add_source("service.queue_depth", lambda: depth[0])
        sampler.sample_once()
        depth[0] = 5
        sampler.sample_once()
        series = sampler.series()["service.queue_depth"]
        assert series == ((0.0, 3.0), (1.0, 5.0))

    def test_registry_gauges_sampled_by_name(self):
        registry = MetricsRegistry()
        registry.gauge("live.memtable_size", 17)
        sampler = _sampler()
        sampler.watch_registry(registry)
        sampler.sample_once()
        assert sampler.latest()["live.memtable_size"] == 17.0

    def test_gauges_appearing_later_are_picked_up(self):
        registry = MetricsRegistry()
        sampler = _sampler()
        sampler.watch_registry(registry)
        sampler.sample_once()
        registry.gauge("live.segments", 4)
        sampler.sample_once()
        assert sampler.latest()["live.segments"] == 4.0

    def test_ring_is_bounded(self):
        sampler = _sampler(capacity=2)
        sampler.add_source("depth", lambda: 1)
        for _ in range(5):
            sampler.sample_once()
        assert len(sampler.series()["depth"]) == 2
        assert sampler.samples_taken == 5

    def test_raising_source_is_disabled_not_propagated(self):
        sampler = _sampler()

        def broken():
            raise RuntimeError("gone")

        sampler.add_source("bad", broken)
        sampler.add_source("good", lambda: 1)
        sampler.sample_once()
        sampler.sample_once()
        assert "bad" not in sampler.latest()
        assert sampler.latest()["good"] == 1.0
        assert "RuntimeError" in sampler.failed_sources["bad"]

    def test_bad_parameters_raise(self):
        with pytest.raises(ReproError):
            TelemetrySampler(interval_seconds=0)
        with pytest.raises(ReproError):
            TelemetrySampler(capacity=0)

    def test_thread_start_stop_takes_a_final_sample(self):
        sampler = TelemetrySampler(interval_seconds=60.0)
        sampler.add_source("depth", lambda: 2)
        sampler.start()
        sampler.stop()
        assert sampler.latest()["depth"] == 2.0


class TestDumpAndRender:
    def test_dump_round_trips_through_series_from_document(self, tmp_path):
        sampler = _sampler()
        sampler.add_source("depth", lambda: 9)
        sampler.sample_once()
        path = tmp_path / "telemetry.json"
        sampler.dump(str(path))
        document = json.loads(path.read_text())
        series = series_from_document(document)
        assert series == {"depth": [[0.0, 9.0]]}

    def test_series_from_document_rejects_non_dumps(self):
        with pytest.raises(ReproError):
            series_from_document({"not": "a dump"})
        with pytest.raises(ReproError):
            series_from_document({"series": {"name": "not-a-list"}})

    def test_prometheus_render_exports_latest_values(self):
        text = telemetry_to_prometheus({
            "service.queue_depth": [[0.0, 3.0], [1.0, 5.0]],
            "empty": [],
        })
        assert "# TYPE repro_service_queue_depth gauge" in text
        assert "repro_service_queue_depth 5" in text
        assert "# HELP repro_service_queue_depth" in text
        assert "empty" not in text
