"""Unit tests for the Myers bit-parallel kernel."""

import pytest

from repro.distance.bitparallel import (
    MyersMatcher,
    build_peq,
    myers_distance,
    myers_within,
)
from repro.exceptions import InvalidThresholdError


class TestBuildPeq:
    def test_single_symbol(self):
        assert build_peq("aaa") == {"a": 0b111}

    def test_distinct_symbols(self):
        peq = build_peq("abc")
        assert peq == {"a": 0b001, "b": 0b010, "c": 0b100}

    def test_repeated_symbol_positions(self):
        peq = build_peq("aba")
        assert peq["a"] == 0b101
        assert peq["b"] == 0b010

    def test_empty_pattern(self):
        assert build_peq("") == {}

    def test_code_tuples(self):
        assert build_peq((7, 7, 9)) == {7: 0b011, 9: 0b100}


class TestMyersDistance:
    def test_paper_example(self):
        assert myers_distance("AGGCGT", "AGAGT") == 2

    def test_empty_pattern(self):
        assert myers_distance("", "abc") == 3

    def test_empty_text(self):
        assert myers_distance("abc", "") == 3

    def test_both_empty(self):
        assert myers_distance("", "") == 0

    def test_identical(self):
        assert myers_distance("Hamburg", "Hamburg") == 0

    def test_kitten_sitting(self):
        assert myers_distance("kitten", "sitting") == 3

    def test_symbols_outside_pattern_alphabet(self):
        # Text symbols absent from the pattern must behave as mismatches.
        assert myers_distance("aaa", "zzz") == 3

    def test_long_pattern_beyond_64_symbols(self):
        # Python integers are unbounded: no 64-bit word limit applies.
        x = "a" * 100 + "b"
        y = "a" * 100 + "c"
        assert myers_distance(x, y) == 1

    def test_precomputed_peq_matches_fresh(self):
        peq = build_peq("pattern")
        assert myers_distance("pattern", "pattrn", peq) == \
            myers_distance("pattern", "pattrn")


class TestMyersWithin:
    def test_within(self):
        assert myers_within("AGGCGT", "AGAGT", 2)

    def test_not_within(self):
        assert not myers_within("AGGCGT", "AGAGT", 1)

    def test_length_filter_applies(self):
        assert not myers_within("ab", "abcdefgh", 3)

    def test_empty_operands(self):
        assert myers_within("", "ab", 2)
        assert not myers_within("", "ab", 1)
        assert myers_within("", "", 0)

    def test_rejects_bad_threshold(self):
        with pytest.raises(InvalidThresholdError):
            myers_within("a", "b", -1)

    def test_early_abort_agrees_with_full_distance(self):
        # A pair whose score cannot recover should still classify right.
        x = "abcdefghij"
        y = "zzzzzzzzzz"
        assert not myers_within(x, y, 4)
        assert myers_within(x, y, 10)


class TestMyersMatcher:
    def test_distance_and_within(self):
        matcher = MyersMatcher("Berlin")
        assert matcher.distance("Bern") == 2
        assert matcher.within("Bern", 2)
        assert not matcher.within("Bern", 1)

    def test_pattern_property(self):
        assert MyersMatcher("xyz").pattern == "xyz"

    def test_reuse_across_many_texts(self):
        matcher = MyersMatcher("GATTACA")
        texts = ["GATTACA", "GATTAC", "CATTACA", "TTTTTTT"]
        fresh = [myers_distance("GATTACA", t) for t in texts]
        reused = [matcher.distance(t) for t in texts]
        assert fresh == reused
