"""Unit tests for the weighted edit distance."""

import pytest

from repro.distance.levenshtein import edit_distance
from repro.distance.weighted import (
    EditCosts,
    keyboard_weights,
    rank_corrections,
    weighted_edit_distance,
)
from repro.exceptions import ReproError


class TestWeightedEditDistance:
    def test_default_costs_equal_unweighted(self):
        pairs = [("AGGCGT", "AGAGT"), ("kitten", "sitting"),
                 ("", "abc"), ("same", "same")]
        for x, y in pairs:
            assert weighted_edit_distance(x, y) == \
                float(edit_distance(x, y))

    def test_cheap_inserts_change_the_path(self):
        costs = EditCosts(insert=0.1)
        # Transforming "ab" -> "aXb" is one cheap insert.
        assert weighted_edit_distance("ab", "aXb", costs) == \
            pytest.approx(0.1)

    def test_expensive_substitution_prefers_indel(self):
        costs = EditCosts(substitute=lambda a, b: 10.0)
        # Replace would cost 10; delete+insert costs 2.
        assert weighted_edit_distance("a", "b", costs) == \
            pytest.approx(2.0)

    def test_empty_operands(self):
        costs = EditCosts(insert=0.5, delete=2.0)
        assert weighted_edit_distance("", "abc", costs) == \
            pytest.approx(1.5)
        assert weighted_edit_distance("abc", "", costs) == \
            pytest.approx(6.0)

    def test_nonpositive_costs_rejected(self):
        with pytest.raises(ReproError):
            EditCosts(insert=0.0)
        with pytest.raises(ReproError):
            EditCosts(delete=-1.0)


class TestKeyboardWeights:
    def test_adjacent_keys_cost_less(self):
        costs = keyboard_weights()
        assert weighted_edit_distance("cat", "cst", costs) == \
            pytest.approx(0.5)
        assert weighted_edit_distance("cat", "cpt", costs) == \
            pytest.approx(1.0)

    def test_case_errors_are_cheapest(self):
        costs = keyboard_weights()
        assert weighted_edit_distance("Cat", "cat", costs) == \
            pytest.approx(0.25)

    def test_symmetric_neighbourhood(self):
        costs = keyboard_weights()
        assert weighted_edit_distance("q", "w", costs) == \
            weighted_edit_distance("w", "q", costs)

    def test_cross_row_neighbours(self):
        costs = keyboard_weights()
        # 'a' sits under 'q' on QWERTY.
        assert weighted_edit_distance("a", "q", costs) == \
            pytest.approx(0.5)

    def test_invalid_configuration(self):
        with pytest.raises(ReproError):
            keyboard_weights(adjacent_cost=2.0, distant_cost=1.0)


class TestRankCorrections:
    def test_ranks_by_typo_plausibility(self):
        ranked = rank_corrections("cst", ["cat", "cut", "cot"], limit=3)
        assert ranked[0] == ("cat", 0.5)

    def test_limit_applies(self):
        ranked = rank_corrections("x", ["a", "b", "c", "d"], limit=2)
        assert len(ranked) == 2

    def test_custom_costs(self):
        flat = EditCosts()
        ranked = rank_corrections("ab", ["ax", "xb"], costs=flat)
        assert {r[0] for r in ranked} == {"ax", "xb"}
        assert all(r[1] == 1.0 for r in ranked)
