"""Property-based tests: metric axioms and kernel agreement.

Every optimized kernel in :mod:`repro.distance` must agree exactly with
the reference full-matrix implementation — the paper's own acceptance
criterion, applied at the kernel level with hypothesis doing the
adversarial work.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.alphabet import DNA_ALPHABET
from repro.distance.alignment import align
from repro.distance.banded import BandedCalculator, edit_distance_bounded
from repro.distance.bitparallel import myers_distance, myers_within
from repro.distance.dispatch import bounded_distance
from repro.distance.hamming import hamming_distance
from repro.distance.levenshtein import edit_distance
from repro.distance.packed import pack, packed_edit_distance_bounded

# Small alphabets maximize interesting collisions per example.
short_text = st.text(alphabet="abcd", max_size=14)
dna_text = st.text(alphabet="ACGNT", max_size=20)
thresholds = st.integers(min_value=0, max_value=8)


class TestMetricAxioms:
    @given(short_text)
    def test_identity(self, x):
        assert edit_distance(x, x) == 0

    @given(short_text, short_text)
    def test_positivity(self, x, y):
        distance = edit_distance(x, y)
        assert distance >= 0
        assert (distance == 0) == (x == y)

    @given(short_text, short_text)
    def test_symmetry(self, x, y):
        assert edit_distance(x, y) == edit_distance(y, x)

    @settings(max_examples=60)
    @given(short_text, short_text, short_text)
    def test_triangle_inequality(self, x, y, z):
        assert edit_distance(x, z) <= \
            edit_distance(x, y) + edit_distance(y, z)

    @given(short_text, short_text)
    def test_length_difference_lower_bound(self, x, y):
        # Equation 5 of the paper is a valid lower bound.
        assert edit_distance(x, y) >= abs(len(x) - len(y))

    @given(short_text, short_text)
    def test_max_length_upper_bound(self, x, y):
        assert edit_distance(x, y) <= max(len(x), len(y))

    @given(st.text(alphabet="ACGT", min_size=0, max_size=12))
    def test_hamming_upper_bounds_edit(self, x):
        # Reverse the string to get an equal-length permutation.
        y = x[::-1]
        assert edit_distance(x, y) <= hamming_distance(x, y)


class TestKernelAgreement:
    @given(short_text, short_text, thresholds)
    def test_banded_agrees_with_reference(self, x, y, k):
        reference = edit_distance(x, y)
        expected = reference if reference <= k else None
        assert edit_distance_bounded(x, y, k) == expected

    @given(short_text, short_text)
    def test_myers_agrees_with_reference(self, x, y):
        assert myers_distance(x, y) == edit_distance(x, y)

    @given(short_text, short_text, thresholds)
    def test_myers_within_agrees_with_reference(self, x, y, k):
        assert myers_within(x, y, k) == (edit_distance(x, y) <= k)

    @given(short_text, short_text, thresholds)
    def test_dispatch_agrees_with_reference(self, x, y, k):
        reference = edit_distance(x, y)
        expected = reference if reference <= k else None
        assert bounded_distance(x, y, k) == expected

    @settings(max_examples=60)
    @given(short_text, short_text, thresholds)
    def test_calculator_reuse_agrees(self, x, y, k):
        calculator = BandedCalculator(max_length=16)
        # Interleave with a poisoning call to catch buffer leaks.
        calculator.distance("zzzzzz", "aaaaaa", 1)
        reference = edit_distance(x, y)
        expected = reference if reference <= k else None
        assert calculator.distance(x, y, k) == expected

    @given(dna_text, dna_text, thresholds)
    def test_packed_agrees_with_reference(self, x, y, k):
        reference = edit_distance(x, y)
        expected = reference if reference <= k else None
        actual = packed_edit_distance_bounded(
            pack(x, DNA_ALPHABET), pack(y, DNA_ALPHABET), k
        )
        assert actual == expected


class TestAlignmentProperties:
    @given(short_text, short_text)
    def test_script_cost_equals_distance(self, x, y):
        assert sum(op.cost for op in align(x, y)) == edit_distance(x, y)

    @given(short_text, short_text)
    def test_script_reconstructs_target(self, x, y):
        from repro.distance.alignment import apply_script

        assert apply_script(x, align(x, y), y) == y


class TestPackedProperties:
    @given(dna_text)
    def test_pack_roundtrip(self, x):
        assert pack(x, DNA_ALPHABET).decode() == x

    @given(dna_text)
    def test_packed_length(self, x):
        assert len(pack(x, DNA_ALPHABET)) == len(x)
