"""Unit tests for kernel dispatch."""

import pytest

from repro.distance.dispatch import (
    KernelChoice,
    best_kernel,
    bounded_distance,
    explain_kernel,
)
from repro.exceptions import InvalidThresholdError


class TestBestKernel:
    def test_k_zero_is_equality(self):
        assert best_kernel(10, 10, 0) is KernelChoice.EQUALITY

    def test_small_k_short_strings_uses_band(self):
        assert best_kernel(10, 10, 1) is KernelChoice.BANDED

    def test_large_k_long_strings_uses_bitparallel(self):
        assert best_kernel(100, 100, 16) is KernelChoice.BIT_PARALLEL

    def test_rejects_bad_threshold(self):
        with pytest.raises(InvalidThresholdError):
            best_kernel(5, 5, -1)

    def test_explain_names_the_choice(self):
        text = explain_kernel(100, 100, 16)
        assert "bit-parallel" in text
        text = explain_kernel(10, 10, 1)
        assert "band" in text


class TestBoundedDistance:
    def test_agrees_with_reference_across_regimes(self):
        from repro.distance.levenshtein import edit_distance

        pairs = [("Berlin", "Bern"), ("AGGCGT", "AGAGT"),
                 ("A" * 80, "A" * 70 + "T" * 10), ("", ""), ("x", "")]
        for x, y in pairs:
            reference = edit_distance(x, y)
            for k in (0, 1, 2, 8, 16):
                expected = reference if reference <= k else None
                assert bounded_distance(x, y, k) == expected, (x, y, k)

    def test_equality_path(self):
        assert bounded_distance("abc", "abc", 0) == 0
        assert bounded_distance("abc", "abd", 0) is None

    def test_length_filter_path(self):
        assert bounded_distance("a", "abcdef", 2) is None

    def test_works_on_code_tuples(self):
        assert bounded_distance((1, 2), (1, 2, 3), 1) == 1
        assert bounded_distance((1, 2), (1, 2, 3), 0) is None
