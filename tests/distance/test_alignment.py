"""Unit tests for edit-script extraction."""

from repro.distance.alignment import (
    DELETE,
    INSERT,
    MATCH,
    REPLACE,
    align,
    apply_script,
    edit_script,
)
from repro.distance.levenshtein import edit_distance


class TestAlign:
    def test_identical_strings_all_match(self):
        ops = align("same", "same")
        assert all(op.kind == MATCH for op in ops)
        assert sum(op.cost for op in ops) == 0

    def test_cost_equals_distance(self):
        pairs = [("AGGCGT", "AGAGT"), ("kitten", "sitting"),
                 ("", "abc"), ("abc", ""), ("Bern", "Berlin")]
        for x, y in pairs:
            assert sum(op.cost for op in align(x, y)) == edit_distance(x, y)

    def test_pure_insertion(self):
        ops = align("", "ab")
        assert [op.kind for op in ops] == [INSERT, INSERT]

    def test_pure_deletion(self):
        ops = align("ab", "")
        assert [op.kind for op in ops] == [DELETE, DELETE]

    def test_replace_detected(self):
        ops = align("cat", "cut")
        kinds = [op.kind for op in ops]
        assert kinds == [MATCH, REPLACE, MATCH]

    def test_indices_are_consistent(self):
        for x, y in [("AGGCGT", "AGAGT"), ("flaw", "lawn")]:
            x_cursor = 0
            y_cursor = 0
            for op in align(x, y):
                if op.kind in (MATCH, REPLACE):
                    assert op.x_index == x_cursor
                    assert op.y_index == y_cursor
                    x_cursor += 1
                    y_cursor += 1
                elif op.kind == DELETE:
                    assert op.x_index == x_cursor
                    assert op.y_index is None
                    x_cursor += 1
                else:
                    assert op.x_index is None
                    assert op.y_index == y_cursor
                    y_cursor += 1
            assert x_cursor == len(x)
            assert y_cursor == len(y)

    def test_apply_script_reconstructs_target(self):
        pairs = [("AGGCGT", "AGAGT"), ("Bern", "Berlin"),
                 ("", "xyz"), ("xyz", ""), ("flaw", "lawn")]
        for x, y in pairs:
            assert apply_script(x, align(x, y), y) == y


class TestEditScript:
    def test_insert_script(self):
        lines = edit_script("Bern", "Berlin")
        assert lines == ["insert 'l' at 3", "insert 'i' at 4"]

    def test_match_only_script_is_empty(self):
        assert edit_script("Ulm", "Ulm") == []

    def test_replace_script_mentions_both_symbols(self):
        lines = edit_script("cat", "cut")
        assert lines == ["replace 'a' at 1 with 'u'"]

    def test_delete_script(self):
        lines = edit_script("cart", "cat")
        assert any(line.startswith("delete") for line in lines)
        assert len(lines) == 1
