"""Unit tests for the OSA (Damerau) distance."""

import pytest

from repro.distance.damerau import osa_distance, osa_within, transposition_gain
from repro.distance.levenshtein import edit_distance
from repro.exceptions import InvalidThresholdError


class TestOsaDistance:
    def test_adjacent_transposition_costs_one(self):
        assert osa_distance("Bern", "Bren") == 1
        assert edit_distance("Bern", "Bren") == 2

    def test_equal_strings(self):
        assert osa_distance("same", "same") == 0

    def test_empty_operands(self):
        assert osa_distance("", "") == 0
        assert osa_distance("", "abc") == 3
        assert osa_distance("abc", "") == 3

    def test_classic_ca_abc(self):
        # The example separating OSA from full Damerau-Levenshtein:
        # OSA("CA", "ABC") = 3 (no substring edited twice), true
        # Damerau would be 2.
        assert osa_distance("CA", "ABC") == 3

    def test_never_exceeds_levenshtein(self):
        pairs = [("kitten", "sitting"), ("abcd", "badc"),
                 ("Bern", "Bren"), ("flaw", "lawn")]
        for x, y in pairs:
            assert osa_distance(x, y) <= edit_distance(x, y)

    def test_symmetry(self):
        assert osa_distance("abdc", "abcd") == osa_distance("abcd", "abdc")

    def test_double_transposition(self):
        assert osa_distance("abcd", "badc") == 2

    def test_works_on_code_tuples(self):
        assert osa_distance((1, 2), (2, 1)) == 1


class TestOsaWithin:
    def test_within(self):
        assert osa_within("Bern", "Bren", 1)

    def test_not_within(self):
        assert not osa_within("CA", "ABC", 2)

    def test_length_filter_applies(self):
        assert not osa_within("a", "abcdef", 2)

    def test_invalid_threshold(self):
        with pytest.raises(InvalidThresholdError):
            osa_within("a", "b", -1)


class TestTranspositionGain:
    def test_gain_on_swapped_pair(self):
        assert transposition_gain("Bern", "Bren") == 1

    def test_no_gain_without_swaps(self):
        assert transposition_gain("kitten", "sitting") == 0
