"""Unit tests for the inspectable DP matrix."""

from repro.distance.matrix import DistanceMatrix


class TestDistanceMatrix:
    def test_paper_figure_1(self):
        matrix = DistanceMatrix("AGGCGT", "AGAGT")
        assert matrix.distance == 2
        assert matrix.shape == (7, 6)

    def test_cell_access(self):
        matrix = DistanceMatrix("AGGCGT", "AGAGT")
        assert matrix[0, 0] == 0
        assert matrix[6, 5] == 2
        assert matrix[4, 3] == 2  # the paper's abort example cell

    def test_row_and_column(self):
        matrix = DistanceMatrix("ab", "abc")
        assert matrix.row(0) == [0, 1, 2, 3]
        assert matrix.column(0) == [0, 1, 2]

    def test_rows_are_copies(self):
        matrix = DistanceMatrix("ab", "ab")
        row = matrix.row(1)
        row[0] = 99
        assert matrix.row(1)[0] != 99

    def test_final_diagonal_reaches_distance(self):
        matrix = DistanceMatrix("AGGCGT", "AGAGT")
        diagonal = matrix.final_diagonal()
        assert diagonal[-1] == matrix.distance

    def test_diagonals_are_non_decreasing(self):
        # The monotonicity property that justifies the paper's
        # early-abort conditions (6)/(7).
        matrix = DistanceMatrix("similarity", "dissimilar")
        rows, columns = matrix.shape
        for offset in range(-(rows - 1), columns):
            diagonal = matrix.diagonal(offset)
            assert diagonal == sorted(diagonal)

    def test_iter_cells_covers_all(self):
        matrix = DistanceMatrix("ab", "c")
        cells = list(matrix.iter_cells())
        assert len(cells) == 3 * 2
        assert (0, 0, 0) in cells

    def test_render_contains_operands_and_values(self):
        rendered = DistanceMatrix("AG", "AGA").render()
        assert "A" in rendered and "G" in rendered
        lines = rendered.splitlines()
        assert len(lines) == 4  # header + 3 matrix rows

    def test_render_empty_strings(self):
        rendered = DistanceMatrix("", "").render()
        assert "0" in rendered

    def test_repr_mentions_distance(self):
        assert "distance=2" in repr(DistanceMatrix("AGGCGT", "AGAGT"))
