"""Unit tests for the threshold-aware banded kernel."""

import pytest

from repro.distance.banded import (
    BandedCalculator,
    check_threshold,
    edit_distance_bounded,
    length_filter_passes,
    within_distance,
)
from repro.exceptions import InvalidThresholdError


class TestCheckThreshold:
    def test_accepts_zero(self):
        assert check_threshold(0) == 0

    def test_accepts_positive(self):
        assert check_threshold(7) == 7

    def test_rejects_negative(self):
        with pytest.raises(InvalidThresholdError):
            check_threshold(-1)

    def test_rejects_float(self):
        with pytest.raises(InvalidThresholdError):
            check_threshold(1.5)

    def test_rejects_bool(self):
        # True == 1 in Python, but a boolean threshold is surely a bug.
        with pytest.raises(InvalidThresholdError):
            check_threshold(True)

    def test_rejects_string(self):
        with pytest.raises(InvalidThresholdError):
            check_threshold("2")


class TestLengthFilter:
    def test_equal_lengths_always_pass(self):
        assert length_filter_passes(5, 5, 0)

    def test_difference_at_threshold_passes(self):
        assert length_filter_passes(5, 8, 3)

    def test_difference_above_threshold_fails(self):
        assert not length_filter_passes(5, 9, 3)

    def test_order_independent(self):
        assert length_filter_passes(9, 5, 4) == length_filter_passes(5, 9, 4)


class TestEditDistanceBounded:
    def test_paper_example_within(self):
        assert edit_distance_bounded("AGGCGT", "AGAGT", 2) == 2

    def test_paper_example_above(self):
        assert edit_distance_bounded("AGGCGT", "AGAGT", 1) is None

    def test_paper_abort_condition_example(self):
        # Section 3.2's worked example: at k=1 the diagonal through the
        # final cell exceeds 1 at M[4][3]=2 and the computation aborts.
        assert edit_distance_bounded("AGGCGT", "AGAGT", 1) is None

    def test_exact_match_any_threshold(self):
        for k in (0, 1, 5):
            assert edit_distance_bounded("Ulm", "Ulm", k) == 0

    def test_k_zero_mismatch(self):
        assert edit_distance_bounded("Ulm", "Uln", 0) is None

    def test_length_filter_short_circuits(self):
        assert edit_distance_bounded("a", "abcdefgh", 3) is None

    def test_empty_operands(self):
        assert edit_distance_bounded("", "", 0) == 0
        assert edit_distance_bounded("", "ab", 2) == 2
        assert edit_distance_bounded("ab", "", 1) is None

    def test_distance_exactly_at_threshold(self):
        assert edit_distance_bounded("kitten", "sitting", 3) == 3

    def test_distance_one_above_threshold(self):
        assert edit_distance_bounded("kitten", "sitting", 2) is None

    def test_works_on_code_tuples(self):
        assert edit_distance_bounded((1, 2, 3), (1, 3), 1) == 1

    def test_large_threshold_degrades_to_exact(self):
        assert edit_distance_bounded("abc", "xyz", 100) == 3


class TestWithinDistance:
    def test_within(self):
        assert within_distance("Bern", "Berlin", 2)

    def test_not_within(self):
        assert not within_distance("Bern", "Berlin", 1)


class TestBandedCalculator:
    def test_matches_function_form(self):
        calculator = BandedCalculator(max_length=16)
        assert calculator.distance("AGGCGT", "AGAGT", 2) == 2
        assert calculator.distance("AGGCGT", "AGAGT", 1) is None

    def test_buffers_grow_on_demand(self):
        calculator = BandedCalculator(max_length=4)
        long_x = "a" * 50
        long_y = "a" * 49 + "b"
        assert calculator.distance(long_x, long_y, 2) == 1
        assert calculator.max_length >= 50

    def test_reuse_does_not_leak_state(self):
        calculator = BandedCalculator(max_length=32)
        # A rejected pair must not poison the buffers for the next call.
        assert calculator.distance("aaaaaaa", "bbbbbbb", 2) is None
        assert calculator.distance("aaaaaaa", "aaaaaab", 2) == 1
        assert calculator.distance("same", "same", 0) == 0

    def test_within_wrapper(self):
        calculator = BandedCalculator()
        assert calculator.within("Bern", "Berlin", 2)
        assert not calculator.within("Bern", "Berlin", 1)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            BandedCalculator(max_length=0)

    def test_many_calls_identical_results(self):
        calculator = BandedCalculator(max_length=8)
        for _ in range(50):
            assert calculator.distance("banana", "ananas", 3) == 2
