"""Unit tests for the reference edit-distance implementation."""

import pytest

from repro.distance.levenshtein import edit_distance, edit_distance_full_matrix


class TestEditDistance:
    def test_paper_worked_example(self):
        # Figure 1 of the paper: ed("AGGCGT", "AGAGT") = 2.
        assert edit_distance("AGGCGT", "AGAGT") == 2

    def test_identical_strings(self):
        assert edit_distance("Berlin", "Berlin") == 0

    def test_empty_vs_empty(self):
        assert edit_distance("", "") == 0

    def test_empty_vs_nonempty_is_length(self):
        assert edit_distance("", "ACGT") == 4
        assert edit_distance("ACGT", "") == 4

    def test_single_replace(self):
        assert edit_distance("kitten", "mitten") == 1

    def test_single_insert(self):
        assert edit_distance("Bern", "Berna") == 1

    def test_single_delete(self):
        assert edit_distance("Berna", "Bern") == 1

    def test_classic_kitten_sitting(self):
        assert edit_distance("kitten", "sitting") == 3

    def test_completely_different(self):
        assert edit_distance("aaaa", "bbbb") == 4

    def test_symmetry(self):
        assert edit_distance("flaw", "lawn") == edit_distance("lawn", "flaw")

    def test_accepts_tuples_of_codes(self):
        assert edit_distance((0, 1, 2), (0, 2)) == 1

    def test_accepts_bytes(self):
        assert edit_distance(b"AGGCGT", b"AGAGT") == 2

    def test_unicode_symbols_count_as_one(self):
        assert edit_distance("Köln", "Koln") == 1
        assert edit_distance("北京", "北京市") == 1

    def test_prefix_distance_is_suffix_length(self):
        assert edit_distance("Berlin", "Ber") == 3


class TestFullMatrix:
    def test_shape(self):
        matrix = edit_distance_full_matrix("abc", "ab")
        assert len(matrix) == 4
        assert all(len(row) == 3 for row in matrix)

    def test_border_initialization(self):
        matrix = edit_distance_full_matrix("abc", "de")
        assert [row[0] for row in matrix] == [0, 1, 2, 3]
        assert matrix[0] == [0, 1, 2]

    def test_bottom_right_is_distance(self):
        matrix = edit_distance_full_matrix("AGGCGT", "AGAGT")
        assert matrix[6][5] == 2

    def test_paper_figure_1_interior_cell(self):
        # The paper's abort example reads M[4][3] = 2 for AGGCGT/AGAGT.
        matrix = edit_distance_full_matrix("AGGCGT", "AGAGT")
        assert matrix[4][3] == 2

    def test_adjacent_cells_differ_by_at_most_one(self):
        matrix = edit_distance_full_matrix("banana", "ananas")
        for i in range(1, len(matrix)):
            for j in range(1, len(matrix[0])):
                assert abs(matrix[i][j] - matrix[i - 1][j]) <= 1
                assert abs(matrix[i][j] - matrix[i][j - 1]) <= 1
                assert 0 <= matrix[i][j] - matrix[i - 1][j - 1] <= 1
