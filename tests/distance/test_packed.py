"""Unit tests for 3-bit dictionary compression."""

import pytest

from repro.data.alphabet import DNA_ALPHABET, Alphabet
from repro.distance.packed import (
    PackedString,
    pack,
    packed_edit_distance_bounded,
    storage_savings,
)
from repro.exceptions import AlphabetError


class TestPack:
    def test_roundtrip(self):
        packed = pack("GATTACA", DNA_ALPHABET)
        assert packed.decode() == "GATTACA"

    def test_empty_string(self):
        packed = pack("", DNA_ALPHABET)
        assert len(packed) == 0
        assert packed.decode() == ""

    def test_three_bits_per_dna_symbol(self):
        packed = pack("ACGT", DNA_ALPHABET)
        assert packed.bits_per_symbol == 3
        assert packed.storage_bits == 12

    def test_indexing_returns_codes(self):
        packed = pack("ACGNT", DNA_ALPHABET)
        assert [packed[i] for i in range(5)] == [0, 1, 2, 3, 4]

    def test_negative_indexing(self):
        packed = pack("ACG", DNA_ALPHABET)
        assert packed[-1] == DNA_ALPHABET.code("G")

    def test_out_of_range_raises(self):
        packed = pack("ACG", DNA_ALPHABET)
        with pytest.raises(IndexError):
            packed[3]

    def test_iteration_matches_encoding(self):
        packed = pack("NGCAT", DNA_ALPHABET)
        assert tuple(packed) == DNA_ALPHABET.encode("NGCAT")

    def test_equality_and_hash(self):
        a = pack("ACGT", DNA_ALPHABET)
        b = pack("ACGT", DNA_ALPHABET)
        c = pack("ACGA", DNA_ALPHABET)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_rejects_foreign_symbols(self):
        with pytest.raises(AlphabetError):
            pack("ACGX", DNA_ALPHABET)

    def test_repr_is_readable(self):
        assert "ACGT" in repr(pack("ACGT", DNA_ALPHABET))


class TestPackedDistance:
    def test_agrees_with_plain_kernel(self):
        from repro.distance.banded import edit_distance_bounded

        pairs = [("GATTACA", "GATTACA"), ("ACGT", "AGCT"),
                 ("AAAA", "TTTT"), ("ACGNT", "ACGT"), ("", "ACG")]
        for x, y in pairs:
            for k in (0, 1, 2, 4):
                expected = edit_distance_bounded(x, y, k)
                actual = packed_edit_distance_bounded(
                    pack(x, DNA_ALPHABET), pack(y, DNA_ALPHABET), k
                )
                assert actual == expected, (x, y, k)

    def test_mixed_alphabets_rejected(self):
        other = Alphabet("toy", "ACGT")
        with pytest.raises(ValueError):
            packed_edit_distance_bounded(
                pack("ACG", DNA_ALPHABET), pack("ACG", other), 1
            )

    def test_k_zero_equality(self):
        a = pack("ACGT", DNA_ALPHABET)
        b = pack("ACGT", DNA_ALPHABET)
        c = pack("ACGA", DNA_ALPHABET)
        assert packed_edit_distance_bounded(a, b, 0) == 0
        assert packed_edit_distance_bounded(a, c, 0) is None


class TestStorageSavings:
    def test_dna_saves_62_percent(self):
        saving = storage_savings("A" * 100, DNA_ALPHABET)
        assert saving == pytest.approx(1 - 3 / 8)

    def test_empty_string_saves_nothing(self):
        assert storage_savings("", DNA_ALPHABET) == 0.0

    def test_binary_alphabet_saves_more(self):
        binary = Alphabet("bin", "01")
        assert storage_savings("0101", binary) == pytest.approx(1 - 1 / 8)
