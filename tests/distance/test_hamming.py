"""Unit tests for the Hamming distance kernel."""

import pytest

from repro.distance.hamming import hamming_distance, hamming_within
from repro.exceptions import InvalidThresholdError


class TestHammingDistance:
    def test_identical(self):
        assert hamming_distance("GATTACA", "GATTACA") == 0

    def test_single_substitution(self):
        assert hamming_distance("GATTACA", "GACTACA") == 1

    def test_all_positions_differ(self):
        assert hamming_distance("AAAA", "TTTT") == 4

    def test_empty_strings(self):
        assert hamming_distance("", "") == 0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            hamming_distance("AB", "ABC")

    def test_upper_bounds_edit_distance(self):
        from repro.distance.levenshtein import edit_distance

        pairs = [("GATTACA", "GACTACA"), ("AAAA", "TTTT"),
                 ("ACGT", "TGCA")]
        for x, y in pairs:
            assert edit_distance(x, y) <= hamming_distance(x, y)

    def test_works_on_code_tuples(self):
        assert hamming_distance((1, 2, 3), (1, 9, 3)) == 1


class TestHammingWithin:
    def test_within(self):
        assert hamming_within("GATTACA", "GACTACA", 1)

    def test_not_within(self):
        assert not hamming_within("AAAA", "TTTT", 3)

    def test_length_mismatch_is_false_not_error(self):
        assert not hamming_within("AB", "ABC", 10)

    def test_early_exit_exact_boundary(self):
        assert hamming_within("AAAA", "TTTT", 4)

    def test_rejects_bad_threshold(self):
        with pytest.raises(InvalidThresholdError):
            hamming_within("A", "A", -2)
