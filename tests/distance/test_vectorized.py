"""Property-based tests for the vectorized Myers bucket kernel.

The vectorized kernel must agree *exactly* with the scalar bit-parallel
kernel — identical distances for every candidate of every bucket, at
every threshold — because the scan executor switches between them
silently. Hypothesis drives the adversarial search; the scalar kernel
(itself pinned to the full-matrix reference elsewhere) is the oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deadline import Budget
from repro.distance.bitparallel import myers_distance
from repro.distance.vectorized import (
    DEFAULT_VECTOR_MIN_BUCKET,
    bucket_distances,
    prepare_query,
)
from repro.exceptions import DeadlineExceeded

#: Codes are ord(symbol) - ord('a'); 'z' encodes to -1, the stranger
#: marker the corpus uses for query symbols outside its alphabet.
_ALPHABET = "acgt"


def _encode(text: str) -> tuple[int, ...]:
    return tuple(
        _ALPHABET.index(ch) if ch in _ALPHABET else -1 for ch in text
    )


def _codes_matrix(rows: list[str], length: int) -> np.ndarray:
    data = [[_ALPHABET.index(ch) for ch in row] for row in rows]
    return np.array(data, dtype=np.uint16).reshape(len(rows), length)


def _reference(query: str, rows: list[str], k: int) -> list[int]:
    return [min(myers_distance(query, row), k + 1) for row in rows]


@st.composite
def bucket_cases(draw):
    query = draw(st.text(alphabet=_ALPHABET + "z", min_size=1,
                         max_size=75))
    length = draw(st.integers(min_value=0, max_value=70))
    count = draw(st.integers(min_value=0, max_value=12))
    rows = [
        draw(st.text(alphabet=_ALPHABET, min_size=length,
                     max_size=length))
        for _ in range(count)
    ]
    k = draw(st.integers(min_value=0, max_value=8))
    return query, rows, length, k


class TestScalarParity:
    @settings(max_examples=150, deadline=None)
    @given(bucket_cases())
    def test_matches_scalar_kernel(self, case):
        query, rows, length, k = case
        vq = prepare_query(_encode(query), len(_ALPHABET))
        got = bucket_distances(vq, _codes_matrix(rows, length), k)
        assert got.tolist() == _reference(query, rows, k)

    @settings(max_examples=40, deadline=None)
    @given(
        st.text(alphabet=_ALPHABET, min_size=65, max_size=150),
        st.lists(st.text(alphabet=_ALPHABET, min_size=100,
                         max_size=100), max_size=6),
        st.integers(min_value=0, max_value=12),
    )
    def test_multi_word_queries(self, query, rows, k):
        # Queries past 64 symbols exercise the carry propagation and
        # cross-word shifts; DNA reads live exactly in this regime.
        vq = prepare_query(_encode(query), len(_ALPHABET))
        assert vq.words >= 2
        got = bucket_distances(vq, _codes_matrix(rows, 100), k)
        assert got.tolist() == _reference(query, rows, k)

    def test_empty_bucket(self):
        vq = prepare_query(_encode("acgt"), len(_ALPHABET))
        got = bucket_distances(vq, np.zeros((0, 7), dtype=np.uint16), 2)
        assert got.shape == (0,)

    def test_singleton_bucket(self):
        vq = prepare_query(_encode("acgt"), len(_ALPHABET))
        got = bucket_distances(vq, _codes_matrix(["acgt"], 4), 2)
        assert got.tolist() == [0]

    def test_zero_length_candidates(self):
        vq = prepare_query(_encode("acg"), len(_ALPHABET))
        within = bucket_distances(vq, np.zeros((3, 0), dtype=np.uint16),
                                  3)
        assert within.tolist() == [3, 3, 3]
        beyond = bucket_distances(vq, np.zeros((3, 0), dtype=np.uint16),
                                  2)
        assert beyond.tolist() == [3, 3, 3]  # k + 1: excluded

    def test_stranger_query_symbols_never_match(self):
        # 'z' encodes to -1: no peq bit, so it costs one edit against
        # every candidate symbol — the raw-string semantics.
        vq = prepare_query(_encode("zzzz"), len(_ALPHABET))
        got = bucket_distances(vq, _codes_matrix(["acgt"], 4), 4)
        assert got.tolist() == [4]

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            prepare_query((), len(_ALPHABET))


class TestEarlyAbort:
    def test_all_candidates_die_early(self):
        # k=0 against uniformly wrong rows kills the whole active set
        # long before the last column; result must still be k + 1.
        query = "a" * 40
        rows = ["c" * 40] * 5
        vq = prepare_query(_encode(query), len(_ALPHABET))
        got = bucket_distances(vq, _codes_matrix(rows, 40), 0)
        assert got.tolist() == [1] * 5

    def test_survivors_keep_exact_distances_after_compaction(self):
        # Mixed bucket: some rows die early, some match — compaction
        # must not scramble who is who.
        query = "acgtacgtacgtacgtacgtacgtacgtacgt"  # 32 symbols
        rows = ["c" * 32, query, "t" * 32,
                query[:-1] + "a", "g" * 32]
        vq = prepare_query(_encode(query), len(_ALPHABET))
        got = bucket_distances(vq, _codes_matrix(rows, 32), 2)
        assert got.tolist() == _reference(query, rows, 2)

    @settings(max_examples=60, deadline=None)
    @given(bucket_cases())
    def test_abort_paths_agree_at_tight_thresholds(self, case):
        # k=0 and k=1 maximize early aborts; parity must survive them.
        query, rows, length, _ = case
        vq = prepare_query(_encode(query), len(_ALPHABET))
        codes = _codes_matrix(rows, length)
        for k in (0, 1):
            got = bucket_distances(vq, codes, k)
            assert got.tolist() == _reference(query, rows, k)


class TestDeadlines:
    def test_whole_bucket_charges_one_unit_per_candidate(self):
        query = "acgt" * 10
        rows = ["acgt" * 10, "aggt" * 10, "tttt" * 10]
        vq = prepare_query(_encode(query), len(_ALPHABET))
        budget = Budget(len(rows) + 1, check_interval=1)
        bucket_distances(vq, _codes_matrix(rows, 40), 3,
                         deadline=budget)
        assert budget.spent == len(rows)

    def test_early_return_still_charges_full_bucket(self):
        # The scalar kernel charges every candidate it touches; the
        # vectorized early return must not under-report work.
        query = "a" * 40
        rows = ["c" * 40] * 4
        vq = prepare_query(_encode(query), len(_ALPHABET))
        budget = Budget(len(rows) + 1, check_interval=1)
        bucket_distances(vq, _codes_matrix(rows, 40), 0,
                         deadline=budget)
        assert budget.spent == len(rows)

    def test_mid_bucket_expiry_raises_without_partial(self):
        query = "acgt" * 20
        rows = ["acgt" * 20] * 50
        vq = prepare_query(_encode(query), len(_ALPHABET))
        budget = Budget(5, check_interval=1)
        with pytest.raises(DeadlineExceeded) as caught:
            bucket_distances(vq, _codes_matrix(rows, 80), 2,
                             deadline=budget, block=8)
        assert caught.value.scope == "candidates"
        assert caught.value.partial == ()


def test_auto_threshold_is_sane():
    # The executor's auto heuristic keys off this constant; pin it so
    # a change is a conscious decision, not a drive-by.
    assert DEFAULT_VECTOR_MIN_BUCKET >= 2
