"""Property-based tests: conservation laws of the scheduler model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.simulator import (
    SchedulerModel,
    simulate_adaptive,
    simulate_fixed_pool,
    simulate_serial,
    simulate_thread_per_query,
)
from repro.parallel.strategies import AdaptiveStrategy

costs_lists = st.lists(
    st.floats(min_value=0.0, max_value=2.0, allow_nan=False,
              allow_infinity=False),
    max_size=25,
)
thread_counts = st.integers(min_value=1, max_value=32)

FRICTIONLESS = SchedulerModel(
    cores=8, thread_create_cost=0.0, thread_join_cost=0.0,
    context_switch_penalty=0.0,
)
REALISTIC = SchedulerModel(cores=8)


class TestConservation:
    @settings(max_examples=60)
    @given(costs_lists, thread_counts)
    def test_work_in_equals_work_out(self, costs, threads):
        result = simulate_fixed_pool(costs, threads, REALISTIC)
        assert abs(result.total_work - sum(costs)) < 1e-9
        assert result.queries == len(costs)

    @settings(max_examples=60)
    @given(costs_lists)
    def test_adaptive_conserves_work(self, costs):
        result = simulate_adaptive(costs, AdaptiveStrategy(), REALISTIC)
        assert abs(result.total_work - sum(costs)) < 1e-9
        assert result.queries == len(costs)

    @settings(max_examples=60)
    @given(costs_lists)
    def test_thread_per_query_conserves_work(self, costs):
        result = simulate_thread_per_query(costs, REALISTIC)
        assert abs(result.total_work - sum(costs)) < 1e-9


class TestPhysicalBounds:
    @settings(max_examples=60)
    @given(costs_lists, thread_counts)
    def test_wall_time_at_least_critical_path(self, costs, threads):
        result = simulate_fixed_pool(costs, threads, FRICTIONLESS)
        # No schedule beats work/cores, nor the longest single query.
        lower = max(sum(costs) / FRICTIONLESS.cores,
                    max(costs, default=0.0))
        assert result.wall_time >= lower - 1e-9

    @settings(max_examples=60)
    @given(costs_lists, thread_counts)
    def test_wall_time_at_most_serial_plus_overhead(self, costs, threads):
        result = simulate_fixed_pool(costs, threads, REALISTIC)
        overhead = threads * (REALISTIC.thread_create_cost
                              + REALISTIC.thread_join_cost)
        # Oversubscription can waste at most the configured penalty.
        slack = 1.0 + REALISTIC.context_switch_penalty * (
            threads / REALISTIC.cores
        )
        assert result.wall_time <= sum(costs) * slack + overhead + 1e-6

    @settings(max_examples=60)
    @given(costs_lists, thread_counts)
    def test_contention_zero_within_core_budget(self, costs, threads):
        if threads <= FRICTIONLESS.cores:
            result = simulate_fixed_pool(costs, threads, FRICTIONLESS)
            assert result.contention_overhead == 0.0

    @settings(max_examples=60)
    @given(costs_lists)
    def test_serial_is_exact(self, costs):
        result = simulate_serial(costs)
        assert abs(result.wall_time - sum(costs)) < 1e-9


class TestMonotonicity:
    @settings(max_examples=40)
    @given(costs_lists)
    def test_frictionless_pool_never_slower_than_serial(self, costs):
        pooled = simulate_fixed_pool(costs, 8, FRICTIONLESS)
        assert pooled.wall_time <= sum(costs) + 1e-9

    @settings(max_examples=40)
    @given(costs_lists)
    def test_adaptive_peak_bounded(self, costs):
        strategy = AdaptiveStrategy(min_threads=1, max_threads=6)
        result = simulate_adaptive(costs, strategy, REALISTIC)
        assert result.peak_threads <= 6
