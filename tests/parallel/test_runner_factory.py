"""Unit tests for the strategy-to-executor factory."""

import pytest

from repro.exceptions import ParallelismError
from repro.parallel.adaptive import AdaptiveManager
from repro.parallel.executor import (
    SerialRunner,
    ThreadPerQueryRunner,
    ThreadPoolRunner,
    runner_from_strategy,
)
from repro.parallel.strategies import (
    AdaptiveStrategy,
    FixedPoolStrategy,
    SerialStrategy,
    ThreadPerQueryStrategy,
)


class TestRunnerFromStrategy:
    def test_serial(self):
        assert isinstance(runner_from_strategy(SerialStrategy()),
                          SerialRunner)

    def test_thread_per_query(self):
        assert isinstance(
            runner_from_strategy(ThreadPerQueryStrategy()),
            ThreadPerQueryRunner,
        )

    def test_fixed_pool_carries_thread_count(self):
        runner = runner_from_strategy(FixedPoolStrategy(threads=6))
        assert isinstance(runner, ThreadPoolRunner)
        assert runner.threads == 6

    def test_adaptive_carries_rules(self):
        strategy = AdaptiveStrategy(min_threads=2, max_threads=5,
                                    open_threshold=0.8,
                                    close_threshold=0.2)
        runner = runner_from_strategy(strategy)
        assert isinstance(runner, AdaptiveManager)
        assert runner.rules.min_threads == 2
        assert runner.rules.max_threads == 5
        assert runner.rules.open_threshold == 0.8

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ParallelismError):
            runner_from_strategy(object())

    def test_produced_runners_work(self):
        for strategy in (SerialStrategy(), FixedPoolStrategy(threads=2)):
            runner = runner_from_strategy(strategy)
            assert runner.run(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]
