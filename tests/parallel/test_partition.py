"""Unit tests for query partitioning."""

import pytest

from repro.exceptions import ParallelismError
from repro.parallel.partition import balanced_chunks, round_robin_chunks


class TestBalancedChunks:
    def test_even_split(self):
        assert balanced_chunks([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_remainder_goes_to_front(self):
        assert balanced_chunks([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]

    def test_sizes_differ_by_at_most_one(self):
        chunks = balanced_chunks(list(range(17)), 5)
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_items(self):
        chunks = balanced_chunks([1, 2], 4)
        assert chunks == [[1], [2], [], []]

    def test_empty_input(self):
        assert balanced_chunks([], 3) == [[], [], []]

    def test_concatenation_preserves_order(self):
        items = list(range(23))
        chunks = balanced_chunks(items, 4)
        assert [x for chunk in chunks for x in chunk] == items

    def test_invalid_chunk_count(self):
        with pytest.raises(ParallelismError):
            balanced_chunks([1], 0)


class TestRoundRobinChunks:
    def test_dealing_order(self):
        assert round_robin_chunks([1, 2, 3, 4, 5], 2) == [[1, 3, 5], [2, 4]]

    def test_single_chunk_is_identity(self):
        assert round_robin_chunks([3, 1, 2], 1) == [[3, 1, 2]]

    def test_every_item_lands_exactly_once(self):
        items = list(range(31))
        chunks = round_robin_chunks(items, 7)
        flattened = sorted(x for chunk in chunks for x in chunk)
        assert flattened == items

    def test_sizes_differ_by_at_most_one(self):
        chunks = round_robin_chunks(list(range(10)), 4)
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_chunk_count(self):
        with pytest.raises(ParallelismError):
            round_robin_chunks([1], -1)
