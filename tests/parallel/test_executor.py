"""Unit tests for the real execution backends."""

import threading

import pytest

from repro.exceptions import ParallelismError
from repro.parallel.executor import (
    ProcessPoolRunner,
    SerialRunner,
    ThreadPerQueryRunner,
    ThreadPoolRunner,
)


def square(x: int) -> int:
    return x * x


QUERIES = list(range(50))
EXPECTED = [square(q) for q in QUERIES]


class TestSerialRunner:
    def test_maps_in_order(self):
        assert SerialRunner().run(square, QUERIES) == EXPECTED

    def test_empty_batch(self):
        assert SerialRunner().run(square, []) == []

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            SerialRunner().run(boom, [1])


class TestThreadPoolRunner:
    def test_results_keep_input_order(self):
        assert ThreadPoolRunner(threads=4).run(square, QUERIES) == EXPECTED

    def test_single_thread(self):
        assert ThreadPoolRunner(threads=1).run(square, QUERIES) == EXPECTED

    def test_more_threads_than_queries(self):
        assert ThreadPoolRunner(threads=64).run(square, [1, 2]) == [1, 4]

    def test_empty_batch(self):
        assert ThreadPoolRunner(threads=4).run(square, []) == []

    def test_work_actually_crosses_threads(self):
        seen: set[str] = set()
        lock = threading.Lock()

        def record(x):
            with lock:
                seen.add(threading.current_thread().name)
            return x

        ThreadPoolRunner(threads=4).run(record, list(range(200)))
        assert threading.current_thread().name not in seen

    def test_exceptions_propagate(self):
        def boom(x):
            if x == 3:
                raise ValueError("bad query")
            return x

        with pytest.raises(ValueError):
            ThreadPoolRunner(threads=2).run(boom, list(range(8)))

    def test_invalid_thread_count(self):
        with pytest.raises(ParallelismError):
            ThreadPoolRunner(threads=0)


class TestThreadPerQueryRunner:
    def test_results_keep_input_order(self):
        runner = ThreadPerQueryRunner(max_live=16)
        assert runner.run(square, QUERIES) == EXPECTED

    def test_empty_batch(self):
        assert ThreadPerQueryRunner().run(square, []) == []

    def test_respects_live_cap(self):
        # With a cap of 4, at most 4 worker threads exist at once; we
        # can only observe indirectly that all work completes.
        runner = ThreadPerQueryRunner(max_live=4)
        assert runner.run(square, list(range(23))) == \
            [square(q) for q in range(23)]

    def test_invalid_cap(self):
        with pytest.raises(ParallelismError):
            ThreadPerQueryRunner(max_live=0)

    def test_exceptions_propagate(self):
        def boom(x):
            raise KeyError(x)

        with pytest.raises(KeyError):
            ThreadPerQueryRunner(max_live=2).run(boom, [1, 2, 3])


class TestProcessPoolRunner:
    def test_results_keep_input_order(self):
        runner = ProcessPoolRunner(processes=2)
        assert runner.run(square, QUERIES) == EXPECTED

    def test_empty_batch(self):
        assert ProcessPoolRunner(processes=2).run(square, []) == []

    def test_invalid_process_count(self):
        with pytest.raises(ParallelismError):
            ProcessPoolRunner(processes=0)

    def test_default_uses_cpu_count(self):
        assert ProcessPoolRunner().processes >= 1
