"""Unit tests for the work-stealing scheduler variant."""

import pytest

from repro.exceptions import ParallelismError
from repro.parallel.simulator import (
    SchedulerModel,
    simulate_fixed_pool,
    simulate_work_stealing,
)

FRICTIONLESS = SchedulerModel(
    cores=8, thread_create_cost=0.0, thread_join_cost=0.0,
    context_switch_penalty=0.0,
)


class TestWorkStealing:
    def test_work_is_conserved(self):
        costs = [0.3, 0.1, 0.9, 0.05, 0.4]
        result = simulate_work_stealing(costs, 4, FRICTIONLESS)
        assert result.total_work == pytest.approx(sum(costs))
        assert result.queries == len(costs)

    def test_uniform_costs_match_fixed_pool(self):
        costs = [0.2] * 32
        stolen = simulate_work_stealing(costs, 8, FRICTIONLESS,
                                        steal_cost=0.0)
        static = simulate_fixed_pool(costs, 8, FRICTIONLESS)
        assert stolen.wall_time == pytest.approx(static.wall_time,
                                                 rel=0.05)

    def test_stealing_beats_static_on_skewed_backlogs(self):
        # Round-robin over 2 workers puts all the heavy queries on
        # worker 0; stealing must rebalance.
        costs = [1.0, 0.01] * 16
        static = simulate_fixed_pool(costs, 2, FRICTIONLESS)
        stolen = simulate_work_stealing(costs, 2, FRICTIONLESS)
        assert stolen.wall_time < static.wall_time

    def test_never_worse_than_serial(self):
        costs = [0.1, 0.5, 0.2]
        result = simulate_work_stealing(costs, 4, FRICTIONLESS)
        assert result.wall_time <= sum(costs) + 1e-9

    def test_wall_time_at_least_critical_path(self):
        costs = [2.0] + [0.01] * 20
        result = simulate_work_stealing(costs, 8, FRICTIONLESS)
        assert result.wall_time >= 2.0 - 1e-9

    def test_empty_batch(self):
        assert simulate_work_stealing([], 4, FRICTIONLESS).queries == 0

    def test_deterministic(self):
        costs = [0.13, 0.7, 0.22, 0.9, 0.05]
        a = simulate_work_stealing(costs, 3, SchedulerModel())
        b = simulate_work_stealing(costs, 3, SchedulerModel())
        assert a.wall_time == b.wall_time

    def test_invalid_parameters(self):
        with pytest.raises(ParallelismError):
            simulate_work_stealing([1.0], 0, FRICTIONLESS)
        with pytest.raises(ParallelismError):
            simulate_work_stealing([1.0], 2, FRICTIONLESS,
                                   steal_cost=-1.0)

    def test_steal_cost_slows_but_terminates(self):
        costs = [1.0, 0.01] * 8
        cheap = simulate_work_stealing(costs, 2, FRICTIONLESS,
                                       steal_cost=0.0)
        pricey = simulate_work_stealing(costs, 2, FRICTIONLESS,
                                        steal_cost=0.05)
        assert pricey.wall_time >= cheap.wall_time
