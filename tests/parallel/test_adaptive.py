"""Unit tests for the real master-slave adaptive manager."""

import time

import pytest

from repro.exceptions import ParallelismError
from repro.parallel.adaptive import AdaptiveManager, ManagerRules


class TestManagerRules:
    def test_defaults_match_paper(self):
        rules = ManagerRules()
        assert rules.open_threshold == 0.7
        assert rules.close_threshold == 0.3

    def test_validation(self):
        with pytest.raises(ParallelismError):
            ManagerRules(min_threads=0)
        with pytest.raises(ParallelismError):
            ManagerRules(min_threads=4, max_threads=2)
        with pytest.raises(ParallelismError):
            ManagerRules(open_threshold=0.1, close_threshold=0.5)
        with pytest.raises(ParallelismError):
            ManagerRules(sample_interval=0)


class TestAdaptiveManager:
    def test_results_keep_input_order(self):
        manager = AdaptiveManager(ManagerRules(min_threads=2))
        queries = list(range(40))
        assert manager.run(lambda q: q + 1, queries) == \
            [q + 1 for q in queries]

    def test_empty_batch(self):
        assert AdaptiveManager().run(lambda q: q, []) == []

    def test_bookkeeping_after_run(self):
        manager = AdaptiveManager(
            ManagerRules(min_threads=2, max_threads=4,
                         sample_interval=0.002)
        )
        manager.run(lambda q: time.sleep(0.003) or q, list(range(30)))
        assert manager.threads_opened >= 2
        assert manager.peak_threads >= 2
        assert manager.peak_threads <= 4

    def test_grows_under_sustained_load(self):
        manager = AdaptiveManager(
            ManagerRules(min_threads=1, max_threads=6,
                         sample_interval=0.002)
        )
        manager.run(lambda q: time.sleep(0.004) or q, list(range(60)))
        # Utilization is 100% throughout (pure backlog), so the master
        # must have opened extra workers.
        assert manager.threads_opened > 1

    def test_exceptions_propagate(self):
        manager = AdaptiveManager(ManagerRules(min_threads=2))

        def boom(q):
            if q == 5:
                raise RuntimeError("query 5 failed")
            return q

        with pytest.raises(RuntimeError):
            manager.run(boom, list(range(12)))

    def test_utilization_samples_in_range(self):
        manager = AdaptiveManager(
            ManagerRules(min_threads=2, sample_interval=0.002)
        )
        manager.run(lambda q: time.sleep(0.002) or q, list(range(30)))
        for sample in manager.utilization_samples:
            assert 0.0 <= sample.utilization <= 1.0

    def test_results_match_serial_execution(self):
        manager = AdaptiveManager(ManagerRules(min_threads=3))
        queries = [f"q{i}" for i in range(25)]
        assert manager.run(str.upper, queries) == \
            [q.upper() for q in queries]
