"""Unit tests for the real master-slave adaptive manager."""

import time

import pytest

from repro.exceptions import ParallelismError
from repro.parallel.adaptive import AdaptiveManager, ManagerRules


class TestManagerRules:
    def test_defaults_match_paper(self):
        rules = ManagerRules()
        assert rules.open_threshold == 0.7
        assert rules.close_threshold == 0.3

    def test_validation(self):
        with pytest.raises(ParallelismError):
            ManagerRules(min_threads=0)
        with pytest.raises(ParallelismError):
            ManagerRules(min_threads=4, max_threads=2)
        with pytest.raises(ParallelismError):
            ManagerRules(open_threshold=0.1, close_threshold=0.5)
        with pytest.raises(ParallelismError):
            ManagerRules(sample_interval=0)


class TestAdaptiveManager:
    def test_results_keep_input_order(self):
        manager = AdaptiveManager(ManagerRules(min_threads=2))
        queries = list(range(40))
        assert manager.run(lambda q: q + 1, queries) == \
            [q + 1 for q in queries]

    def test_empty_batch(self):
        assert AdaptiveManager().run(lambda q: q, []) == []

    def test_bookkeeping_after_run(self):
        manager = AdaptiveManager(
            ManagerRules(min_threads=2, max_threads=4,
                         sample_interval=0.002)
        )
        manager.run(lambda q: time.sleep(0.003) or q, list(range(30)))
        assert manager.threads_opened >= 2
        assert manager.peak_threads >= 2
        assert manager.peak_threads <= 4

    def test_grows_under_sustained_load(self):
        manager = AdaptiveManager(
            ManagerRules(min_threads=1, max_threads=6,
                         sample_interval=0.002)
        )
        manager.run(lambda q: time.sleep(0.004) or q, list(range(60)))
        # Utilization is 100% throughout (pure backlog), so the master
        # must have opened extra workers.
        assert manager.threads_opened > 1

    def test_exceptions_propagate(self):
        manager = AdaptiveManager(ManagerRules(min_threads=2))

        def boom(q):
            if q == 5:
                raise RuntimeError("query 5 failed")
            return q

        with pytest.raises(RuntimeError):
            manager.run(boom, list(range(12)))

    def test_utilization_samples_in_range(self):
        manager = AdaptiveManager(
            ManagerRules(min_threads=2, sample_interval=0.002)
        )
        manager.run(lambda q: time.sleep(0.002) or q, list(range(30)))
        for sample in manager.utilization_samples:
            assert 0.0 <= sample.utilization <= 1.0

    def test_results_match_serial_execution(self):
        manager = AdaptiveManager(ManagerRules(min_threads=3))
        queries = [f"q{i}" for i in range(25)]
        assert manager.run(str.upper, queries) == \
            [q.upper() for q in queries]


class TestSkewedWork:
    """The rules under heavy skew — a few huge shards among many tiny
    ones, the shape the traffic pools re-fit against."""

    def test_skewed_durations_keep_order_and_results(self):
        # Shard 0 is ~50x the size of the rest; per-item cost follows.
        sizes = [500] + [10] * 9

        def scan(shard):
            time.sleep(sizes[shard] / 100_000)
            return sizes[shard]

        manager = AdaptiveManager(
            ManagerRules(min_threads=2, max_threads=6,
                         sample_interval=0.002)
        )
        assert manager.run(scan, list(range(10))) == sizes

    def test_skew_grows_pool_but_respects_max(self):
        # One slow item pins a worker; the backlog of fast items keeps
        # utilization at 1.0, so the master opens more — never past max.
        def work(item):
            time.sleep(0.02 if item == 0 else 0.002)
            return item

        manager = AdaptiveManager(
            ManagerRules(min_threads=1, max_threads=4,
                         sample_interval=0.002)
        )
        results = manager.run(work, list(range(40)))
        assert results == list(range(40))
        assert manager.threads_opened > 1
        assert manager.peak_threads <= 4

    def test_uniform_tiny_work_stays_near_minimum(self):
        # With no measurable backlog the rules have nothing to open for.
        manager = AdaptiveManager(
            ManagerRules(min_threads=1, max_threads=8,
                         sample_interval=0.01)
        )
        manager.run(lambda q: q, list(range(50)))
        assert manager.peak_threads <= 2
