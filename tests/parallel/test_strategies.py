"""Unit tests for strategy descriptors."""

import pytest

from repro.exceptions import ParallelismError
from repro.parallel.strategies import (
    AdaptiveStrategy,
    FixedPoolStrategy,
    SerialStrategy,
    ThreadPerQueryStrategy,
)


class TestDescriptors:
    def test_names(self):
        assert SerialStrategy().name == "serial"
        assert ThreadPerQueryStrategy().name == "thread-per-query"
        assert FixedPoolStrategy().name == "fixed-pool"
        assert AdaptiveStrategy().name == "adaptive"

    def test_fixed_pool_default_is_paper_core_count(self):
        assert FixedPoolStrategy().threads == 8

    def test_fixed_pool_rejects_zero_threads(self):
        with pytest.raises(ParallelismError):
            FixedPoolStrategy(threads=0)

    def test_adaptive_default_rules_match_paper(self):
        strategy = AdaptiveStrategy()
        assert strategy.open_threshold == 0.7
        assert strategy.close_threshold == 0.3

    def test_adaptive_rejects_inverted_thresholds(self):
        with pytest.raises(ParallelismError):
            AdaptiveStrategy(open_threshold=0.2, close_threshold=0.5)

    def test_adaptive_rejects_bad_bounds(self):
        with pytest.raises(ParallelismError):
            AdaptiveStrategy(min_threads=0)
        with pytest.raises(ParallelismError):
            AdaptiveStrategy(min_threads=8, max_threads=4)

    def test_descriptors_are_hashable_values(self):
        assert FixedPoolStrategy(threads=8) == FixedPoolStrategy(threads=8)
        assert len({FixedPoolStrategy(threads=4),
                    FixedPoolStrategy(threads=4),
                    FixedPoolStrategy(threads=8)}) == 2
