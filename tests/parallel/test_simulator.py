"""Unit tests for the scheduler model."""

import pytest

from repro.exceptions import ParallelismError
from repro.parallel.simulator import (
    SchedulerModel,
    simulate_adaptive,
    simulate_fixed_pool,
    simulate_serial,
    simulate_thread_per_query,
)
from repro.parallel.strategies import AdaptiveStrategy

#: A model with zero overheads isolates pure scheduling behaviour.
FRICTIONLESS = SchedulerModel(
    cores=8, thread_create_cost=0.0, thread_join_cost=0.0,
    context_switch_penalty=0.0,
)


class TestSchedulerModel:
    def test_rate_full_speed_within_cores(self):
        model = SchedulerModel(cores=8)
        assert model.rate(1) == 1.0
        assert model.rate(8) == 1.0

    def test_rate_degrades_when_oversubscribed(self):
        model = SchedulerModel(cores=8, context_switch_penalty=0.1)
        assert model.rate(16) < 8 / 16
        assert model.rate(16) == pytest.approx((8 / 16) / 1.1)

    def test_invalid_parameters(self):
        with pytest.raises(ParallelismError):
            SchedulerModel(cores=0)
        with pytest.raises(ParallelismError):
            SchedulerModel(thread_create_cost=-1)
        with pytest.raises(ParallelismError):
            SchedulerModel(context_switch_penalty=-0.1)
        with pytest.raises(ParallelismError):
            SchedulerModel(manager_interval=0)


class TestSerial:
    def test_wall_time_is_total_work(self):
        result = simulate_serial([1.0, 2.0, 3.0])
        assert result.wall_time == 6.0
        assert result.total_work == 6.0
        assert result.queries == 3

    def test_empty_batch(self):
        result = simulate_serial([])
        assert result.wall_time == 0.0

    def test_negative_cost_rejected(self):
        with pytest.raises(ParallelismError):
            simulate_serial([1.0, -0.5])


class TestFixedPool:
    def test_perfect_speedup_with_frictionless_model(self):
        costs = [1.0] * 8
        result = simulate_fixed_pool(costs, 8, FRICTIONLESS)
        assert result.wall_time == pytest.approx(1.0, rel=1e-6)
        assert result.speedup_bound == pytest.approx(8.0, rel=1e-6)

    def test_single_thread_equals_serial(self):
        costs = [0.5, 0.25, 1.0]
        pooled = simulate_fixed_pool(costs, 1, FRICTIONLESS)
        assert pooled.wall_time == pytest.approx(sum(costs), rel=1e-6)

    def test_work_is_conserved(self):
        costs = [0.1, 0.7, 0.3, 0.9, 0.2]
        for threads in (1, 2, 4, 8, 32):
            result = simulate_fixed_pool(costs, threads, FRICTIONLESS)
            assert result.total_work == pytest.approx(sum(costs))

    def test_creation_overhead_charged_per_thread(self):
        model = SchedulerModel(cores=8, thread_create_cost=1.0,
                               thread_join_cost=0.5,
                               context_switch_penalty=0.0)
        result = simulate_fixed_pool([0.0], 4, model)
        assert result.creation_overhead == pytest.approx(4 * 1.5)
        assert result.threads_opened == 4

    def test_oversubscription_is_penalized(self):
        costs = [0.1] * 64
        at_cores = simulate_fixed_pool(costs, 8, FRICTIONLESS)
        oversubscribed = simulate_fixed_pool(
            costs, 32,
            SchedulerModel(cores=8, thread_create_cost=0.0,
                           thread_join_cost=0.0,
                           context_switch_penalty=0.2),
        )
        assert oversubscribed.wall_time > at_cores.wall_time
        assert oversubscribed.contention_overhead > 0

    def test_more_threads_help_skewed_work(self):
        # One long query plus many short ones: 16 threads balance the
        # round-robin partition better than 2.
        costs = [2.0] + [0.1] * 30
        few = simulate_fixed_pool(costs, 2, FRICTIONLESS)
        many = simulate_fixed_pool(costs, 16, FRICTIONLESS)
        assert many.wall_time < few.wall_time

    def test_empty_batch(self):
        result = simulate_fixed_pool([], 4, FRICTIONLESS)
        assert result.queries == 0

    def test_invalid_thread_count(self):
        with pytest.raises(ParallelismError):
            simulate_fixed_pool([1.0], 0)

    def test_wall_time_bounded_below_by_work_over_cores(self):
        costs = [0.2] * 40
        for threads in (4, 8, 16):
            result = simulate_fixed_pool(costs, threads, FRICTIONLESS)
            assert result.wall_time >= sum(costs) / 8 - 1e-9

    def test_deterministic(self):
        costs = [0.13, 0.7, 0.22, 0.9]
        a = simulate_fixed_pool(costs, 4, SchedulerModel())
        b = simulate_fixed_pool(costs, 4, SchedulerModel())
        assert a.wall_time == b.wall_time


class TestThreadPerQuery:
    def test_one_thread_per_query(self):
        result = simulate_thread_per_query([0.1] * 12, FRICTIONLESS)
        assert result.threads_opened == 12

    def test_creation_overhead_dominates_short_queries(self):
        # The paper's stage-5 lesson: per-query threads lose when
        # creation costs rival query costs.
        model = SchedulerModel(cores=8, thread_create_cost=0.1,
                               thread_join_cost=0.02)
        costs = [0.02] * 100
        per_query = simulate_thread_per_query(costs, model)
        serial = simulate_serial(costs)
        assert per_query.wall_time > serial.wall_time

    def test_empty_batch(self):
        assert simulate_thread_per_query([], FRICTIONLESS).queries == 0


class TestAdaptive:
    def test_completes_all_work(self):
        costs = [0.05] * 40
        result = simulate_adaptive(costs, AdaptiveStrategy(max_threads=8))
        assert result.queries == 40
        assert result.total_work == pytest.approx(sum(costs))

    def test_pool_grows_under_load(self):
        costs = [0.5] * 60
        strategy = AdaptiveStrategy(min_threads=1, max_threads=8)
        result = simulate_adaptive(costs, strategy)
        assert result.peak_threads > 1
        assert result.threads_opened >= result.peak_threads

    def test_respects_max_threads(self):
        costs = [0.5] * 100
        strategy = AdaptiveStrategy(min_threads=1, max_threads=4)
        result = simulate_adaptive(costs, strategy)
        assert result.peak_threads <= 4

    def test_beats_thread_per_query_on_short_queries(self):
        model = SchedulerModel(cores=8, thread_create_cost=0.05,
                               thread_join_cost=0.01)
        costs = [0.02] * 200
        adaptive = simulate_adaptive(costs, AdaptiveStrategy(), model)
        per_query = simulate_thread_per_query(costs, model)
        assert adaptive.wall_time < per_query.wall_time

    def test_utilization_samples_recorded(self):
        costs = [0.3] * 30
        result = simulate_adaptive(costs, AdaptiveStrategy(max_threads=8))
        assert result.utilization_samples
        assert all(0.0 <= s.utilization <= 1.0
                   for s in result.utilization_samples)

    def test_empty_batch(self):
        assert simulate_adaptive([]).queries == 0

    def test_deterministic(self):
        costs = [0.11, 0.5, 0.07] * 10
        a = simulate_adaptive(costs, AdaptiveStrategy())
        b = simulate_adaptive(costs, AdaptiveStrategy())
        assert a.wall_time == b.wall_time
        assert a.threads_opened == b.threads_opened


class TestResultMetrics:
    def test_summary_mentions_key_numbers(self):
        result = simulate_fixed_pool([1.0] * 4, 4, FRICTIONLESS)
        summary = result.summary()
        assert "queries=4" in summary
        assert "threads=4" in summary

    def test_speedup_bound_zero_for_zero_wall(self):
        result = simulate_serial([])
        assert result.speedup_bound == 0.0

    def test_mean_utilization_idle(self):
        assert simulate_serial([]).mean_utilization == 0.0
