"""Unit tests for the BK-tree baseline."""

import pytest

from repro.distance.levenshtein import edit_distance
from repro.exceptions import IndexConstructionError, InvalidThresholdError
from repro.index.bktree import BKTree, bktree_from


class TestConstruction:
    def test_size_counts_duplicates(self):
        tree = BKTree(["Ulm", "Ulm", "Bern"])
        assert tree.size == 3

    def test_empty_tree(self):
        tree = BKTree()
        assert tree.size == 0
        assert tree.search("x", 5) == []
        assert tree.depth() == 0

    def test_empty_string_rejected(self):
        with pytest.raises(IndexConstructionError):
            BKTree([""])

    def test_depth_grows_with_content(self):
        assert BKTree(["a"]).depth() == 1
        assert BKTree(["a", "ab", "abc"]).depth() >= 2

    def test_shuffled_build_helper(self):
        strings = sorted(["alpha", "beta", "gamma", "delta", "epsilon"])
        tree = bktree_from(strings)
        assert tree.size == 5
        assert tree.search_strings("beta", 0) == ["beta"]


class TestSearch:
    DATA = ["Berlin", "Bern", "Bergen", "Ulm", "Hamburg", "Hamm", "Bern"]

    def test_equals_brute_force(self):
        tree = BKTree(self.DATA)
        for query in ("Bern", "Hamm", "Ulmen", "zzz", "Bergen"):
            for k in (0, 1, 2, 3):
                expected = sorted(
                    {s for s in self.DATA if edit_distance(query, s) <= k}
                )
                assert tree.search_strings(query, k) == expected, (query, k)

    def test_multiplicity_reported(self):
        tree = BKTree(self.DATA)
        match = next(m for m in tree.search("Bern", 0))
        assert match.multiplicity == 2

    def test_distances_exact(self):
        tree = BKTree(self.DATA)
        for match in tree.search("Berg", 3):
            assert match.distance == edit_distance("Berg", match.string)

    def test_invalid_threshold(self):
        with pytest.raises(InvalidThresholdError):
            BKTree(["a"]).search("a", -1)

    def test_triangle_pruning_skips_distance_computations(self):
        # With a tight threshold, the tree must compute far fewer
        # distances than a full scan would.
        strings = [f"prefix{i:04d}" for i in range(200)]
        tree = BKTree(strings)
        tree.distance_computations = 0
        tree.search("prefix0000", 1)
        assert tree.distance_computations < len(strings)
