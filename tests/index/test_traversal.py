"""Unit tests for the banded similarity traversal."""

import pytest

from repro.distance.levenshtein import edit_distance
from repro.exceptions import InvalidThresholdError
from repro.index.compressed import CompressedTrie
from repro.index.traversal import TraversalStats, trie_similarity_search
from repro.index.trie import PrefixTrie

CITY_SAMPLE = ["Berlin", "Bern", "Ulm", "Bergen", "Hamburg", "Hamm"]


class TestBasicSearch:
    def test_exact_match_at_k_zero(self):
        trie = PrefixTrie(CITY_SAMPLE)
        matches = trie_similarity_search(trie, "Bern", 0)
        assert [m.string for m in matches] == ["Bern"]
        assert matches[0].distance == 0

    def test_paper_style_fuzzy_query(self):
        trie = PrefixTrie(CITY_SAMPLE)
        matches = trie_similarity_search(trie, "Berlino", 2)
        assert [m.string for m in matches] == ["Berlin"]
        matches = trie_similarity_search(trie, "Berlino", 3)
        assert [m.string for m in matches] == ["Bergen", "Berlin", "Bern"]

    def test_no_matches(self):
        trie = PrefixTrie(CITY_SAMPLE)
        assert trie_similarity_search(trie, "Xyzzy", 1) == []

    def test_results_sorted_lexicographically(self):
        trie = PrefixTrie(CITY_SAMPLE)
        matches = trie_similarity_search(trie, "Ber", 3)
        strings = [m.string for m in matches]
        assert strings == sorted(strings)

    def test_distances_are_exact(self):
        trie = PrefixTrie(CITY_SAMPLE)
        for match in trie_similarity_search(trie, "Hamburh", 3):
            assert match.distance == edit_distance("Hamburh", match.string)

    def test_multiplicity_reported(self):
        trie = PrefixTrie(["Ulm", "Ulm", "Bern"])
        (match,) = trie_similarity_search(trie, "Ulm", 0)
        assert match.multiplicity == 2

    def test_empty_query_matches_short_strings(self):
        trie = PrefixTrie(["a", "ab", "abc"])
        matches = trie_similarity_search(trie, "", 2)
        assert [m.string for m in matches] == ["a", "ab"]

    def test_empty_trie(self):
        assert trie_similarity_search(PrefixTrie(), "anything", 3) == []

    def test_invalid_threshold(self):
        with pytest.raises(InvalidThresholdError):
            trie_similarity_search(PrefixTrie(["a"]), "a", -1)

    def test_compressed_gives_identical_results(self):
        plain = PrefixTrie(CITY_SAMPLE)
        compressed = CompressedTrie(CITY_SAMPLE)
        for query in ("Berlin", "Hamm", "Ulms", "xxxx"):
            for k in (0, 1, 2, 3):
                assert (
                    trie_similarity_search(plain, query, k)
                    == trie_similarity_search(compressed, query, k)
                )


class TestPruning:
    def test_stats_are_populated(self):
        trie = PrefixTrie(CITY_SAMPLE)
        stats = TraversalStats()
        trie_similarity_search(trie, "Bern", 1, stats=stats)
        assert stats.nodes_visited >= 1
        assert stats.symbols_processed >= 4
        assert stats.matches == len(
            trie_similarity_search(trie, "Bern", 1)
        )

    def test_length_pruning_cuts_branches(self):
        # A long-only branch must be pruned for a short query.
        trie = PrefixTrie(["x" * 30, "ab"])
        stats = TraversalStats()
        trie_similarity_search(trie, "ab", 1, stats=stats)
        assert stats.branches_pruned_by_length >= 1
        # The long branch must not be walked to its end.
        assert stats.symbols_processed < 30

    def test_frequency_pruning_cuts_branches(self):
        trie = PrefixTrie(["AAAAAAA", "TTTTTTT"], tracked_symbols="AT",
                          case_insensitive_frequencies=False)
        stats = TraversalStats()
        matches = trie_similarity_search(trie, "AAAAAAA", 2, stats=stats)
        assert [m.string for m in matches] == ["AAAAAAA"]
        assert stats.branches_pruned_by_frequency >= 1

    def test_frequency_pruning_can_be_disabled(self):
        trie = PrefixTrie(["AAAAAAA", "TTTTTTT"], tracked_symbols="AT",
                          case_insensitive_frequencies=False)
        with_stats = TraversalStats()
        without_stats = TraversalStats()
        with_result = trie_similarity_search(
            trie, "AAAAAAA", 2, stats=with_stats
        )
        without_result = trie_similarity_search(
            trie, "AAAAAAA", 2, use_frequency_pruning=False,
            stats=without_stats,
        )
        assert with_result == without_result
        assert without_stats.branches_pruned_by_frequency == 0

    def test_pruning_never_loses_matches(self):
        # Brute-force cross-check on a deliberately prune-heavy trie.
        strings = ["a" * n for n in range(1, 12)] + ["b" * 6, "ab" * 3]
        trie = PrefixTrie(strings, tracked_symbols="ab")
        for query in ("aaa", "bbbbbb", "ababab", ""):
            for k in (0, 1, 2, 3):
                expected = sorted(
                    {s for s in strings if edit_distance(query, s) <= k}
                )
                actual = [
                    m.string
                    for m in trie_similarity_search(trie, query, k)
                ]
                assert actual == expected, (query, k)


class TestBandCorrectness:
    def test_threshold_larger_than_strings(self):
        trie = PrefixTrie(["ab", "cd"])
        matches = trie_similarity_search(trie, "x", 10)
        assert [m.string for m in matches] == ["ab", "cd"]

    def test_query_longer_than_everything(self):
        trie = PrefixTrie(["ab"])
        assert trie_similarity_search(trie, "a" * 20, 3) == []

    def test_deep_trie_beyond_band(self):
        trie = PrefixTrie(["abcdefghij"])
        matches = trie_similarity_search(trie, "abcdefghij", 0)
        assert len(matches) == 1
