"""Unit tests for the suffix-array substrate."""

import pytest

from repro.distance.levenshtein import edit_distance
from repro.index.suffix_array import SuffixArray, _partition


class TestConstruction:
    def test_banana(self):
        sa = SuffixArray("banana")
        # Classic result: suffixes sorted are a, ana, anana, banana,
        # na, nana -> start positions 5, 3, 1, 0, 4, 2.
        assert sa.array == [5, 3, 1, 0, 4, 2]

    def test_empty_text(self):
        sa = SuffixArray("")
        assert len(sa) == 0
        assert sa.find_occurrences("a") == []

    def test_single_symbol(self):
        assert SuffixArray("x").array == [0]

    def test_repeated_symbol(self):
        assert SuffixArray("aaaa").array == [3, 2, 1, 0]

    def test_array_is_a_permutation(self):
        text = "mississippi"
        sa = SuffixArray(text)
        assert sorted(sa.array) == list(range(len(text)))

    def test_array_is_sorted_by_suffix(self):
        text = "mississippi"
        sa = SuffixArray(text)
        suffixes = [text[i:] for i in sa.array]
        assert suffixes == sorted(suffixes)


class TestExactSearch:
    def test_find_occurrences(self):
        sa = SuffixArray("banana")
        assert sa.find_occurrences("ana") == [1, 3]
        assert sa.find_occurrences("banana") == [0]
        assert sa.find_occurrences("nab") == []

    def test_contains(self):
        sa = SuffixArray("mississippi")
        assert sa.contains("ssis")
        assert not sa.contains("ssx")
        assert sa.contains("")

    def test_empty_pattern_matches_everywhere(self):
        sa = SuffixArray("abc")
        assert sa.find_occurrences("") == [0, 1, 2]

    def test_pattern_longer_than_text(self):
        sa = SuffixArray("ab")
        assert sa.find_occurrences("abc") == []

    def test_matches_str_find_semantics(self):
        text = "abracadabra"
        sa = SuffixArray(text)
        for pattern in ("a", "abra", "cad", "zz", "ra"):
            naive = [
                i for i in range(len(text) - len(pattern) + 1)
                if text.startswith(pattern, i)
            ]
            assert sa.find_occurrences(pattern) == naive


class TestApproximateSearch:
    def test_exact_hit_at_k_zero(self):
        sa = SuffixArray("GATTACAGATTACA")
        hits = sa.approximate_occurrences("GATTACA", 0)
        assert [h.start for h in hits] == [0, 7]
        assert all(h.distance == 0 for h in hits)

    def test_one_error_hit(self):
        sa = SuffixArray("xxGATTACAxx")
        hits = sa.approximate_occurrences("GATTCCA", 1)
        assert any(h.distance == 1 for h in hits)

    def test_hits_are_verified(self):
        text = "abcabcabcabc"
        sa = SuffixArray(text)
        for hit in sa.approximate_occurrences("abcb", 1):
            assert edit_distance("abcb", text[hit.start:hit.end]) == \
                hit.distance <= 1

    def test_degenerate_pattern_shorter_than_k(self):
        sa = SuffixArray("abab")
        hits = sa.approximate_occurrences("a", 2)
        # Every start offers some window within distance 2.
        assert [h.start for h in hits] == list(range(5))

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            SuffixArray("abc").approximate_occurrences("", 1)

    def test_hit_length_property(self):
        sa = SuffixArray("GATTACA")
        (hit,) = [h for h in sa.approximate_occurrences("GATT", 0)]
        assert hit.length == 4


class TestPartition:
    def test_even_split(self):
        assert _partition("abcdef", 2) == [(0, "abc"), (3, "def")]

    def test_uneven_split_front_loads_remainder(self):
        assert _partition("abcde", 2) == [(0, "abc"), (3, "de")]

    def test_more_pieces_than_symbols(self):
        pieces = _partition("ab", 5)
        assert len(pieces) == 2
        assert "".join(piece for _, piece in pieces) == "ab"

    def test_offsets_tile_the_pattern(self):
        pattern = "abcdefghij"
        for count in (1, 2, 3, 4):
            pieces = _partition(pattern, count)
            rebuilt = "".join(piece for _, piece in pieces)
            assert rebuilt == pattern
            offset = 0
            for piece_offset, piece in pieces:
                assert piece_offset == offset
                offset += len(piece)
