"""Unit tests for error-tolerant autocompletion."""

import pytest

from repro.distance.levenshtein import edit_distance
from repro.exceptions import InvalidThresholdError
from repro.index.autocomplete import Completion, autocomplete
from repro.index.compressed import CompressedTrie
from repro.index.trie import PrefixTrie

NAMES = ["Magdeburg", "Marburg", "Hamburg", "Hamm", "Magda", "Ulm"]


def brute_force(data, query, k):
    scored = {}
    for string in set(data):
        best = min(
            edit_distance(query, string[:i])
            for i in range(len(string) + 1)
        )
        if best <= k:
            scored[string] = best
    return sorted(scored.items(), key=lambda item: (item[1], item[0]))


class TestAutocomplete:
    def test_plain_prefix_match(self):
        trie = PrefixTrie(NAMES)
        strings = [c.string for c in autocomplete(trie, "Mag", 0)]
        assert strings == ["Magda", "Magdeburg"]

    def test_typo_in_prefix(self):
        trie = PrefixTrie(NAMES)
        completions = autocomplete(trie, "Mxg", 1)
        assert {c.string for c in completions} == {"Magda", "Magdeburg"}
        assert all(c.prefix_distance == 1 for c in completions)

    def test_empty_query_completes_everything(self):
        trie = PrefixTrie(NAMES)
        completions = autocomplete(trie, "", 0, limit=None)
        assert {c.string for c in completions} == set(NAMES)
        assert all(c.prefix_distance == 0 for c in completions)

    def test_equals_brute_force(self):
        trie = PrefixTrie(NAMES)
        for query in ("Ham", "Hxm", "Magde", "Ulmx", "zz", ""):
            for k in (0, 1, 2):
                expected = brute_force(NAMES, query, k)
                actual = [
                    (c.string, c.prefix_distance)
                    for c in autocomplete(trie, query, k, limit=None)
                ]
                assert actual == expected, (query, k)

    def test_compressed_trie_agrees(self):
        plain = PrefixTrie(NAMES)
        compressed = CompressedTrie(NAMES)
        for query in ("Mar", "Hxmb", "M"):
            assert autocomplete(plain, query, 1, limit=None) == \
                autocomplete(compressed, query, 1, limit=None)

    def test_limit_keeps_best(self):
        trie = PrefixTrie(NAMES)
        completions = autocomplete(trie, "Ma", 1, limit=2)
        assert len(completions) == 2
        # Distance-0 completions (Ma... prefixes) must win the cut.
        assert all(c.prefix_distance == 0 for c in completions)

    def test_multiplicity_reported(self):
        trie = PrefixTrie(["Ulm", "Ulm"])
        (completion,) = autocomplete(trie, "Ul", 0)
        assert completion.multiplicity == 2

    def test_invalid_inputs(self):
        trie = PrefixTrie(NAMES)
        with pytest.raises(InvalidThresholdError):
            autocomplete(trie, "x", -1)
        with pytest.raises(ValueError):
            autocomplete(trie, "x", 1, limit=0)

    def test_no_completions(self):
        trie = PrefixTrie(NAMES)
        assert autocomplete(trie, "zzzz", 1) == []

    def test_query_longer_than_any_string(self):
        trie = PrefixTrie(["ab"])
        # ed("abxx", "ab") = 2: the whole string is the best prefix.
        (completion,) = autocomplete(trie, "abxx", 2)
        assert completion.string == "ab"
        assert completion.prefix_distance == 2
