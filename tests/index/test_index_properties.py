"""Property-based tests: every index equals the brute-force answer.

This is the paper's central correctness invariant, hypothesis-driven:
for any dataset, query and threshold, the trie, the compressed trie and
the q-gram index return exactly the strings the full-matrix scan finds.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.levenshtein import edit_distance
from repro.index.compressed import CompressedTrie
from repro.index.qgram_index import QGramIndex
from repro.index.suffix_array import SuffixArray
from repro.index.traversal import trie_similarity_search
from repro.index.trie import PrefixTrie

datasets = st.lists(
    st.text(alphabet="abc", min_size=1, max_size=8),
    min_size=1, max_size=12,
)
queries = st.text(alphabet="abcd", max_size=8)
thresholds = st.integers(min_value=0, max_value=4)


def brute_force(dataset, query, k):
    return sorted({s for s in dataset if edit_distance(query, s) <= k})


class TestSearchEquivalence:
    @settings(max_examples=80)
    @given(datasets, queries, thresholds)
    def test_trie_equals_brute_force(self, dataset, query, k):
        trie = PrefixTrie(dataset)
        actual = [m.string for m in trie_similarity_search(trie, query, k)]
        assert actual == brute_force(dataset, query, k)

    @settings(max_examples=80)
    @given(datasets, queries, thresholds)
    def test_compressed_equals_brute_force(self, dataset, query, k):
        compressed = CompressedTrie(dataset)
        actual = [
            m.string for m in trie_similarity_search(compressed, query, k)
        ]
        assert actual == brute_force(dataset, query, k)

    @settings(max_examples=80)
    @given(datasets, queries, thresholds)
    def test_frequency_pruned_trie_equals_brute_force(self, dataset,
                                                      query, k):
        trie = PrefixTrie(dataset, tracked_symbols="abc",
                          case_insensitive_frequencies=False)
        actual = [m.string for m in trie_similarity_search(trie, query, k)]
        assert actual == brute_force(dataset, query, k)

    @settings(max_examples=80)
    @given(datasets, queries, thresholds)
    def test_qgram_index_equals_brute_force(self, dataset, query, k):
        index = QGramIndex(dataset, q=2)
        assert index.search_strings(query, k) == \
            brute_force(dataset, query, k)

    @settings(max_examples=60)
    @given(datasets, queries, thresholds)
    def test_matches_report_exact_distances(self, dataset, query, k):
        trie = PrefixTrie(dataset)
        for match in trie_similarity_search(trie, query, k):
            assert match.distance == edit_distance(query, match.string)
            assert match.multiplicity == dataset.count(match.string)


class TestTrieSetSemantics:
    @settings(max_examples=80)
    @given(datasets)
    def test_enumeration_matches_input_set(self, dataset):
        assert list(PrefixTrie(dataset)) == sorted(set(dataset))
        assert list(CompressedTrie(dataset)) == sorted(set(dataset))

    @settings(max_examples=80)
    @given(datasets)
    def test_compression_preserves_counts(self, dataset):
        compressed = CompressedTrie(dataset)
        for string in set(dataset):
            assert compressed.count(string) == dataset.count(string)

    @settings(max_examples=60)
    @given(datasets, st.text(alphabet="abc", min_size=1, max_size=8))
    def test_membership_agrees(self, dataset, probe):
        plain = PrefixTrie(dataset)
        compressed = CompressedTrie(dataset)
        assert (probe in plain) == (probe in dataset)
        assert (probe in compressed) == (probe in dataset)


class TestSuffixArrayProperties:
    @settings(max_examples=60)
    @given(st.text(alphabet="ab", max_size=30),
           st.text(alphabet="ab", min_size=1, max_size=4))
    def test_exact_occurrences_match_naive(self, text, pattern):
        sa = SuffixArray(text)
        naive = [
            i for i in range(len(text) - len(pattern) + 1)
            if text.startswith(pattern, i)
        ]
        assert sa.find_occurrences(pattern) == naive

    @settings(max_examples=40)
    @given(st.text(alphabet="ab", min_size=4, max_size=24),
           st.text(alphabet="ab", min_size=2, max_size=5),
           st.integers(min_value=0, max_value=2))
    def test_approximate_hits_complete_and_sound(self, text, pattern, k):
        sa = SuffixArray(text)
        hits = {h.start: h for h in sa.approximate_occurrences(pattern, k)}
        m = len(pattern)
        for start in range(len(text) + 1):
            best = None
            for length in range(max(0, m - k), m + k + 1):
                if start + length > len(text):
                    break
                distance = edit_distance(pattern, text[start:start + length])
                if distance <= k and (best is None or distance < best):
                    best = distance
            if best is None:
                assert start not in hits
            else:
                assert start in hits
                assert hits[start].distance == best
