"""Unit tests for the compiled flat-array trie."""

import pytest

from repro.data.alphabet import Alphabet
from repro.distance.levenshtein import edit_distance
from repro.exceptions import InvalidThresholdError
from repro.index.compressed import CompressedTrie
from repro.index.flat import FlatTrie, flat_similarity_search
from repro.index.traversal import TraversalStats, trie_similarity_search
from repro.index.trie import PrefixTrie

CITY_SAMPLE = ["Berlin", "Bern", "Ulm", "Bergen", "Hamburg", "Hamm"]
DNA_SAMPLE = ["ACGTACGT", "ACGTTTTT", "TTTTACGT", "ACGNACGN"]


class TestConstruction:
    def test_freezes_compressed_trie_by_default(self):
        flat = FlatTrie(CITY_SAMPLE)
        reference = CompressedTrie(CITY_SAMPLE)
        assert flat.node_count == reference.node_count

    def test_freezes_plain_trie_when_uncompressed(self):
        flat = FlatTrie(CITY_SAMPLE, compress=False)
        reference = PrefixTrie(CITY_SAMPLE)
        assert flat.node_count == reference.node_count

    def test_from_trie_reuses_an_existing_structure(self):
        trie = CompressedTrie(CITY_SAMPLE)
        flat = FlatTrie.from_trie(trie)
        assert flat.node_count == trie.node_count
        assert list(flat) == list(trie)

    def test_enumeration_is_sorted_and_distinct(self):
        flat = FlatTrie(["Ulm", "Bern", "Ulm", "Aachen"])
        assert list(flat) == ["Aachen", "Bern", "Ulm"]
        # len counts multiplicities, like the object tries it freezes.
        assert len(flat) == 4
        assert flat.string_count == 4

    def test_duplicates_become_multiplicities(self):
        flat = FlatTrie(["Ulm", "Ulm", "Bern"])
        assert dict(flat.iter_with_counts()) == {"Ulm": 2, "Bern": 1}
        assert flat.count("Ulm") == 2
        assert flat.count("Bonn") == 0

    def test_membership(self):
        flat = FlatTrie(CITY_SAMPLE)
        assert "Berlin" in flat
        assert "Berli" not in flat
        assert "Berlins" not in flat

    def test_empty_corpus(self):
        flat = FlatTrie([])
        assert len(flat) == 0
        assert "anything" not in flat
        assert flat_similarity_search(flat, "anything", 3) == []

    def test_alphabet_inferred_from_labels(self):
        flat = FlatTrie(DNA_SAMPLE)
        assert flat.alphabet is not None
        assert set("ACGNT") <= set(flat.alphabet.symbols)

    def test_explicit_alphabet_accepted(self):
        alphabet = Alphabet("dna", "ACGNT")
        flat = FlatTrie(DNA_SAMPLE, alphabet=alphabet)
        assert flat.alphabet is alphabet

    def test_describe_reports_layout(self):
        description = FlatTrie(CITY_SAMPLE).describe()
        assert description["nodes"] == flat_node_count(CITY_SAMPLE)
        assert description["strings"] == len(set(CITY_SAMPLE))

    def test_repr_is_informative(self):
        assert "FlatTrie" in repr(FlatTrie(CITY_SAMPLE))


def flat_node_count(strings):
    return CompressedTrie(strings).node_count


class TestQueryEncoding:
    def test_known_symbols_encode_densely(self):
        flat = FlatTrie(DNA_SAMPLE)
        encoded = flat.encode_query("ACGT")
        assert len(encoded) == 4
        assert all(code >= 0 for code in encoded)

    def test_out_of_alphabet_symbols_become_sentinels(self):
        flat = FlatTrie(DNA_SAMPLE)
        encoded = flat.encode_query("AXGT")
        assert encoded[1] == -1
        assert encoded[0] >= 0

    def test_stranger_symbols_still_search_correctly(self):
        flat = FlatTrie(DNA_SAMPLE)
        matches = flat_similarity_search(flat, "XCGTACGT", 1)
        assert [m.string for m in matches] == ["ACGTACGT"]


class TestSearch:
    def test_exact_match_at_k_zero(self):
        flat = FlatTrie(CITY_SAMPLE)
        matches = flat_similarity_search(flat, "Bern", 0)
        assert [m.string for m in matches] == ["Bern"]
        assert matches[0].distance == 0

    def test_fuzzy_query_matches_object_traversal(self):
        flat = FlatTrie(CITY_SAMPLE)
        trie = CompressedTrie(CITY_SAMPLE)
        for query in ("Berlino", "Hamm", "Ulms", "xxxx", ""):
            for k in (0, 1, 2, 3):
                assert (
                    flat_similarity_search(flat, query, k)
                    == trie_similarity_search(trie, query, k)
                ), (query, k)

    def test_uncompressed_matches_object_traversal(self):
        flat = FlatTrie(CITY_SAMPLE, compress=False)
        trie = PrefixTrie(CITY_SAMPLE)
        for query in ("Berlino", "Bergen", ""):
            for k in (0, 2):
                assert (
                    flat_similarity_search(flat, query, k)
                    == trie_similarity_search(trie, query, k)
                )

    def test_distances_are_exact(self):
        flat = FlatTrie(CITY_SAMPLE)
        for match in flat_similarity_search(flat, "Hamburh", 3):
            assert match.distance == edit_distance("Hamburh", match.string)

    def test_multiplicity_reported(self):
        flat = FlatTrie(["Ulm", "Ulm", "Bern"])
        (match,) = flat_similarity_search(flat, "Ulm", 0)
        assert match.multiplicity == 2

    def test_empty_query(self):
        flat = FlatTrie(["a", "ab", "abc"])
        matches = flat_similarity_search(flat, "", 2)
        assert [m.string for m in matches] == ["a", "ab"]

    def test_invalid_threshold(self):
        with pytest.raises(InvalidThresholdError):
            flat_similarity_search(FlatTrie(["a"]), "a", -1)

    def test_row_bank_reuse_keeps_results_stable(self):
        flat = FlatTrie(CITY_SAMPLE)
        bank = []
        first = flat_similarity_search(flat, "Berlino", 2, row_bank=bank)
        assert bank  # rows were parked for reuse
        second = flat_similarity_search(flat, "Hamm", 3, row_bank=bank)
        third = flat_similarity_search(flat, "Berlino", 2, row_bank=bank)
        assert first == third
        assert second == flat_similarity_search(flat, "Hamm", 3)


class TestStatsParity:
    """The flat traversal must do *exactly* the object traversal's work.

    Identical results are necessary but not sufficient — the point of
    the flat layout is to run the same algorithm faster, so every
    counter must match on the same topology.
    """

    def _parity(self, strings, queries, ks, *, tracked=None,
                frequency=False):
        flat = FlatTrie(strings, tracked_symbols=tracked,
                        case_insensitive_frequencies=False)
        trie = CompressedTrie(strings, tracked_symbols=tracked,
                              case_insensitive_frequencies=False)
        for query in queries:
            for k in ks:
                flat_stats = TraversalStats()
                trie_stats = TraversalStats()
                flat_matches = flat_similarity_search(
                    flat, query, k, stats=flat_stats,
                    use_frequency_pruning=frequency,
                )
                trie_matches = trie_similarity_search(
                    trie, query, k, stats=trie_stats,
                    use_frequency_pruning=frequency,
                )
                assert flat_matches == trie_matches, (query, k)
                assert vars(flat_stats) == vars(trie_stats), (query, k)

    def test_city_fixture(self):
        self._parity(CITY_SAMPLE,
                     ["Bern", "Berlino", "Hamm", "zzz", ""],
                     (0, 1, 2, 3))

    def test_dna_fixture(self):
        self._parity(DNA_SAMPLE,
                     ["ACGTACGT", "ACGT", "TTTT", "XXXXXXXX"],
                     (0, 2, 4))

    def test_frequency_pruning_parity(self):
        self._parity(["AAAAAAA", "TTTTTTT", "ATATATA"],
                     ["AAAAAAA", "TTTTTTT"], (0, 2),
                     tracked="AT", frequency=True)

    def test_length_pruning_counted_identically(self):
        strings = ["x" * 30, "ab"]
        flat = FlatTrie(strings)
        stats = TraversalStats()
        flat_similarity_search(flat, "ab", 1, stats=stats)
        assert stats.branches_pruned_by_length >= 1
        assert stats.symbols_processed < 30

    def test_frequency_pruning_cuts_branches(self):
        flat = FlatTrie(["AAAAAAA", "TTTTTTT"], tracked_symbols="AT",
                        case_insensitive_frequencies=False)
        assert flat.has_frequencies
        stats = TraversalStats()
        matches = flat_similarity_search(flat, "AAAAAAA", 2, stats=stats)
        assert [m.string for m in matches] == ["AAAAAAA"]
        assert stats.branches_pruned_by_frequency >= 1
