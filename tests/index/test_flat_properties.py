"""Property-based tests: the compiled trie is the object trie, faster.

Three-way equivalence under hypothesis on both of the paper's alphabet
regimes: for any dataset, query and threshold, the flat traversal
returns exactly what the brute-force reference and the object-trie
traversal return — with query alphabets deliberately larger than the
dataset's, so out-of-alphabet symbols (encoded as ``-1`` sentinels)
are exercised throughout. A dedicated property pins the work counters,
not just the results: freezing must never change how much the
algorithm does.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.levenshtein import edit_distance
from repro.index.compressed import CompressedTrie
from repro.index.flat import FlatTrie, flat_similarity_search
from repro.index.traversal import TraversalStats, trie_similarity_search
from repro.index.trie import PrefixTrie

# City-like: short strings, query alphabet exceeds the dataset's.
city_datasets = st.lists(
    st.text(alphabet="abc", min_size=1, max_size=8),
    min_size=0, max_size=12,
)
city_queries = st.text(alphabet="abcd", max_size=8)

# DNA-like: longer strings over the competition's five symbols, with
# 'X' as the guaranteed stranger in queries.
dna_datasets = st.lists(
    st.text(alphabet="ACGNT", min_size=4, max_size=20),
    min_size=0, max_size=8,
)
dna_queries = st.text(alphabet="ACGNTX", max_size=20)

thresholds = st.integers(min_value=0, max_value=4)


def brute_force(dataset, query, k):
    return sorted({s for s in dataset if edit_distance(query, s) <= k})


class TestThreeWayEquivalence:
    @settings(max_examples=80)
    @given(city_datasets, city_queries, thresholds)
    def test_city_alphabet(self, dataset, query, k):
        flat = FlatTrie(dataset)
        actual = [m.string for m in flat_similarity_search(flat, query, k)]
        assert actual == brute_force(dataset, query, k)

    @settings(max_examples=60)
    @given(dna_datasets, dna_queries, thresholds)
    def test_dna_alphabet(self, dataset, query, k):
        flat = FlatTrie(dataset)
        actual = [m.string for m in flat_similarity_search(flat, query, k)]
        assert actual == brute_force(dataset, query, k)

    @settings(max_examples=60)
    @given(city_datasets, city_queries, thresholds)
    def test_uncompressed_equals_prefix_trie(self, dataset, query, k):
        flat = FlatTrie(dataset, compress=False)
        trie = PrefixTrie(dataset)
        assert (
            flat_similarity_search(flat, query, k)
            == trie_similarity_search(trie, query, k)
        )

    @settings(max_examples=60)
    @given(city_datasets, city_queries)
    def test_exact_lookup_at_k_zero(self, dataset, query):
        flat = FlatTrie(dataset)
        matches = flat_similarity_search(flat, query, 0)
        if query in dataset:
            assert [m.string for m in matches] == [query]
            assert (query in flat) and flat.count(query) == \
                dataset.count(query)
        else:
            assert matches == []
            assert query not in flat

    @settings(max_examples=60)
    @given(city_datasets, city_queries, thresholds)
    def test_duplicates_collapse_into_multiplicities(self, dataset,
                                                     query, k):
        doubled = dataset + dataset
        flat = FlatTrie(doubled)
        for match in flat_similarity_search(flat, query, k):
            assert match.multiplicity == doubled.count(match.string)

    @settings(max_examples=40)
    @given(dna_datasets, dna_queries, thresholds)
    def test_frequency_pruning_never_changes_results(self, dataset,
                                                     query, k):
        flat = FlatTrie(dataset, tracked_symbols="ACGNT",
                        case_insensitive_frequencies=False)
        pruned = flat_similarity_search(flat, query, k)
        unpruned = flat_similarity_search(flat, query, k,
                                          use_frequency_pruning=False)
        assert pruned == unpruned
        assert [m.string for m in pruned] == brute_force(dataset, query, k)


class TestStatsParity:
    @settings(max_examples=60)
    @given(city_datasets, city_queries, thresholds)
    def test_city_counters_match_object_traversal(self, dataset, query, k):
        flat = FlatTrie(dataset)
        trie = CompressedTrie(dataset)
        flat_stats, trie_stats = TraversalStats(), TraversalStats()
        flat_matches = flat_similarity_search(flat, query, k,
                                              stats=flat_stats)
        trie_matches = trie_similarity_search(trie, query, k,
                                              stats=trie_stats)
        assert flat_matches == trie_matches
        assert vars(flat_stats) == vars(trie_stats)

    @settings(max_examples=40)
    @given(dna_datasets, dna_queries, thresholds)
    def test_dna_counters_match_with_frequency_pruning(self, dataset,
                                                       query, k):
        flat = FlatTrie(dataset, tracked_symbols="ACGNT",
                        case_insensitive_frequencies=False)
        trie = CompressedTrie(dataset, tracked_symbols="ACGNT",
                              case_insensitive_frequencies=False)
        flat_stats, trie_stats = TraversalStats(), TraversalStats()
        flat_matches = flat_similarity_search(flat, query, k,
                                              stats=flat_stats)
        trie_matches = trie_similarity_search(trie, query, k,
                                              stats=trie_stats)
        assert flat_matches == trie_matches
        assert vars(flat_stats) == vars(trie_stats)
