"""Property tests: autocomplete equals its brute-force definition."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.levenshtein import edit_distance
from repro.index.autocomplete import autocomplete
from repro.index.compressed import CompressedTrie
from repro.index.trie import PrefixTrie

datasets = st.lists(
    st.text(alphabet="abc", min_size=1, max_size=7),
    min_size=1, max_size=10,
)
queries = st.text(alphabet="abcd", max_size=6)
thresholds = st.integers(min_value=0, max_value=2)


def brute_force(dataset, query, k):
    scored = {}
    for string in set(dataset):
        best = min(
            edit_distance(query, string[:i])
            for i in range(len(string) + 1)
        )
        if best <= k:
            scored[string] = best
    return sorted(scored.items(), key=lambda item: (item[1], item[0]))


@settings(max_examples=80)
@given(datasets, queries, thresholds)
def test_autocomplete_equals_brute_force(dataset, query, k):
    trie = PrefixTrie(dataset)
    actual = [
        (c.string, c.prefix_distance)
        for c in autocomplete(trie, query, k, limit=None)
    ]
    assert actual == brute_force(dataset, query, k)


@settings(max_examples=60)
@given(datasets, queries, thresholds)
def test_compression_invariant(dataset, query, k):
    plain = PrefixTrie(dataset)
    compressed = CompressedTrie(dataset)
    assert autocomplete(plain, query, k, limit=None) == \
        autocomplete(compressed, query, k, limit=None)


@settings(max_examples=60)
@given(datasets, queries, thresholds,
       st.integers(min_value=1, max_value=5))
def test_limit_is_a_prefix_of_the_full_ranking(dataset, query, k, limit):
    trie = PrefixTrie(dataset)
    full = autocomplete(trie, query, k, limit=None)
    trimmed = autocomplete(trie, query, k, limit=limit)
    assert trimmed == full[:limit]


@settings(max_examples=60)
@given(datasets, queries)
def test_threshold_monotonicity(dataset, query):
    # Raising k never loses completions.
    trie = PrefixTrie(dataset)
    small = {c.string for c in autocomplete(trie, query, 0, limit=None)}
    large = {c.string for c in autocomplete(trie, query, 2, limit=None)}
    assert small <= large
