"""Unit tests for the radix-compressed trie."""

from repro.index.compressed import CompressedTrie
from repro.index.trie import PrefixTrie


class TestCompression:
    def test_paper_figure_4_halves_node_count(self):
        # The paper's example: Berlin, Bern, Ulm compress from 11 to
        # about half the nodes (root + "Ber" + "lin" + "n" + "Ulm").
        plain = PrefixTrie(["Berlin", "Bern", "Ulm"])
        compressed = CompressedTrie(["Berlin", "Bern", "Ulm"])
        assert plain.node_count == 11
        assert compressed.node_count == 5

    def test_string_set_preserved(self):
        strings = ["Berlin", "Bern", "Ulm", "Bergen", "Ulm"]
        assert sorted(CompressedTrie(strings)) == sorted(set(strings))

    def test_counts_preserved(self):
        compressed = CompressedTrie(["Ulm", "Ulm", "Bern"])
        assert compressed.count("Ulm") == 2
        assert compressed.count("Bern") == 1
        assert compressed.string_count == 3

    def test_from_existing_trie(self):
        trie = PrefixTrie(["Berlin", "Bern", "Ulm"])
        compressed = CompressedTrie.from_trie(trie)
        assert sorted(compressed) == sorted(trie)
        assert compressed.node_count <= trie.node_count

    def test_single_string_collapses_to_one_edge(self):
        compressed = CompressedTrie(["abcdefgh"])
        assert compressed.node_count == 2  # root + one merged node

    def test_terminal_in_the_middle_stays_a_boundary(self):
        # "Bern" ends inside the chain leading to "Berner": the chain
        # must split at the terminal.
        compressed = CompressedTrie(["Bern", "Berner"])
        assert "Bern" in compressed
        assert "Berner" in compressed
        assert "Berne" not in compressed

    def test_never_more_nodes_than_plain(self):
        strings = ["a", "ab", "abc", "b", "ba", "bab", "xyz"]
        plain = PrefixTrie(strings)
        compressed = CompressedTrie(strings)
        assert compressed.node_count <= plain.node_count

    def test_empty_trie(self):
        compressed = CompressedTrie([])
        assert len(compressed) == 0
        assert list(compressed) == []


class TestMembership:
    def test_contains(self):
        compressed = CompressedTrie(["Berlin", "Bern", "Ulm"])
        assert "Berlin" in compressed
        assert "Bern" in compressed
        assert "Ulm" in compressed

    def test_prefix_inside_merged_label_is_not_member(self):
        compressed = CompressedTrie(["Berlin"])
        assert "Ber" not in compressed
        assert "Berli" not in compressed

    def test_divergence_inside_label(self):
        compressed = CompressedTrie(["Berlin"])
        assert "Berlxn" not in compressed

    def test_extension_not_member(self):
        compressed = CompressedTrie(["Ulm"])
        assert "Ulmer" not in compressed


class TestAnnotations:
    def test_length_bounds_survive_compression(self):
        plain = PrefixTrie(["Berlin", "Bern", "Ulm"])
        compressed = CompressedTrie(["Berlin", "Bern", "Ulm"])
        plain_b = plain.root.children["B"]
        compressed_b = compressed.root.children["B"]
        assert compressed_b.subtree_min_length == \
            plain_b.subtree_min_length
        assert compressed_b.subtree_max_length == \
            plain_b.subtree_max_length

    def test_frequency_bounds_survive_compression(self):
        compressed = CompressedTrie(
            ["AA", "AT"], tracked_symbols="AT",
            case_insensitive_frequencies=False,
        )
        assert compressed.root.freq_min == [1, 0]
        assert compressed.root.freq_max == [2, 1]

    def test_merged_label_content(self):
        compressed = CompressedTrie(["Berlin", "Bern", "Ulm"])
        assert compressed.root.children["B"].label == "Ber"
        assert compressed.root.children["U"].label == "Ulm"
