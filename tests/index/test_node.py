"""Unit tests for trie nodes."""

from repro.index.node import TrieNode


class TestTrieNode:
    def test_fresh_node_defaults(self):
        node = TrieNode("x")
        assert node.label == "x"
        assert not node.is_terminal
        assert node.is_leaf
        assert node.terminal_count == 0
        assert node.freq_min is None

    def test_observe_string_updates_length_bounds(self):
        node = TrieNode()
        node.observe_string(5, None)
        node.observe_string(3, None)
        node.observe_string(9, None)
        assert node.subtree_min_length == 3
        assert node.subtree_max_length == 9

    def test_observe_string_updates_frequency_box(self):
        node = TrieNode()
        node.observe_string(4, (1, 2))
        node.observe_string(4, (3, 0))
        assert node.freq_min == [1, 0]
        assert node.freq_max == [3, 2]

    def test_node_count_counts_subtree(self):
        root = TrieNode()
        child_a = TrieNode("a")
        child_b = TrieNode("b")
        grandchild = TrieNode("c")
        root.children["a"] = child_a
        root.children["b"] = child_b
        child_a.children["c"] = grandchild
        assert root.node_count() == 4
        assert child_a.node_count() == 2

    def test_repr_is_informative(self):
        node = TrieNode("q")
        node.terminal_count = 2
        text = repr(node)
        assert "q" in text and "2" in text
