"""Unit tests for the inverted q-gram index."""

import pytest

from repro.distance.levenshtein import edit_distance
from repro.index.qgram_index import QGramIndex


class TestConstruction:
    def test_counts(self):
        index = QGramIndex(["Berlin", "Bern", "Ulm", "Bern"], q=2)
        assert index.string_count == 4
        assert index.distinct_count == 3
        assert index.q == 2

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            QGramIndex(["a"], q=0)

    def test_posting_lists(self):
        index = QGramIndex(["Bern", "Berlin"], q=2)
        assert len(index.posting_list("Be")) == 2
        assert len(index.posting_list("rn")) == 1
        assert index.posting_list("zz") == ()

    def test_gram_count(self):
        index = QGramIndex(["abc"], q=2)
        assert index.gram_count == 2  # "ab", "bc"


class TestSearch:
    def test_exact_search(self):
        index = QGramIndex(["Berlin", "Bern", "Ulm"], q=2)
        assert index.search_strings("Bern", 0) == ["Bern"]

    def test_fuzzy_search(self):
        index = QGramIndex(["Berlin", "Bern", "Ulm"], q=2)
        assert index.search_strings("Berlino", 2) == ["Berlin"]
        assert index.search_strings("Berlino", 3) == ["Berlin", "Bern"]

    def test_strings_shorter_than_q_are_findable(self):
        # A one-symbol string has no bigrams; only the length side
        # table can reach it.
        index = QGramIndex(["a", "ab", "Berlin"], q=2)
        assert index.search_strings("a", 1) == ["a", "ab"]

    def test_query_shorter_than_q(self):
        index = QGramIndex(["ab", "cd", "abcd"], q=3)
        assert index.search_strings("ab", 1) == ["ab"] or \
            "ab" in index.search_strings("ab", 1)

    def test_multiplicity_in_matches(self):
        index = QGramIndex(["Ulm", "Ulm"], q=2)
        (match,) = index.search("Ulm", 0)
        assert match.multiplicity == 2

    def test_distances_exact(self):
        index = QGramIndex(["Berlin", "Bern", "Bergen"], q=2)
        for match in index.search("Berln", 2):
            assert match.distance == edit_distance("Berln", match.string)

    def test_agrees_with_brute_force(self):
        strings = ["Berlin", "Bern", "Bergen", "Ulm", "Hamburg",
                   "Hamm", "a", "ab"]
        index = QGramIndex(strings, q=2)
        for query in ("Berlin", "Ham", "b", "Ulmen", "zzz"):
            for k in (0, 1, 2, 3):
                expected = sorted(
                    {s for s in strings if edit_distance(query, s) <= k}
                )
                assert index.search_strings(query, k) == expected, \
                    (query, k)

    def test_empty_results(self):
        index = QGramIndex(["Berlin"], q=2)
        assert index.search("zzzzzzzz", 1) == []
