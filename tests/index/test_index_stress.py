"""Cross-validation stress tests: every index kind on realistic data.

The per-structure unit tests use toy datasets; these run every
``IndexedSearcher`` kind against the reference scan on the session's
realistic fixtures (generated city names and DNA reads), at every
Table-I threshold that is tractable — the closest thing to running the
paper's correctness gate over the full configuration matrix.
"""

import pytest

from repro.core.indexed import INDEX_KINDS, IndexedSearcher
from repro.core.sequential import SequentialScanSearcher
from repro.core.verification import verify_result_sets


@pytest.fixture(scope="module")
def city_reference(city_names, city_workload):
    searcher = SequentialScanSearcher(city_names, kernel="reference")
    return searcher.run_workload(city_workload)


@pytest.fixture(scope="module")
def dna_reference(dna_reads, dna_workload):
    searcher = SequentialScanSearcher(dna_reads, kernel="reference")
    return searcher.run_workload(dna_workload)


@pytest.mark.parametrize("kind", INDEX_KINDS)
def test_every_kind_on_city_fixture(kind, city_names, city_workload,
                                    city_reference):
    searcher = IndexedSearcher(city_names, index=kind)
    verify_result_sets(city_reference,
                       searcher.run_workload(city_workload),
                       candidate_name=f"{kind} (cities)")


@pytest.mark.parametrize("kind", INDEX_KINDS)
def test_every_kind_on_dna_fixture(kind, dna_reads, dna_workload,
                                   dna_reference):
    searcher = IndexedSearcher(dna_reads, index=kind)
    verify_result_sets(dna_reference,
                       searcher.run_workload(dna_workload),
                       candidate_name=f"{kind} (DNA)")


@pytest.mark.parametrize("tracked,fixture_name", [
    ("AEIOU", "city"), ("ACGNT", "dna"),
])
def test_frequency_pruning_on_fixtures(tracked, fixture_name, city_names,
                                       city_workload, dna_reads,
                                       dna_workload, city_reference,
                                       dna_reference):
    if fixture_name == "city":
        dataset, workload, reference = (city_names, city_workload,
                                        city_reference)
    else:
        dataset, workload, reference = (dna_reads, dna_workload,
                                        dna_reference)
    searcher = IndexedSearcher(dataset, index="compressed",
                               frequency_pruning=True,
                               tracked_symbols=tracked)
    verify_result_sets(reference, searcher.run_workload(workload),
                       candidate_name=f"freq ({fixture_name})")


def test_all_city_thresholds(city_names):
    reference = SequentialScanSearcher(city_names, kernel="reference")
    compressed = IndexedSearcher(city_names, index="compressed")
    query = city_names[11]
    for k in (0, 1, 2, 3):
        assert compressed.search(query, k) == reference.search(query, k)


def test_all_dna_thresholds(dna_reads):
    reference = SequentialScanSearcher(dna_reads, kernel="reference")
    compressed = IndexedSearcher(dna_reads, index="compressed")
    query = dna_reads[5]
    for k in (0, 4, 8, 16):
        assert compressed.search(query, k) == reference.search(query, k)
