"""Unit tests for the Levenshtein automaton and trie intersection."""

import pytest

from repro.distance.levenshtein import edit_distance
from repro.exceptions import InvalidThresholdError
from repro.index.automaton import LevenshteinAutomaton, automaton_trie_search
from repro.index.compressed import CompressedTrie
from repro.index.traversal import TraversalStats, trie_similarity_search
from repro.index.trie import PrefixTrie


class TestAutomatonKernel:
    def test_accepts_exact_match(self):
        assert LevenshteinAutomaton("Bern", 0).accepts("Bern")

    def test_rejects_beyond_threshold(self):
        assert not LevenshteinAutomaton("Bern", 1).accepts("Berlin")

    def test_distance_reports_exact_value(self):
        automaton = LevenshteinAutomaton("AGGCGT", 2)
        assert automaton.distance("AGAGT") == 2

    def test_distance_none_when_above(self):
        assert LevenshteinAutomaton("AGGCGT", 1).distance("AGAGT") is None

    def test_empty_query(self):
        automaton = LevenshteinAutomaton("", 2)
        assert automaton.distance("") == 0
        assert automaton.distance("ab") == 2
        assert automaton.distance("abc") is None

    def test_empty_text(self):
        automaton = LevenshteinAutomaton("abc", 3)
        assert automaton.distance("") == 3

    def test_invalid_threshold(self):
        with pytest.raises(InvalidThresholdError):
            LevenshteinAutomaton("x", -1)

    def test_agrees_with_reference_on_samples(self):
        pairs = [("kitten", "sitting"), ("flaw", "lawn"),
                 ("Berlin", "Bern"), ("aaa", "bbb"), ("", "xy")]
        for x, y in pairs:
            for k in (0, 1, 2, 3):
                reference = edit_distance(x, y)
                expected = reference if reference <= k else None
                assert LevenshteinAutomaton(x, k).distance(y) == expected

    def test_stepwise_api(self):
        automaton = LevenshteinAutomaton("ab", 1)
        state = automaton.start()
        for symbol in "ab":
            state = automaton.step(state, symbol)
        assert automaton.acceptance(state) == 0

    def test_dead_state_detection(self):
        automaton = LevenshteinAutomaton("aa", 0)
        state = automaton.step(automaton.start(), "z")
        assert automaton.is_dead(state)


class TestAutomatonTrieSearch:
    DATA = ["Berlin", "Bern", "Bergen", "Ulm", "Hamburg"]

    def test_equals_dp_traversal(self):
        trie = PrefixTrie(self.DATA)
        compressed = CompressedTrie(self.DATA)
        for query in ("Bern", "Bermen", "Ul", "zzz"):
            for k in (0, 1, 2, 3):
                reference = trie_similarity_search(trie, query, k)
                assert automaton_trie_search(trie, query, k) == reference
                assert automaton_trie_search(compressed, query,
                                             k) == reference

    def test_multiplicities_preserved(self):
        trie = PrefixTrie(["Ulm", "Ulm"])
        (match,) = automaton_trie_search(trie, "Ulm", 0)
        assert match.multiplicity == 2

    def test_stats_populated(self):
        trie = PrefixTrie(self.DATA)
        stats = TraversalStats()
        automaton_trie_search(trie, "Bern", 1, stats=stats)
        assert stats.nodes_visited > 0
        assert stats.symbols_processed > 0

    def test_dead_branches_are_pruned(self):
        trie = PrefixTrie(["aaaa", "zzzz"])
        stats = TraversalStats()
        automaton_trie_search(trie, "aaaa", 1, stats=stats)
        assert stats.branches_pruned_by_length >= 1

    def test_empty_trie(self):
        assert automaton_trie_search(PrefixTrie(), "x", 2) == []
