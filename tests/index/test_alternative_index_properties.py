"""Property tests: automaton and BK-tree equal the brute-force answer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.damerau import osa_distance
from repro.distance.levenshtein import edit_distance
from repro.index.automaton import LevenshteinAutomaton, automaton_trie_search
from repro.index.bktree import BKTree
from repro.index.traversal import trie_similarity_search
from repro.index.trie import PrefixTrie

datasets = st.lists(
    st.text(alphabet="abc", min_size=1, max_size=8),
    min_size=1, max_size=12,
)
texts = st.text(alphabet="abcd", max_size=9)
thresholds = st.integers(min_value=0, max_value=3)


class TestAutomatonProperties:
    @settings(max_examples=80)
    @given(texts, texts, st.integers(min_value=0, max_value=4))
    def test_automaton_distance_equals_reference(self, x, y, k):
        reference = edit_distance(x, y)
        expected = reference if reference <= k else None
        assert LevenshteinAutomaton(x, k).distance(y) == expected

    @settings(max_examples=60)
    @given(datasets, texts, thresholds)
    def test_intersection_equals_dp_traversal(self, dataset, query, k):
        trie = PrefixTrie(dataset)
        assert automaton_trie_search(trie, query, k) == \
            trie_similarity_search(trie, query, k)


class TestBKTreeProperties:
    @settings(max_examples=60)
    @given(datasets, texts, thresholds)
    def test_bktree_equals_brute_force(self, dataset, query, k):
        tree = BKTree(dataset)
        expected = sorted(
            {s for s in dataset if edit_distance(query, s) <= k}
        )
        assert tree.search_strings(query, k) == expected

    @settings(max_examples=60)
    @given(datasets)
    def test_insertion_order_never_changes_results(self, dataset):
        forward = BKTree(dataset)
        backward = BKTree(list(reversed(dataset)))
        for query in dataset[:3]:
            assert forward.search_strings(query, 1) == \
                backward.search_strings(query, 1)


class TestOsaProperties:
    @settings(max_examples=100)
    @given(texts, texts)
    def test_osa_bounded_by_levenshtein(self, x, y):
        osa = osa_distance(x, y)
        levenshtein = edit_distance(x, y)
        # One transposition replaces at most two Levenshtein edits.
        assert levenshtein / 2 <= osa <= levenshtein

    @settings(max_examples=100)
    @given(texts, texts)
    def test_osa_symmetry(self, x, y):
        assert osa_distance(x, y) == osa_distance(y, x)

    @settings(max_examples=100)
    @given(texts)
    def test_osa_identity(self, x):
        assert osa_distance(x, x) == 0

    @settings(max_examples=100)
    @given(texts, texts)
    def test_osa_length_lower_bound(self, x, y):
        assert osa_distance(x, y) >= abs(len(x) - len(y))
