"""Unit tests for the annotated prefix trie."""

import pytest

from repro.exceptions import IndexConstructionError
from repro.index.trie import PrefixTrie


class TestConstruction:
    def test_empty_trie(self):
        trie = PrefixTrie()
        assert len(trie) == 0
        assert trie.node_count == 1  # just the root
        assert list(trie) == []

    def test_paper_figure_4_strings(self):
        trie = PrefixTrie(["Berlin", "Bern", "Ulm"])
        assert trie.string_count == 3
        # Root + B,e,r (shared) + l,i,n + n + U,l,m = 11 nodes.
        assert trie.node_count == 11

    def test_rejects_empty_string(self):
        with pytest.raises(IndexConstructionError):
            PrefixTrie([""])

    def test_duplicates_accumulate(self):
        trie = PrefixTrie(["Ulm", "Ulm", "Ulm"])
        assert trie.string_count == 3
        assert trie.count("Ulm") == 3
        assert list(trie) == ["Ulm"]

    def test_extend(self):
        trie = PrefixTrie(["a"])
        trie.extend(["b", "c"])
        assert sorted(trie) == ["a", "b", "c"]

    def test_max_depth_is_longest_string(self):
        trie = PrefixTrie(["ab", "abcde", "a"])
        assert trie.max_depth == 5


class TestMembership:
    def test_contains_inserted(self):
        trie = PrefixTrie(["Berlin", "Bern"])
        assert "Berlin" in trie
        assert "Bern" in trie

    def test_prefix_of_member_is_not_member(self):
        trie = PrefixTrie(["Berlin"])
        assert "Berl" not in trie

    def test_extension_of_member_is_not_member(self):
        trie = PrefixTrie(["Bern"])
        assert "Berner" not in trie

    def test_count_of_absent_is_zero(self):
        assert PrefixTrie(["a"]).count("b") == 0


class TestEnumeration:
    def test_iteration_is_sorted_and_distinct(self):
        strings = ["delta", "alpha", "beta", "alpha"]
        trie = PrefixTrie(strings)
        assert list(trie) == ["alpha", "beta", "delta"]

    def test_iter_with_counts(self):
        trie = PrefixTrie(["b", "a", "b"])
        assert list(trie.iter_with_counts()) == [("a", 1), ("b", 2)]

    def test_starts_with(self):
        trie = PrefixTrie(["Berlin", "Bern", "Ulm", "Bergen"])
        assert trie.starts_with("Ber") == ["Bergen", "Berlin", "Bern"]
        assert trie.starts_with("U") == ["Ulm"]
        assert trie.starts_with("X") == []

    def test_starts_with_full_string(self):
        trie = PrefixTrie(["Bern", "Berner"])
        assert trie.starts_with("Bern") == ["Bern", "Berner"]


class TestAnnotations:
    def test_root_length_bounds(self):
        trie = PrefixTrie(["ab", "abcdef", "xyz"])
        assert trie.root.subtree_min_length == 2
        assert trie.root.subtree_max_length == 6

    def test_branch_length_bounds(self):
        trie = PrefixTrie(["Berlin", "Bern", "Ulm"])
        b_node = trie.root.children["B"]
        assert b_node.subtree_min_length == 4   # Bern
        assert b_node.subtree_max_length == 6   # Berlin
        u_node = trie.root.children["U"]
        assert u_node.subtree_min_length == 3
        assert u_node.subtree_max_length == 3

    def test_frequency_bounds_tracked(self):
        trie = PrefixTrie(["AA", "AT"], tracked_symbols="AT",
                          case_insensitive_frequencies=False)
        root = trie.root
        assert root.freq_min == [1, 0]   # A: min 1, T: min 0
        assert root.freq_max == [2, 1]   # A: max 2, T: max 1

    def test_no_frequency_bounds_by_default(self):
        trie = PrefixTrie(["abc"])
        assert trie.root.freq_min is None
        assert trie.tracked_symbols is None

    def test_terminal_flags(self):
        trie = PrefixTrie(["Bern", "Berner"])
        node = trie.root
        for symbol in "Bern":
            node = node.children[symbol]
        assert node.is_terminal
        assert not node.is_leaf
