"""Unit tests for the DAWG (minimal acyclic DFA) index."""

import pytest

from repro.distance.levenshtein import edit_distance
from repro.exceptions import IndexConstructionError, InvalidThresholdError
from repro.index.compressed import CompressedTrie
from repro.index.dawg import Dawg
from repro.index.traversal import TraversalStats
from repro.index.trie import PrefixTrie

SUFFIX_HEAVY = ["Hamburg", "Magdeburg", "Marburg", "Freiburg",
                "Neustadt", "Darmstadt"]


class TestConstruction:
    def test_set_semantics(self):
        dawg = Dawg(["b", "a", "b"])
        assert list(dawg) == ["a", "b"]
        assert dawg.string_count == 3
        assert dawg.count("b") == 2
        assert len(dawg) == 3

    def test_empty_dawg(self):
        dawg = Dawg()
        assert list(dawg) == []
        assert dawg.search("x", 3) == []

    def test_empty_string_rejected(self):
        with pytest.raises(IndexConstructionError):
            Dawg([""])

    def test_membership(self):
        dawg = Dawg(SUFFIX_HEAVY)
        assert "Marburg" in dawg
        assert "Marbur" not in dawg
        assert "Marburgg" not in dawg

    def test_suffix_sharing_beats_the_trie(self):
        # Six names, four sharing "burg" and two sharing "stadt": the
        # DAWG must need fewer states than the uncompressed trie.
        dawg = Dawg(SUFFIX_HEAVY)
        trie = PrefixTrie(SUFFIX_HEAVY)
        assert dawg.node_count < trie.node_count

    def test_minimality_on_shared_suffix_pairs(self):
        # "xab" and "yab" share the "ab" tail: minimal DFA has
        # root -> {x,y} -> a -> b(final) = 4 states.
        dawg = Dawg(["xab", "yab"])
        assert dawg.node_count == 4

    def test_max_depth(self):
        assert Dawg(["ab", "abcde"]).max_depth == 5


class TestHeights:
    def test_root_heights_span_lengths(self):
        dawg = Dawg(["ab", "abcd"])
        assert dawg._root.min_height == 2
        assert dawg._root.max_height == 4


class TestSearch:
    def test_equals_brute_force(self):
        dawg = Dawg(SUFFIX_HEAVY)
        for query in ("Marburg", "Hamburk", "Neustadt", "burg", "zzz"):
            for k in (0, 1, 2, 3):
                expected = sorted({
                    s for s in SUFFIX_HEAVY
                    if edit_distance(query, s) <= k
                })
                assert dawg.search_strings(query, k) == expected, \
                    (query, k)

    def test_equals_trie_search(self):
        from repro.index.traversal import trie_similarity_search

        data = ["Bern", "Berlin", "Bergen", "Ulm", "Ulm"]
        dawg = Dawg(data)
        trie = CompressedTrie(data)
        for query in ("Bern", "Ulms", "xxxx"):
            for k in (0, 1, 2):
                assert dawg.search(query, k) == \
                    trie_similarity_search(trie, query, k)

    def test_multiplicity(self):
        dawg = Dawg(["Ulm", "Ulm"])
        (match,) = dawg.search("Ulm", 0)
        assert match.multiplicity == 2

    def test_invalid_threshold(self):
        with pytest.raises(InvalidThresholdError):
            Dawg(["a"]).search("a", -1)

    def test_stats_and_pruning(self):
        dawg = Dawg(["a" * 20, "zz"])
        stats = TraversalStats()
        dawg.search("zz", 1, stats=stats)
        assert stats.nodes_visited > 0
        assert stats.branches_pruned_by_length >= 1

    def test_empty_query(self):
        dawg = Dawg(["a", "ab", "abc"])
        assert dawg.search_strings("", 2) == ["a", "ab"]
