"""Unit tests for the batch index executor and its Searcher adapter."""

import pytest

from repro.core.sequential import SequentialScanSearcher
from repro.core.verification import verify_against_reference
from repro.data.workload import Workload
from repro.exceptions import (
    InvalidThresholdError,
    ReproError,
    VerificationError,
)
from repro.index.batch import (
    BatchIndexExecutor,
    FlatIndexSearcher,
    probe_query,
)
from repro.index.flat import FlatTrie
from repro.parallel.executor import (
    ProcessPoolRunner,
    SerialRunner,
    ThreadPoolRunner,
)

DATASET = ["Berlin", "Bern", "Ulm", "Hamburg", "Bremen", "Bonn", "Bern"]


def reference_rows(queries, k):
    searcher = SequentialScanSearcher(DATASET, kernel="reference")
    return [tuple(searcher.search(query, k)) for query in queries]


class TestProbeQuery:
    def test_matches_reference_kernel(self):
        flat = FlatTrie(DATASET)
        for query in ("Bern", "Hamburk", "zzz", ""):
            for k in (0, 1, 2):
                assert tuple(probe_query(flat, query, k)) == \
                    reference_rows([query], k)[0]

    def test_frequency_pruning_does_not_change_results(self):
        flat = FlatTrie(DATASET, tracked_symbols="AEIOU")
        for query in ("Bern", "Brln", "Hamburk"):
            pruned = probe_query(flat, query, 2, use_frequency=True)
            plain = probe_query(flat, query, 2, use_frequency=False)
            assert pruned == plain


class TestSearchMany:
    def test_rows_in_input_order_with_duplicates(self):
        executor = BatchIndexExecutor(FlatTrie(DATASET))
        queries = ["Bern", "Ulm", "Bern", "zzz", "Bern"]
        results = executor.search_many(queries, 1)
        assert results.queries == tuple(queries)
        assert list(results.rows) == reference_rows(queries, 1)

    def test_deduplication_counted(self):
        executor = BatchIndexExecutor(FlatTrie(DATASET))
        executor.search_many(["Bern"] * 10 + ["Ulm"], 1)
        assert executor.stats.queries_seen == 11
        assert executor.stats.unique_queries == 2
        assert executor.stats.deduplicated == 9
        assert executor.stats.scans_executed == 2

    def test_memo_spans_batches(self):
        executor = BatchIndexExecutor(FlatTrie(DATASET))
        executor.search_many(["Bern", "Ulm"], 1)
        executor.search_many(["Bern", "Ulm"], 1)
        assert executor.stats.cache_hits == 2
        assert executor.stats.scans_executed == 2

    def test_memo_keyed_by_threshold_too(self):
        executor = BatchIndexExecutor(FlatTrie(DATASET))
        executor.search_many(["Bern"], 1)
        executor.search_many(["Bern"], 2)
        assert executor.stats.scans_executed == 2

    def test_single_search_is_memoized_too(self):
        executor = BatchIndexExecutor(FlatTrie(DATASET))
        first = executor.search("Bern", 1)
        second = executor.search("Bern", 1)
        assert first == second
        assert executor.stats.scans_executed == 1

    def test_cache_disabled(self):
        executor = BatchIndexExecutor(FlatTrie(DATASET), cache_size=0)
        assert executor.cache is None
        executor.search_many(["Bern"], 1)
        executor.search_many(["Bern"], 1)
        assert executor.stats.scans_executed == 2

    def test_negative_cache_size_rejected(self):
        with pytest.raises(ReproError):
            BatchIndexExecutor(FlatTrie(DATASET), cache_size=-1)

    def test_invalid_threshold_rejected(self):
        executor = BatchIndexExecutor(FlatTrie(DATASET))
        with pytest.raises(InvalidThresholdError):
            executor.search_many(["Bern"], -1)

    def test_thread_fanout_identical(self):
        serial = BatchIndexExecutor(FlatTrie(DATASET), cache_size=0)
        threaded = BatchIndexExecutor(FlatTrie(DATASET), cache_size=0,
                                      runner=ThreadPoolRunner(threads=3))
        queries = ["Bern", "Hamburk", "Bremen", "Ulm", "Bern"]
        assert serial.search_many(queries, 2) == \
            threaded.search_many(queries, 2)

    def test_process_fanout_identical(self):
        # The flat trie is plain tuples, so it must survive pickling
        # into pool workers and answer identically there.
        executor = BatchIndexExecutor(FlatTrie(DATASET), cache_size=0)
        queries = ["Bern", "Hamburk", "Bremen", "Ulm"]
        fanned = executor.search_many(
            queries, 2, runner=ProcessPoolRunner(processes=2)
        )
        assert list(fanned.rows) == reference_rows(queries, 2)

    def test_serial_runner_accepted(self):
        executor = BatchIndexExecutor(FlatTrie(DATASET), cache_size=0)
        result = executor.search_many(["Bern", "Ulm"], 2,
                                      runner=SerialRunner())
        assert list(result.rows) == reference_rows(["Bern", "Ulm"], 2)

    def test_run_workload_adapter(self):
        executor = BatchIndexExecutor(FlatTrie(DATASET))
        workload = Workload(("Bern", "Ulm", "Bern"), 1, "adapter")
        results = executor.run_workload(workload)
        assert list(results.rows) == reference_rows(workload.queries, 1)

    def test_empty_batch(self):
        executor = BatchIndexExecutor(FlatTrie(DATASET))
        assert len(executor.search_many([], 1)) == 0


class TestFlatIndexSearcher:
    def test_search_contract(self):
        searcher = FlatIndexSearcher(DATASET)
        for query in ("Berlino", "Bern", "zzz"):
            for k in (0, 1, 2):
                assert tuple(searcher.search(query, k)) == \
                    reference_rows([query], k)[0]

    def test_accepts_a_prebuilt_flat_trie(self):
        flat = FlatTrie(DATASET)
        searcher = FlatIndexSearcher(flat)
        assert searcher.flat is flat
        assert searcher.executor.flat is flat

    def test_dataset_property_lists_distinct_strings(self):
        searcher = FlatIndexSearcher(DATASET)
        assert searcher.dataset == tuple(sorted(set(DATASET)))

    def test_search_many_matches_per_query_loop(self):
        searcher = FlatIndexSearcher(DATASET)
        queries = ["Bern", "Hamburk", "Bern", ""]
        batched = searcher.search_many(queries, 2)
        assert [list(row) for row in batched.rows] == [
            searcher.search(query, 2) for query in queries
        ]

    def test_verifies_against_reference(self):
        searcher = FlatIndexSearcher(DATASET)
        workload = Workload(("Bern", "Hamburk", "Ulm"), 2, "gate")
        results = verify_against_reference(searcher, DATASET, workload)
        assert results.queries == workload.queries

    def test_verification_catches_a_wrong_dataset(self):
        searcher = FlatIndexSearcher(
            [s for s in DATASET if s != "Bern"]
        )
        workload = Workload(("Bern",), 1, "gate")
        with pytest.raises(VerificationError):
            verify_against_reference(searcher, DATASET, workload)
