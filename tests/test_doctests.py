"""Execute every docstring example in the library.

Doc examples are documentation that can rot; this module runs them all
through :mod:`doctest` so the README-level promises stay true.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro

MODULES = sorted(
    module.name
    for module in pkgutil.walk_packages(repro.__path__,
                                        prefix="repro.")
    if not module.name.endswith("__main__")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module_name}"
    )


def test_package_doctest():
    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
