"""Unit tests for the LSM write path (:class:`repro.live.LiveCorpus`)."""

import os

import pytest

from repro.core.deadline import Budget, Deadline
from repro.core.sequential import SequentialScanSearcher
from repro.exceptions import DeadlineExceeded, ReproError, SegmentError
from repro.live import (
    COMPACTION_MODES,
    MANIFEST_NAME,
    CorpusEvent,
    LiveCorpus,
)

DATASET = ["Berlin", "Bern", "Bonn", "Ulm", "Hamburg", "Bremen"]


def reference(strings, query, k):
    return [m.string for m in SequentialScanSearcher(strings)
            .search(query, k)]


class TestConstruction:
    def test_seeds_become_the_first_segment(self):
        corpus = LiveCorpus(DATASET)
        assert corpus.segment_count == 1
        assert corpus.memtable_size == 0
        assert len(corpus) == len(DATASET)
        assert corpus.epoch == 0

    def test_empty_corpus_has_no_segments(self):
        corpus = LiveCorpus()
        assert corpus.segment_count == 0
        assert len(corpus) == 0

    def test_duplicates_accumulate(self):
        corpus = LiveCorpus(["Ulm", "Ulm", "Bern"])
        assert len(corpus) == 3
        assert corpus.count("Ulm") == 2
        assert corpus.distinct == 2

    def test_empty_string_rejected(self):
        with pytest.raises(ReproError):
            LiveCorpus([""])
        with pytest.raises(ReproError):
            LiveCorpus().insert("")

    def test_bad_parameters_rejected(self):
        with pytest.raises(ReproError):
            LiveCorpus(flush_threshold=0)
        with pytest.raises(ReproError):
            LiveCorpus(fanout=1)
        with pytest.raises(ReproError):
            LiveCorpus(compaction="eager")
        assert "inline" in COMPACTION_MODES


class TestMutations:
    def test_insert_lands_in_memtable_and_bumps_epoch(self):
        corpus = LiveCorpus(DATASET)
        corpus.insert("Bonnn")
        assert corpus.memtable_size == 1
        assert corpus.epoch == 1
        assert "Bonnn" in corpus

    def test_delete_of_memtable_copy_cancels_it(self):
        corpus = LiveCorpus(flush_threshold=16)
        corpus.insert("Ulm")
        corpus.delete("Ulm")
        assert corpus.memtable_size == 0
        assert corpus.tombstone_count == 0
        assert "Ulm" not in corpus

    def test_delete_of_segment_copy_tombstones_it(self):
        corpus = LiveCorpus(DATASET)
        corpus.delete("Ulm")
        assert corpus.tombstone_count == 1
        assert "Ulm" not in corpus
        assert reference(corpus.snapshot(), "Ulm", 0) == []

    def test_tombstoned_reinsert_cancels_the_tombstone(self):
        corpus = LiveCorpus(DATASET)
        corpus.delete("Ulm")
        corpus.insert("Ulm")
        # The physical copy still in the segment serves it again: no
        # memtable copy is added, the tombstone is simply cancelled.
        assert corpus.tombstone_count == 0
        assert corpus.memtable_size == 0
        assert "Ulm" in corpus
        assert [m.string for m in corpus.search("Ulm", 0)] == ["Ulm"]

    def test_delete_of_absent_string_raises(self):
        corpus = LiveCorpus(DATASET)
        with pytest.raises(ReproError):
            corpus.delete("Paris")
        corpus.delete("Ulm")
        with pytest.raises(ReproError):
            corpus.delete("Ulm")

    def test_epoch_counts_every_mutation(self):
        corpus = LiveCorpus(DATASET)
        corpus.insert("x1")
        corpus.insert("x2")
        corpus.delete("x1")
        assert corpus.epoch == 3


class TestFlush:
    def test_auto_flush_on_threshold(self):
        corpus = LiveCorpus(flush_threshold=3, fanout=100)
        for string in ("aa", "bb", "cc"):
            corpus.insert(string)
        assert corpus.memtable_size == 0
        assert corpus.segment_count == 1
        assert corpus.flushes == 1

    def test_explicit_flush_returns_whether_anything_moved(self):
        corpus = LiveCorpus(DATASET)
        assert corpus.flush() is False
        corpus.insert("Bonnn")
        assert corpus.flush() is True
        assert corpus.segment_count == 2

    def test_flush_does_not_bump_the_epoch(self):
        corpus = LiveCorpus()
        corpus.insert("aa")
        epoch = corpus.epoch
        corpus.flush()
        assert corpus.epoch == epoch


class TestCompaction:
    def test_fanout_same_level_segments_merge(self):
        corpus = LiveCorpus(flush_threshold=2, fanout=2)
        for string in ("aa", "ab", "ba", "bb"):
            corpus.insert(string)
        # Two level-0 flushes hit the fanout and merged into a level-1
        # segment of 4 strings.
        assert corpus.compactions >= 1
        assert corpus.segment_sizes() == (4,)
        assert [m.string for m in corpus.search("aa", 1)] \
            == ["aa", "ab", "ba"]

    def test_compact_folds_everything_into_one_segment(self):
        corpus = LiveCorpus(DATASET, flush_threshold=100, fanout=100)
        corpus.insert("Bonnn")
        corpus.delete("Ulm")
        corpus.compact()
        assert corpus.segment_count == 1
        assert corpus.memtable_size == 0
        assert corpus.tombstone_count == 0
        assert sorted(corpus.snapshot()) \
            == sorted(set(DATASET) - {"Ulm"} | {"Bonnn"})

    def test_compaction_purges_tombstones(self):
        corpus = LiveCorpus(DATASET, flush_threshold=100, fanout=100)
        corpus.delete("Ulm")
        corpus.delete("Bern")
        corpus.compact()
        assert corpus.tombstones_purged == 2
        assert corpus.tombstone_count == 0
        assert reference(corpus.snapshot(), "Ulm", 0) == []

    def test_compact_is_a_noop_on_a_clean_single_segment(self):
        corpus = LiveCorpus(DATASET)
        corpus.compact()
        assert corpus.compactions == 0

    def test_reinsert_racing_a_merge_is_not_lost(self):
        # A tombstoned string whose only physical copy lives in the
        # group being merged is dropped from the merged segment (its
        # contents count was 0 when survivors were collected). If it
        # is re-inserted before the segment-list swap, insert cancels
        # the tombstone expecting the segment copy to survive — the
        # swap must detect the dropped-but-visible string and re-add
        # it to the memtable. Simulated by interleaving the insert
        # into the merge's build step, which runs between survivor
        # collection and the swap.
        corpus = LiveCorpus(flush_threshold=100, fanout=100)
        corpus.insert("keep")
        corpus.insert("gone")
        corpus.flush()
        corpus.delete("gone")

        real_build = corpus._build_segment
        raced = []

        def hooked_build(strings):
            segment = real_build(strings)
            if not raced:
                raced.append(True)
                corpus.insert("gone")
            return segment

        corpus._build_segment = hooked_build
        corpus.compact()
        assert "gone" in corpus
        assert [m.string for m in corpus.search("gone", 0)] == ["gone"]
        # And the rescue is physical, not just a contents-count claim.
        assert corpus.memtable_size == 1

    def test_post_compaction_matches_a_rebuild_oracle(self):
        corpus = LiveCorpus(DATASET, flush_threshold=2, fanout=2)
        for string in ("Berlino", "Bonna", "Ulma", "Hamburk"):
            corpus.insert(string)
        corpus.delete("Bonna")
        corpus.delete("Ulm")
        corpus.compact()
        oracle = list(corpus.snapshot())
        for query in ("Berlin", "Ulm", "Hamburg", "zzz"):
            for k in (0, 1, 2):
                assert [m.string for m in corpus.search(query, k)] \
                    == reference(oracle, query, k)


class TestBackgroundCompaction:
    def test_background_merge_reaches_the_same_layout(self):
        corpus = LiveCorpus(flush_threshold=2, fanout=2,
                            compaction="background")
        for string in ("aa", "ab", "ba", "bb"):
            corpus.insert(string)
        corpus.drain_compaction()
        assert corpus.compactions >= 1
        assert not corpus.compacting
        assert sorted(corpus.snapshot()) == ["aa", "ab", "ba", "bb"]

    def test_search_during_background_compaction_is_correct(self):
        corpus = LiveCorpus(flush_threshold=2, fanout=2,
                            compaction="background")
        for string in ("aa", "ab", "ba", "bb"):
            corpus.insert(string)
        # Whatever state the merge is in, the answer is exact.
        assert [m.string for m in corpus.search("aa", 1)] \
            == ["aa", "ab", "ba"]
        corpus.drain_compaction()


class TestSearch:
    def test_matches_brute_force_across_parts(self):
        corpus = LiveCorpus(DATASET, flush_threshold=100)
        corpus.insert("Berlino")
        corpus.delete("Bern")
        oracle = list(corpus.snapshot())
        for query in ("Berlin", "Bern", "Hamburg"):
            for k in (0, 1, 2):
                assert [m.string for m in corpus.search(query, k)] \
                    == reference(oracle, query, k)

    def test_duplicate_across_memtable_and_segment_reported_once(self):
        corpus = LiveCorpus(["Ulm"], flush_threshold=100)
        corpus.insert("Ulm")
        matches = corpus.search("Ulm", 1)
        assert [m.string for m in matches] == ["Ulm"]

    def test_expired_budget_raises_with_segment_scope(self):
        corpus = LiveCorpus(DATASET)
        with pytest.raises(DeadlineExceeded) as info:
            corpus.search("Berlin", 1, deadline=Budget(0))
        error = info.value
        assert error.scope == "segments"
        assert error.completed == 0
        assert error.total == corpus.segment_count + 1

    def test_generous_deadline_answers_completely(self):
        corpus = LiveCorpus(DATASET, flush_threshold=100)
        corpus.insert("Berlino")
        matches = corpus.search("Berlin", 1, deadline=Deadline(30.0))
        assert [m.string for m in matches] == ["Berlin", "Berlino"]

    def test_partials_exclude_tombstoned_strings(self):
        corpus = LiveCorpus(DATASET)
        corpus.delete("Bern")
        with pytest.raises(DeadlineExceeded) as info:
            corpus.search("Bern", 1,
                          deadline=Budget(3, check_interval=1))
        partial = [m.string for m in info.value.partial]
        assert "Bern" not in partial

    def test_bad_threshold_rejected(self):
        with pytest.raises(ReproError):
            LiveCorpus(DATASET).search("Ulm", -1)


class TestEvents:
    def test_mutations_notify_subscribers(self):
        corpus = LiveCorpus(DATASET)
        events: list[CorpusEvent] = []
        corpus.subscribe(events.append)
        corpus.insert("Bonnn")
        corpus.delete("Ulm")
        assert [(e.kind, e.string) for e in events] \
            == [("insert", "Bonnn"), ("delete", "Ulm")]
        assert events[0].epoch == 1
        assert events[1].epoch == 2

    def test_flush_and_compact_events_carry_no_string(self):
        corpus = LiveCorpus(flush_threshold=100, fanout=100)
        events: list[CorpusEvent] = []
        corpus.subscribe(events.append)
        corpus.insert("aa")
        corpus.insert("bb")
        corpus.flush()
        corpus.insert("cc")
        corpus.compact()
        kinds = [e.kind for e in events]
        # compact() emits a flush too: it compiled the pending "cc"
        # memtable into a segment before merging.
        assert kinds == ["insert", "insert", "flush", "insert",
                         "flush", "compact"]
        assert all(e.string is None for e in events
                   if e.kind in ("flush", "compact"))

    def test_auto_flush_emits_ordered_events_outside_the_lock(self):
        import threading

        corpus = LiveCorpus(flush_threshold=2, fanout=2)
        events: list[CorpusEvent] = []
        lock_free: list[bool] = []

        def listener(event):
            events.append(event)
            # Probe from another thread: if the mutating call still
            # held the corpus lock while notifying, this would block.
            def probe():
                got = corpus._lock.acquire(timeout=5)
                lock_free.append(got)
                if got:
                    corpus._lock.release()
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join(10)

        corpus.subscribe(listener)
        for string in ("aa", "ab", "ba", "bb"):
            corpus.insert(string)
        kinds = [e.kind for e in events]
        # Every second insert crosses the threshold: the insert event
        # precedes the flush it triggered, and the second flush
        # precedes the compaction it triggered.
        assert kinds == ["insert", "insert", "flush",
                         "insert", "insert", "flush", "compact"]
        assert lock_free == [True] * len(events)

    def test_unsubscribe_stops_delivery(self):
        corpus = LiveCorpus()
        events = []
        corpus.subscribe(events.append)
        corpus.unsubscribe(events.append)
        corpus.unsubscribe(events.append)  # idempotent
        corpus.insert("aa")
        assert events == []


class TestPersistence:
    def test_roundtrip_restores_everything(self, tmp_path):
        directory = str(tmp_path / "live")
        corpus = LiveCorpus(DATASET, flush_threshold=2, fanout=2,
                            segment_dir=directory)
        corpus.insert("Berlino")
        corpus.insert("Bonna")
        corpus.delete("Ulm")
        corpus.insert("unflushed")
        corpus.sync()

        reopened = LiveCorpus.open(directory)
        assert reopened.epoch == corpus.epoch
        assert sorted(reopened.snapshot()) == sorted(corpus.snapshot())
        assert reopened.memtable_size == corpus.memtable_size
        assert reopened.tombstone_count == corpus.tombstone_count
        oracle = list(corpus.snapshot())
        for query in ("Berlin", "Ulm", "unflushed"):
            assert [m.string for m in reopened.search(query, 1)] \
                == reference(oracle, query, 1)

    def test_open_leaves_the_manifest_intact(self, tmp_path):
        # Regression: open() used to run __init__ with segment_dir set
        # and an empty dataset, immediately overwriting MANIFEST.json
        # with empty state — so the *second* open (or any session that
        # never flushed) silently lost everything.
        import json

        directory = str(tmp_path / "live")
        corpus = LiveCorpus(DATASET, flush_threshold=2, fanout=2,
                            segment_dir=directory)
        corpus.insert("unflushed")
        corpus.sync()
        expected = sorted(corpus.snapshot())

        LiveCorpus.open(directory)
        with open(os.path.join(directory, MANIFEST_NAME)) as handle:
            manifest = json.load(handle)
        assert manifest["segments"], "open() wiped the manifest"
        assert manifest["contents"], "open() wiped the contents"

        reopened = LiveCorpus.open(directory)
        assert sorted(reopened.snapshot()) == expected
        assert reopened.epoch == corpus.epoch

    def test_reopened_corpus_keeps_absorbing_writes(self, tmp_path):
        directory = str(tmp_path / "live")
        LiveCorpus(["aa", "bb"], segment_dir=directory).sync()
        reopened = LiveCorpus.open(directory)
        reopened.insert("cc")
        reopened.delete("aa")
        assert sorted(reopened.snapshot()) == ["bb", "cc"]

    def test_compaction_removes_doomed_segment_files(self, tmp_path):
        directory = str(tmp_path / "live")
        corpus = LiveCorpus(flush_threshold=2, fanout=2,
                            segment_dir=directory)
        for string in ("aa", "ab", "ba", "bb"):
            corpus.insert(string)
        assert corpus.compactions >= 1
        files = [name for name in os.listdir(directory)
                 if name.endswith(".seg")]
        assert len(files) == corpus.segment_count

    def test_open_without_manifest_raises(self, tmp_path):
        with pytest.raises(SegmentError):
            LiveCorpus.open(str(tmp_path))

    def test_open_rejects_unknown_manifest_format(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text('{"format": 999}')
        with pytest.raises(SegmentError):
            LiveCorpus.open(str(tmp_path))

    def test_sync_without_segment_dir_is_a_noop(self):
        LiveCorpus(DATASET).sync()


class TestIntrospection:
    def test_describe_is_json_friendly(self):
        import json

        corpus = LiveCorpus(DATASET, flush_threshold=100)
        corpus.insert("Bonnn")
        corpus.delete("Ulm")
        summary = corpus.describe()
        json.dumps(summary)
        assert summary["kind"] == "live"
        assert summary["strings"] == len(corpus)
        assert summary["memtable"] == 1
        assert summary["tombstones"] == 1
        assert summary["epoch"] == 2

    def test_repr_mentions_the_layout(self):
        corpus = LiveCorpus(DATASET)
        text = repr(corpus)
        assert "segments=1" in text
        assert f"strings={len(DATASET)}" in text
