"""Unit tests for the unified :class:`repro.live.Corpus` facade.

Covers the three constructors, the frozen/live split, and the uniform
surface every consuming layer relies on — plus the integrations: the
engine, the sharded corpus and the service all tracking a mutating
corpus by epoch.
"""

import pytest

from repro.core.engine import SearchEngine
from repro.core.sequential import SequentialScanSearcher
from repro.exceptions import FrozenCorpusError, ReproError, SegmentError
from repro.live import Corpus, LiveCorpus
from repro.scan.corpus import CompiledCorpus
from repro.service import Service, ShardedCorpus

DATASET = ["Berlin", "Bern", "Bonn", "Ulm", "Hamburg", "Bremen"]


def reference(strings, query, k):
    return [m.string for m in SequentialScanSearcher(strings)
            .search(query, k)]


class TestConstructors:
    def test_direct_construction_is_forbidden(self):
        with pytest.raises(ReproError):
            Corpus()

    def test_frozen_compiles_the_dataset(self):
        corpus = Corpus.frozen(DATASET)
        assert corpus.kind == "frozen"
        assert not corpus.mutable
        assert corpus.epoch == 0
        assert len(corpus) == len(DATASET)
        assert "Ulm" in corpus
        assert sorted(corpus) == sorted(DATASET)

    def test_frozen_wraps_a_prebuilt_compiled_corpus(self):
        compiled = CompiledCorpus(DATASET)
        corpus = Corpus.frozen(compiled)
        assert corpus.compiled_corpus is compiled
        assert corpus.live_corpus is None

    def test_frozen_with_segment_compiles_then_mmaps(self, tmp_path):
        path = str(tmp_path / "corpus.seg")
        first = Corpus.frozen(DATASET, segment=path)
        second = Corpus.frozen(DATASET, segment=path)
        assert sorted(first) == sorted(second) == sorted(DATASET)

    def test_live_is_mutable(self):
        corpus = Corpus.live(DATASET)
        assert corpus.kind == "live"
        assert corpus.mutable
        assert isinstance(corpus.live_corpus, LiveCorpus)
        assert corpus.compiled_corpus is None

    def test_open_dispatches_on_path_kind(self, tmp_path):
        directory = str(tmp_path / "live")
        Corpus.live(DATASET, segment_dir=directory).sync()
        reopened = Corpus.open(directory)
        assert reopened.mutable
        assert sorted(reopened) == sorted(DATASET)

        from repro.speed import save_segment

        path = str(tmp_path / "frozen.seg")
        save_segment(CompiledCorpus(DATASET, packed=True), path)
        frozen = Corpus.open(path)
        assert not frozen.mutable
        assert sorted(frozen) == sorted(DATASET)

    def test_open_of_a_bare_directory_raises(self, tmp_path):
        with pytest.raises(SegmentError):
            Corpus.open(str(tmp_path))


class TestUniformSurface:
    def test_search_parity_between_kinds(self):
        frozen = Corpus.frozen(DATASET)
        live = Corpus.live(DATASET)
        for query in ("Berlino", "Ulm", "zzz"):
            expected = reference(DATASET, query, 2)
            assert [m.string for m in frozen.search(query, 2)] \
                == expected
            assert [m.string for m in live.search(query, 2)] \
                == expected

    def test_mutations_raise_on_frozen_with_guidance(self):
        corpus = Corpus.frozen(DATASET)
        with pytest.raises(FrozenCorpusError) as info:
            corpus.insert("Bonnn")
        assert "Corpus.live(...)" in str(info.value)
        for operation in (lambda: corpus.delete("Ulm"), corpus.flush,
                          corpus.compact, corpus.sync):
            with pytest.raises(FrozenCorpusError):
                operation()

    def test_live_mutations_flow_through(self):
        corpus = Corpus.live(DATASET)
        corpus.insert("Berlino")
        corpus.delete("Ulm")
        assert corpus.epoch == 2
        assert "Berlino" in corpus
        assert "Ulm" not in corpus
        corpus.flush()
        corpus.compact()
        assert corpus.live_corpus.segment_count == 1

    def test_frozen_membership_is_cached(self):
        corpus = Corpus.frozen(DATASET)
        assert corpus._members is None
        assert "Ulm" in corpus
        members = corpus._members
        assert members == frozenset(DATASET)
        assert "Paris" not in corpus
        # Repeated checks reuse the set instead of rebuilding it.
        assert corpus._members is members

    def test_subscribe_is_a_noop_on_frozen(self):
        events = []
        corpus = Corpus.frozen(DATASET)
        corpus.subscribe(events.append)
        corpus.unsubscribe(events.append)
        assert events == []

    def test_describe_labels_the_kind(self):
        assert Corpus.frozen(DATASET).describe()["kind"] == "frozen"
        assert Corpus.live(DATASET).describe()["kind"] == "live"

    def test_repr_mentions_the_kind(self):
        assert "frozen" in repr(Corpus.frozen(DATASET))
        assert "live" in repr(Corpus.live(DATASET))


class TestEngineIntegration:
    def test_engine_accepts_a_frozen_corpus(self):
        engine = SearchEngine(Corpus.frozen(DATASET))
        assert [m.string for m in engine.search("Berlino", 2)] \
            == reference(DATASET, "Berlino", 2)

    def test_engine_reuses_the_frozen_compiled_corpus(self):
        corpus = Corpus.frozen(DATASET)
        engine = SearchEngine(corpus, backend="compiled")
        assert engine.searcher.corpus is corpus.compiled_corpus

    def test_engine_tracks_live_mutations_by_epoch(self):
        corpus = Corpus.live(DATASET)
        engine = SearchEngine(corpus)
        assert engine.source_corpus is corpus
        assert [m.string for m in engine.search("Bonna", 1)] == ["Bonn"]
        corpus.insert("Bonna")
        corpus.delete("Bonn")
        assert [m.string for m in engine.search("Bonna", 1)] == ["Bonna"]

    def test_engine_replans_after_drift(self):
        corpus = Corpus.live(["aa", "bb"])
        engine = SearchEngine(corpus)
        for index in range(40):
            corpus.insert(f"string-{index:03d}")
        engine.search("aa", 1)
        # The refreshed statistics price the grown corpus.
        assert engine.plan("aa", 1).statistics["count"] \
            == corpus.live_corpus.distinct


class TestShardingIntegration:
    def test_sharded_corpus_repartitions_on_drift(self):
        corpus = Corpus.live(DATASET)
        sharded = ShardedCorpus(corpus, shards=2)
        assert sharded.source is corpus
        corpus.insert("Berlino")
        assert [m.string for m in sharded.search("Berlino", 0)] \
            == ["Berlino"]
        corpus.delete("Berlino")
        assert [m.string for m in sharded.search("Berlino", 0)] == []

    def test_refresh_reports_whether_anything_changed(self):
        corpus = Corpus.live(DATASET)
        sharded = ShardedCorpus(corpus, shards=2)
        assert sharded.refresh() is False
        corpus.insert("Berlino")
        assert sharded.refresh() is True
        assert sharded.refresh() is False

    def test_frozen_source_never_refreshes(self):
        sharded = ShardedCorpus(Corpus.frozen(DATASET), shards=2)
        assert sharded.refresh() is False

    def test_search_holds_one_view_across_a_concurrent_refresh(self):
        # Refresh swaps an immutable (strings, parts, searchers) view
        # atomically; a search that already captured a view must not
        # mix old parts with new searchers. Writers mutate while
        # readers search; every answer must be internally consistent:
        # exactly the matcher set of SOME corpus state, never a blend
        # that drops or duplicates the always-present anchor.
        import threading

        corpus = Corpus.live(["anchor"] + [f"aa{i:02d}" for i in range(8)])
        sharded = ShardedCorpus(corpus, shards=4)
        failures: list[str] = []
        stop = threading.Event()

        def writer():
            for index in range(200):
                if stop.is_set():
                    return
                corpus.insert(f"bb{index:03d}")
                if index % 3 == 0:
                    corpus.delete(f"bb{index:03d}")

        def reader():
            try:
                for _ in range(100):
                    matches = [m.string for m in
                               sharded.search("anchor", 0)]
                    if matches != ["anchor"]:
                        failures.append(repr(matches))
                        return
            except Exception as error:  # noqa: BLE001
                failures.append(repr(error))

        threads = [threading.Thread(target=writer)] \
            + [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        stop.set()
        assert failures == []


class TestServiceIntegration:
    def test_service_answers_over_a_live_corpus(self):
        corpus = Corpus.live(DATASET)
        service = Service(corpus, shards=2)
        result = service.submit("Berlino", 2)
        assert result.status == "complete"
        assert [m.string for m in result.matches] \
            == reference(DATASET, "Berlino", 2)

    def test_service_counts_corpus_refreshes(self):
        corpus = Corpus.live(DATASET)
        service = Service(corpus, shards=2)
        service.submit("Berlino", 2)
        corpus.insert("Berlinoo")
        result = service.submit("Berlinoo", 0)
        assert [m.string for m in result.matches] == ["Berlinoo"]
        counters = service.counters_snapshot()
        assert counters["service.corpus_refreshes"] == 1

    def test_frozen_corpus_service_never_refreshes(self):
        service = Service(Corpus.frozen(DATASET), shards=2)
        service.submit("Berlino", 2)
        service.submit("Ulm", 1)
        counters = service.counters_snapshot()
        assert counters["service.corpus_refreshes"] == 0
