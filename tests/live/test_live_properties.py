"""Property tests: the live corpus equals a from-scratch rebuild.

The LSM machinery (memtable, tombstones, segment flushes, compaction)
is pure plumbing — at every moment the corpus must answer exactly like
a brand-new corpus built from its current logical contents. Hypothesis
drives arbitrary insert/delete/flush/compact/search interleavings,
including the subtle cases (tombstoned re-inserts, deletes racing the
flush threshold), and checks that equivalence after every step.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.distance.levenshtein import edit_distance
from repro.live import Corpus, LiveCorpus

strings = st.text(alphabet="abc", min_size=1, max_size=5)

#: One scripted operation: ("insert", s) | ("delete", s) | ("flush",)
#: | ("compact",). Deletes pick from what the script inserted so far,
#: so most of them hit (misses are exercised separately).
operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), strings),
        st.tuples(st.just("delete"), strings),
        st.tuples(st.just("flush")),
        st.tuples(st.just("compact")),
    ),
    max_size=30,
)


def oracle_search(model: Counter, query: str, k: int) -> list[str]:
    """Brute force over the logical contents — the rebuild oracle."""
    return sorted(
        string for string in model
        if edit_distance(query, string) <= k
    )


@given(ops=operations,
       query=st.text(alphabet="abcd", max_size=5),
       k=st.integers(min_value=0, max_value=2))
@settings(max_examples=60, deadline=None)
def test_any_interleaving_matches_the_rebuild_oracle(ops, query, k):
    corpus = LiveCorpus(flush_threshold=3, fanout=2)
    model: Counter = Counter()
    for op in ops:
        if op[0] == "insert":
            corpus.insert(op[1])
            model[op[1]] += 1
        elif op[0] == "delete":
            if model.get(op[1], 0) > 0:
                corpus.delete(op[1])
                model[op[1]] -= 1
                if model[op[1]] == 0:
                    del model[op[1]]
        elif op[0] == "flush":
            corpus.flush()
        else:
            corpus.compact()
        # After *every* step, not just at the end: the corpus answers
        # exactly like a from-scratch rebuild of its logical contents.
        assert [m.string for m in corpus.search(query, k)] \
            == oracle_search(model, query, k)
    assert len(corpus) == sum(model.values())


@given(ops=operations)
@settings(max_examples=40, deadline=None)
def test_tombstoned_reinserts_round_trip(ops):
    """Delete-then-reinsert must resurface the segment-resident copy."""
    corpus = LiveCorpus(["aa", "ab", "ba"], flush_threshold=3,
                        fanout=2)
    model: Counter = Counter({"aa": 1, "ab": 1, "ba": 1})
    for op in ops:
        if op[0] == "insert":
            corpus.insert(op[1])
            model[op[1]] += 1
        elif op[0] == "delete" and model.get(op[1], 0) > 0:
            corpus.delete(op[1])
            model[op[1]] -= 1
            if model[op[1]] == 0:
                del model[op[1]]
        elif op[0] == "flush":
            corpus.flush()
        elif op[0] == "compact":
            corpus.compact()
    # Tombstone every survivor, then re-insert it: everything must be
    # visible again, and each round trip must fully cancel its own
    # tombstone (the prelude's deletes may leave theirs behind).
    ledger_before = corpus.tombstone_count
    for string in list(model):
        corpus.delete(string)
        corpus.insert(string)
    assert corpus.tombstone_count == ledger_before
    for string, multiplicity in model.items():
        assert corpus.count(string) == multiplicity
        assert [m.string for m in corpus.search(string, 0)] == [string]


class LiveCorpusMachine(RuleBasedStateMachine):
    """Stateful mirror of ``UpdatableIndexMachine`` for the facade."""

    def __init__(self):
        super().__init__()
        self.corpus = Corpus.live(flush_threshold=3, fanout=2)
        self.model: Counter = Counter()
        self.epochs: list[int] = [0]

    @rule(string=strings)
    def insert(self, string):
        self.corpus.insert(string)
        self.model[string] += 1

    @precondition(lambda self: sum(self.model.values()) > 0)
    @rule(data=st.data())
    def delete_existing(self, data):
        string = data.draw(st.sampled_from(
            sorted(self.model.elements())
        ))
        self.corpus.delete(string)
        self.model[string] -= 1
        if self.model[string] == 0:
            del self.model[string]

    @rule()
    def flush(self):
        self.corpus.flush()

    @rule()
    def compact(self):
        self.corpus.compact()

    @rule(query=st.text(alphabet="abcd", max_size=5),
          k=st.integers(min_value=0, max_value=2))
    def search_matches_brute_force(self, query, k):
        expected = oracle_search(self.model, query, k)
        actual = [m.string for m in self.corpus.search(query, k)]
        assert actual == expected

    @invariant()
    def sizes_agree(self):
        live = self.corpus.live_corpus
        assert len(live) == sum(self.model.values())
        for string, multiplicity in self.model.items():
            assert live.count(string) == multiplicity

    @invariant()
    def epoch_is_monotonic(self):
        self.epochs.append(self.corpus.epoch)
        assert self.epochs[-1] >= self.epochs[-2]


TestLiveCorpusMachine = LiveCorpusMachine.TestCase
TestLiveCorpusMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None,
)
