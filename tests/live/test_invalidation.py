"""End-to-end cache invalidation on the live-corpus write path.

The gateway subscribes to a live corpus's mutation events and drives
:meth:`repro.traffic.cache.ResultCache.invalidate` — drop everything
on insert (an insert can only add matches), drop the entries
mentioning the string on delete. These tests exercise the whole loop:
cached answer, mutation, invalidation counters, fresh answer.
"""

import asyncio

from repro.live import Corpus
from repro.service import Service
from repro.traffic import AsyncService, ResultCache

DATASET = ["Berlin", "Bern", "Bonn", "Ulm", "Hamburg", "Bremen"]


def run(coro):
    return asyncio.run(coro)


def make_gateway(corpus, **kwargs):
    service = Service(corpus, shards=2)
    cache = ResultCache()
    return AsyncService(service, cache=cache, **kwargs), cache


class TestInsertInvalidation:
    def test_insert_drops_the_whole_cache(self):
        corpus = Corpus.live(DATASET)
        gateway, cache = make_gateway(corpus)

        async def scenario():
            await gateway.submit("Berlino", 2)
            await gateway.submit("Ulm", 1)
            assert len(cache) == 2
            corpus.insert("Ulma")
            assert len(cache) == 0
            return await gateway.submit("Ulm", 1)

        result = run(scenario())
        # The fresh answer sees the insert a stale hit would have missed.
        assert "Ulma" in [m.string for m in result.matches]
        counters = gateway.counters_snapshot()
        assert counters["service.gateway.invalidation_events"] == 1
        assert cache.counters_snapshot()[
            "service.cache.invalidations"] == 2


class TestDeleteInvalidation:
    def test_delete_drops_only_entries_mentioning_the_string(self):
        corpus = Corpus.live(DATASET)
        gateway, cache = make_gateway(corpus)

        async def scenario():
            await gateway.submit("Berlino", 2)   # matches Berlin
            await gateway.submit("Hamburg", 0)   # unrelated
            corpus.delete("Berlin")
            assert len(cache) == 1
            return await gateway.submit("Berlino", 2)

        result = run(scenario())
        assert "Berlin" not in [m.string for m in result.matches]
        counters = gateway.counters_snapshot()
        assert counters["service.gateway.invalidation_events"] == 1
        assert cache.counters_snapshot()[
            "service.cache.invalidations"] == 1

    def test_stale_hit_impossible_after_delete(self):
        corpus = Corpus.live(DATASET)
        gateway, cache = make_gateway(corpus)

        async def scenario():
            first = await gateway.submit("Ulm", 0)
            corpus.delete("Ulm")
            second = await gateway.submit("Ulm", 0)
            return first, second

        first, second = run(scenario())
        assert [m.string for m in first.matches] == ["Ulm"]
        assert second.matches == ()


class TestEventSelectivity:
    def test_flush_and_compact_do_not_invalidate(self):
        corpus = Corpus.live(DATASET, flush_threshold=100)
        gateway, cache = make_gateway(corpus)

        async def scenario():
            await gateway.submit("Berlino", 2)
            return len(cache)

        assert run(scenario()) == 1
        corpus.insert("Ulma")        # invalidates (insert)
        assert len(cache) == 0

        async def refill():
            await gateway.submit("Berlino", 2)

        run(refill())
        assert len(cache) == 1
        corpus.flush()               # layout only: cache untouched
        corpus.compact()
        assert len(cache) == 1
        counters = gateway.counters_snapshot()
        assert counters["service.gateway.invalidation_events"] == 1

    def test_frozen_corpus_gateway_never_sees_events(self):
        gateway, cache = make_gateway(Corpus.frozen(DATASET))

        async def scenario():
            first = await gateway.submit("Berlino", 2)
            second = await gateway.submit("Berlino", 2)
            return first, second

        first, second = run(scenario())
        assert second is first
        counters = gateway.counters_snapshot()
        assert counters["service.gateway.invalidation_events"] == 0
        assert cache.counters_snapshot()[
            "service.cache.invalidations"] == 0
