"""The Corpus-facade migration deprecations.

Mirrors the ``backend=`` -> ``plan=`` migration tests: each deprecated
spelling warns with an exact, frozen message constant, so the guidance
users see cannot silently rot — and the replacement spelling is
verified to answer identically.
"""

import pytest

from repro.core.updatable import UPDATABLE_DEPRECATION, UpdatableIndex
from repro.live import Corpus
from repro.scan.corpus import FROM_DATASET_DEPRECATION, CompiledCorpus

DATASET = ["Berlin", "Bern", "Ulm"]


class TestUpdatableIndexDeprecation:
    def test_construction_warns_with_the_exact_message(self):
        with pytest.warns(DeprecationWarning) as caught:
            UpdatableIndex(DATASET)
        assert str(caught[0].message) == UPDATABLE_DEPRECATION

    def test_message_names_the_replacement(self):
        assert "Corpus.live(...)" in UPDATABLE_DEPRECATION
        assert "removed in 2.0" in UPDATABLE_DEPRECATION

    def test_replacement_answers_identically(self):
        with pytest.warns(DeprecationWarning):
            index = UpdatableIndex(DATASET)
        corpus = Corpus.live(DATASET)
        for mutate in (lambda t: t.insert("Berlino"),
                       lambda t: t.insert("Ulm")):
            mutate(index)
            mutate(corpus)
        index.remove("Bern")
        corpus.delete("Bern")
        for query, k in (("Berlin", 2), ("Ulm", 1), ("zzz", 2)):
            assert [m.string for m in corpus.search(query, k)] \
                == [m.string for m in index.search(query, k)]


class TestFromDatasetDeprecation:
    def test_classmethod_warns_with_the_exact_message(self):
        with pytest.warns(DeprecationWarning) as caught:
            CompiledCorpus.from_dataset(DATASET)
        assert str(caught[0].message) == FROM_DATASET_DEPRECATION

    def test_message_names_the_replacement(self):
        assert "Corpus.frozen" in FROM_DATASET_DEPRECATION
        assert "removed in 2.0" in FROM_DATASET_DEPRECATION

    def test_forwarding_builds_an_equivalent_corpus(self):
        with pytest.warns(DeprecationWarning):
            deprecated = CompiledCorpus.from_dataset(DATASET,
                                                     packed=True)
        direct = CompiledCorpus(DATASET, packed=True)
        assert deprecated.strings == direct.strings
        assert deprecated.packed == direct.packed

    def test_direct_construction_does_not_warn(self, recwarn):
        CompiledCorpus(DATASET)
        assert not [w for w in recwarn
                    if issubclass(w.category, DeprecationWarning)]
